"""ASCII table / series formatting for experiment reports.

The benchmark harness prints, for every table and figure in the paper, the
same rows or series the paper reports.  These helpers render them in a
plain-text form that is stable for capture in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table.

    Args:
        headers: Column names.
        rows: Row tuples; floats are rendered with 4 significant digits.
        title: Optional caption printed above the table.

    Returns:
        A multi-line string (no trailing newline).
    """
    rendered_rows = [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_label: str,
    x_values: Sequence[object],
    title: str | None = None,
) -> str:
    """Render several named y-series against shared x values.

    This is the textual analogue of one of the paper's line plots: one row
    per x value, one column per series.

    Args:
        series: Mapping from series name (e.g. ``"SRW"``, ``"MTO"``) to the
            y values, all the same length as ``x_values``.
        x_label: Header for the x column.
        x_values: Shared x axis values.
        title: Optional caption.

    Returns:
        A multi-line string (no trailing newline).

    Raises:
        ValueError: If any series length disagrees with ``x_values``.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(series[name][i] for name in series)])
    return format_table(headers, rows, title=title)
