"""Shared utilities: seeded randomness, summary statistics, ASCII tables."""

from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.stats import (
    OnlineMeanVar,
    confidence_interval,
    mean,
    relative_error,
    variance,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "RngLike",
    "ensure_rng",
    "spawn_rng",
    "OnlineMeanVar",
    "confidence_interval",
    "mean",
    "relative_error",
    "variance",
    "format_series",
    "format_table",
]
