"""Seeded random number helpers.

All stochastic code in this library accepts a ``seed`` argument that may be
``None`` (fresh entropy), an ``int`` (deterministic), or an existing
:class:`random.Random` instance (shared stream).  :func:`ensure_rng`
normalizes those three cases so call sites never branch on the type.

We deliberately use :mod:`random` (Mersenne Twister) rather than numpy's
generators for the walk code: walks draw one neighbor at a time and the
Python generator is faster for scalar draws, keeps the substrate free of
array semantics, and is seedable/reproducible across platforms.
"""

from __future__ import annotations

import random
from typing import Union

RngLike = Union[None, int, random.Random]


def ensure_rng(seed: RngLike = None) -> random.Random:
    """Return a :class:`random.Random` for the given seed-like value.

    Args:
        seed: ``None`` for fresh entropy, an ``int`` for a deterministic
            stream, or an existing ``random.Random`` to be used as-is.

    Returns:
        A ``random.Random`` instance. When ``seed`` is already a generator it
        is returned unchanged so callers can share one stream.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rng(rng: random.Random, stream: int) -> random.Random:
    """Derive an independent child generator from ``rng``.

    Used by multi-run experiment drivers so that run *i* of an experiment is
    reproducible regardless of how many draws earlier runs consumed.

    Args:
        rng: Parent generator (consumed: one 64-bit draw).
        stream: Index of the child stream; children with distinct indices
            from the same parent state are independent for practical
            purposes.

    Returns:
        A new ``random.Random`` seeded from the parent and the stream index.
    """
    base = rng.getrandbits(64)
    return random.Random((base << 16) ^ (stream * 0x9E3779B97F4A7C15 & ((1 << 64) - 1)))


def choice_from_set(rng: random.Random, items: "set | frozenset") -> object:
    """Uniformly choose one element from a set.

    ``random.choice`` requires a sequence; converting a large neighborhood
    set to a tuple on every walk step would dominate runtime, so we index
    into the set via an iterator after drawing an offset.

    Args:
        rng: Source of randomness.
        items: Non-empty set to draw from.

    Returns:
        One uniformly chosen element.

    Raises:
        IndexError: If ``items`` is empty.
    """
    n = len(items)
    if n == 0:
        raise IndexError("cannot choose from an empty set")
    target = rng.randrange(n)
    for i, item in enumerate(items):
        if i == target:
            return item
    raise AssertionError("unreachable")  # pragma: no cover
