"""Small statistics helpers used across estimators and experiment drivers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence.

    Raises:
        ValueError: If ``values`` is empty.
    """
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float], ddof: int = 1) -> float:
    """Sample variance with ``ddof`` delta degrees of freedom.

    Args:
        values: Observations; must contain more than ``ddof`` entries.
        ddof: 1 for the unbiased sample variance (default), 0 for the
            population variance.

    Raises:
        ValueError: If there are not enough observations.
    """
    n = len(values)
    if n <= ddof:
        raise ValueError(f"need more than {ddof} values, got {n}")
    m = mean(values)
    return sum((x - m) ** 2 for x in values) / (n - ddof)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|``.

    The measure used throughout the paper's Figure 7 and Figure 11
    experiments.

    Raises:
        ValueError: If ``truth`` is zero (relative error undefined).
    """
    if truth == 0:
        raise ValueError("relative error undefined for zero ground truth")
    return abs(estimate - truth) / abs(truth)


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Args:
        values: At least two observations.
        z: Critical value (1.96 for 95%).

    Returns:
        ``(low, high)`` bounds around the sample mean.
    """
    m = mean(values)
    if len(values) < 2:
        return (m, m)
    half = z * math.sqrt(variance(values) / len(values))
    return (m - half, m + half)


class OnlineMeanVar:
    """Welford's online mean/variance accumulator.

    Used by the Geweke diagnostic and the walk-trace bookkeeping where
    re-scanning the full trace on every update would be quadratic.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of observations folded so far."""
        return self._n

    @property
    def mean(self) -> float:
        """Current mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Current population variance (0.0 with fewer than two points)."""
        if self._n < 2:
            return 0.0
        return self._m2 / self._n

    @property
    def sample_variance(self) -> float:
        """Current sample (ddof=1) variance (0.0 with fewer than two points)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)
