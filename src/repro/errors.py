"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class to handle any library failure.  The
sub-hierarchy mirrors the subsystem layout described in ``DESIGN.md``:
graph substrate, restrictive-interface simulation, data stores, random
walks, and experiment drivers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for graph-substrate errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was referenced that does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that does not exist in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """A self-loop was supplied where simple-graph semantics are required."""

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loop on node {node!r} is not allowed")
        self.node = node


class GraphFormatError(GraphError, ValueError):
    """A serialized graph (edge list / JSON) could not be parsed."""


class InterfaceError(ReproError):
    """Base class for restrictive web-interface errors."""


class RateLimitExceededError(InterfaceError):
    """The simulated provider refused a query because the rate limit is hit.

    Attributes:
        retry_after: Seconds (simulated time) until the next query would be
            admitted.
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"rate limit exceeded; retry after {retry_after:.3f} simulated seconds"
        )
        self.retry_after = retry_after


class UnknownUserError(InterfaceError, KeyError):
    """The interface was queried for a user id that does not exist."""

    def __init__(self, user: object) -> None:
        super().__init__(f"user {user!r} does not exist in the social network")
        self.user = user


class PrivateUserError(InterfaceError):
    """The user exists but refuses individual-user queries.

    Real crawls hit these constantly (private profiles, deleted accounts
    still present in neighbor lists); samplers must skip them without
    spending further budget.
    """

    def __init__(self, user: object) -> None:
        super().__init__(f"user {user!r} is private/inaccessible")
        self.user = user


class QueryBudgetExhaustedError(InterfaceError):
    """A hard budget on unique queries was configured and has been spent."""

    def __init__(self, budget: int) -> None:
        super().__init__(f"unique-query budget of {budget} exhausted")
        self.budget = budget


class ProviderError(InterfaceError):
    """Base class for failures inside a :class:`SocialProvider` backend."""


class ProviderTimeoutError(ProviderError):
    """Every fetch attempt against a flaky provider timed out.

    An abandoned fetch never completes, so the interface bills neither
    query cost nor simulated time for it; the time the retries *would*
    have consumed is reported here for callers that catch and keep
    crawling on their own accounting.

    Attributes:
        user: The user whose fetch was abandoned.
        attempts: How many attempts were made before giving up.
        wasted_latency: Simulated seconds the timed-out attempts consumed.
    """

    def __init__(self, user: object, attempts: int, wasted_latency: float = 0.0) -> None:
        super().__init__(f"fetch of user {user!r} timed out after {attempts} attempts")
        self.user = user
        self.attempts = attempts
        self.wasted_latency = wasted_latency


class DataStoreError(ReproError):
    """Base class for key-value / document store errors."""


class SnapshotError(DataStoreError):
    """A sampling-state snapshot could not be written, read, or applied.

    Raised for corrupt/truncated snapshot payloads, unsupported value
    types, version mismatches, and attempts to restore a snapshot into an
    object of the wrong shape (e.g. a different sampler type).
    """


class DocumentNotFoundError(DataStoreError, KeyError):
    """Lookup of a missing document id in a :class:`DocumentStore`."""

    def __init__(self, doc_id: object) -> None:
        super().__init__(f"document {doc_id!r} not found")
        self.doc_id = doc_id


class WalkError(ReproError):
    """Base class for random-walk errors."""


class DeadEndError(WalkError):
    """The walk reached a node with no available neighbors in its view."""

    def __init__(self, node: object) -> None:
        super().__init__(f"walk reached dead end at node {node!r}")
        self.node = node


class NotConvergedError(WalkError):
    """A convergence monitor was asked for a verdict before it had data."""


class PlanningError(ReproError):
    """Dispatch-planner configuration or wiring failures.

    Raised when a :class:`~repro.planning.DispatchPlanner` is constructed
    with invalid knobs, bound twice, or consulted before being bound to an
    interface/fleet pair.
    """


class ComposeError(ReproError):
    """Stack-composition failures.

    Raised by :mod:`repro.compose` when a spec holds invalid knobs or the
    requested combination cannot be assembled (e.g. a planner without a
    fleet to plan over).
    """


class ServiceError(ReproError):
    """Multi-tenant sampling-service failures.

    Raised by :mod:`repro.service` on unknown or duplicate tenants,
    malformed requests, and service-snapshot mismatches.
    """


class EstimationError(ReproError):
    """Importance-sampling / aggregate estimation failures."""


class ExperimentError(ReproError):
    """Experiment-driver configuration or execution failures."""
