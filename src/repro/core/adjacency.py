"""Numpy-backed compact adjacency: the walk engines' array substrate.

The dict-of-dicts adjacency in :mod:`repro.graph.adjacency` is the right
*authority* — O(1) membership, insertion-ordered iteration, cheap set-view
intersections for the MTO removal criterion — but every per-step structure
the walk engines touch through it is a Python object: neighbor tuples of
hashable ids, per-id hashing on every draw, one attribute chase per
degree.  This module provides the flat mirror that the hot paths index
instead:

* **Id interning** (:class:`NodeInterner`): every node id maps to a dense
  ``int32`` index in first-seen order; all adjacency structure below the
  interner is integer arrays.
* **Arena rows** (:class:`CompactAdjacency`): each node's neighbor row
  lives in one shared ``int32`` buffer with capacity-doubling relocation,
  so appends are amortized O(1) and *every* row is addressable by
  ``(start, degree)`` — which is what makes one-call batched operations
  possible.  Insertion order is preserved exactly, removals shift-left —
  bit-for-bit the ordering semantics of the insertion-ordered dict rows,
  because **the ordering is the draw determinism**: a seeded walk draws
  ``seq[rng.randrange(len(seq))]`` and any reordering changes every
  subsequent sample.
* **Batched draws** (:meth:`CompactAdjacency.draw_many`): one neighbor per
  chain in a single numpy gather.  The per-chain ``random.Random``
  draws themselves are *not* vectorized — that is the compatibility shim:
  each chain's ``randrange(degree)`` consumes exactly the Mersenne values
  the scalar code consumed, so replays are bit-for-bit identical; what
  the batch removes is the per-draw dict/tuple/hash traffic, replaced by
  one fancy-index into the arena.
* **Batched lookups**: :meth:`degrees_many` / :meth:`row_mask` answer
  degree and membership for a whole frontier in one call — what
  ``OverlayGraph.ensure_known_many`` runs on.
* **CSR export** (:meth:`csr`): offsets + column-index arrays over live
  rows for the spectral/conductance analyses.

The store deliberately has no removal-of-identity: interned ids stay
interned (other rows may reference them); a node's *row* can be dropped
and later recreated.  ``degree == -1`` is the "no row" sentinel.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

Node = Hashable

_NO_ROW = -1


class NodeInterner:
    """Dense first-seen ``id -> int32 index`` interning.

    Example:
        >>> interner = NodeInterner()
        >>> interner.intern("alice"), interner.intern("bob"), interner.intern("alice")
        (0, 1, 0)
        >>> interner.node(1)
        'bob'
    """

    def __init__(self) -> None:
        self._index: Dict[Node, int] = {}
        self._nodes: List[Node] = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def intern(self, node: Node) -> int:
        """The index for ``node``, assigning the next dense one if new."""
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._nodes)
            self._index[node] = idx
            self._nodes.append(node)
        return idx

    def index(self, node: Node) -> Optional[int]:
        """The index for ``node``, or ``None`` if never interned."""
        return self._index.get(node)

    def node(self, idx: int) -> Node:
        """The node id at ``idx`` (inverse of :meth:`intern`)."""
        return self._nodes[idx]

    def nodes(self) -> Tuple[Node, ...]:
        """All interned ids, in index order."""
        return tuple(self._nodes)


class CompactAdjacency:
    """Arena-backed int32 adjacency rows with dict-identical ordering.

    Rows grow by relocation: when a node's row overflows its slot, the row
    is copied to the end of the arena with doubled capacity and the old
    slot becomes dead space (bounded at ~half the arena; :meth:`csr`
    exports compacted).  All per-node bookkeeping — row start, live
    degree, slot capacity — is flat int64 arrays, so batched degree and
    membership lookups are single fancy-index reads.

    Not thread-safe; mirrors exactly one authoritative dict structure
    (``Graph._adj`` or ``OverlayGraph._known``) and must be mutated in
    lockstep with it.
    """

    def __init__(self) -> None:
        self._interner = NodeInterner()
        self._flat = np.empty(1024, dtype=np.int32)
        self._used = 0  # arena high-water mark
        n0 = 16
        self._start = np.zeros(n0, dtype=np.int64)
        self._deg = np.full(n0, _NO_ROW, dtype=np.int64)
        self._cap = np.zeros(n0, dtype=np.int64)
        # node index -> cached id-tuple of its row (the ``neighbors_seq``
        # the engines hand to ``randrange`` draws); dropped on mutation.
        self._seq_cache: Dict[int, Tuple[Node, ...]] = {}

    # ------------------------------------------------------------------
    # growth plumbing
    # ------------------------------------------------------------------
    def _grow_meta(self, need: int) -> None:
        size = len(self._deg)
        if need <= size:
            return
        new = max(need, size * 2)
        self._start = np.resize(self._start, new)
        self._start[size:] = 0
        self._deg = np.resize(self._deg, new)
        self._deg[size:] = _NO_ROW
        self._cap = np.resize(self._cap, new)
        self._cap[size:] = 0

    def _grow_flat(self, need: int) -> None:
        if need <= len(self._flat):
            return
        new = np.empty(max(need, len(self._flat) * 2), dtype=np.int32)
        new[: self._used] = self._flat[: self._used]
        self._flat = new

    def _alloc_slot(self, capacity: int) -> int:
        start = self._used
        self._grow_flat(start + capacity)
        self._used = start + capacity
        return start

    def _intern(self, node: Node) -> int:
        idx = self._interner.intern(node)
        self._grow_meta(idx + 1)
        return idx

    # ------------------------------------------------------------------
    # mutation (lockstep with the authoritative dict)
    # ------------------------------------------------------------------
    def ensure_row(self, node: Node) -> int:
        """Intern ``node`` and give it an (empty) row if it has none."""
        idx = self._intern(node)
        if self._deg[idx] == _NO_ROW:
            self._deg[idx] = 0
        return idx

    def append(self, u: Node, v: Node) -> None:
        """Append ``v`` to ``u``'s row (caller guarantees ``v`` is new).

        Mirrors ``adj[u][v] = None`` on a key known absent: insertion
        order is append order.  ``u`` gains a row if it had none; ``v``
        is interned but gains no row.
        """
        ui = self.ensure_row(u)
        vi = self._intern(v)
        deg = self._deg[ui]
        if deg == self._cap[ui]:
            new_cap = int(max(4, deg * 2))
            start = self._alloc_slot(new_cap)
            if deg:
                old = self._start[ui]
                self._flat[start : start + deg] = self._flat[old : old + deg]
            self._start[ui] = start
            self._cap[ui] = new_cap
        self._flat[self._start[ui] + deg] = vi
        self._deg[ui] = deg + 1
        self._seq_cache.pop(ui, None)

    def remove(self, u: Node, v: Node) -> None:
        """Remove ``v`` from ``u``'s row, shifting survivors left.

        Mirrors ``del adj[u][v]``: remaining insertion order is
        preserved.  No-op if ``v`` is not in the row.
        """
        ui = self._interner.index(u)
        vi = self._interner.index(v)
        if ui is None or vi is None or self._deg[ui] <= 0:
            return
        start, deg = int(self._start[ui]), int(self._deg[ui])
        row = self._flat[start : start + deg]
        hits = np.nonzero(row == vi)[0]
        if not len(hits):
            return
        pos = int(hits[0])
        row[pos : deg - 1] = row[pos + 1 : deg]
        self._deg[ui] = deg - 1
        self._seq_cache.pop(ui, None)

    def set_row(self, node: Node, neighbors: Iterable[Node]) -> None:
        """Replace ``node``'s row with ``neighbors`` in the given order."""
        idx = self._intern(node)
        ids = [self._intern(v) for v in neighbors]
        deg = len(ids)
        if deg > self._cap[idx]:
            new_cap = int(max(4, deg * 2))
            self._start[idx] = self._alloc_slot(new_cap)
            self._cap[idx] = new_cap
        start = self._start[idx]
        self._flat[start : start + deg] = np.asarray(ids, dtype=np.int32)
        self._deg[idx] = deg
        self._seq_cache.pop(idx, None)

    def drop_row(self, node: Node) -> None:
        """Forget ``node``'s row (the id stays interned)."""
        idx = self._interner.index(node)
        if idx is None:
            return
        self._deg[idx] = _NO_ROW
        self._seq_cache.pop(idx, None)

    def clear(self) -> None:
        """Drop every row and all interned ids."""
        self.__init__()

    # ------------------------------------------------------------------
    # scalar reads
    # ------------------------------------------------------------------
    def has_row(self, node: Node) -> bool:
        """Whether ``node`` has a live row (isolated-with-row counts)."""
        idx = self._interner.index(node)
        return idx is not None and self._deg[idx] != _NO_ROW

    def degree(self, node: Node) -> Optional[int]:
        """Row length, or ``None`` when ``node`` has no live row."""
        idx = self._interner.index(node)
        if idx is None:
            return None
        deg = int(self._deg[idx])
        return None if deg == _NO_ROW else deg

    def seq(self, node: Node) -> Tuple[Node, ...]:
        """The row as a stable id-tuple (cached until the row mutates).

        Raises:
            KeyError: If ``node`` has no live row.
        """
        idx = self._interner.index(node)
        if idx is None or self._deg[idx] == _NO_ROW:
            raise KeyError(node)
        seq = self._seq_cache.get(idx)
        if seq is None:
            start, deg = int(self._start[idx]), int(self._deg[idx])
            node_of = self._interner.node
            seq = tuple(node_of(int(i)) for i in self._flat[start : start + deg])
            self._seq_cache[idx] = seq
        return seq

    def draw(self, node: Node, rng: random.Random) -> Optional[Node]:
        """Uniform draw from ``node``'s row — dict-draw compatible.

        Consumes exactly one ``rng.randrange(degree)`` and indexes the
        arena directly; ``None`` for an empty row *without* consuming
        RNG, matching ``Graph.random_neighbor``.

        Raises:
            KeyError: If ``node`` has no live row.
        """
        idx = self._interner.index(node)
        if idx is None or self._deg[idx] == _NO_ROW:
            raise KeyError(node)
        deg = int(self._deg[idx])
        if not deg:
            return None
        j = rng.randrange(deg)
        return self._interner.node(int(self._flat[self._start[idx] + j]))

    # ------------------------------------------------------------------
    # batched reads — the vectorized lane
    # ------------------------------------------------------------------
    def _indexes(self, nodes: Sequence[Node]) -> np.ndarray:
        index = self._interner.index
        return np.fromiter(
            ((i if (i := index(n)) is not None else -1) for n in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    def row_mask(self, nodes: Sequence[Node]) -> np.ndarray:
        """Boolean live-row membership for a whole batch, one call."""
        idxs = self._indexes(nodes)
        mask = idxs >= 0
        mask[mask] = self._deg[idxs[mask]] != _NO_ROW
        return mask

    def degrees_many(self, nodes: Sequence[Node]) -> np.ndarray:
        """Row lengths for a batch; ``-1`` marks a missing row."""
        idxs = self._indexes(nodes)
        out = np.full(len(idxs), _NO_ROW, dtype=np.int64)
        known = idxs >= 0
        out[known] = self._deg[idxs[known]]
        return out

    def draw_many(
        self, nodes: Sequence[Node], rngs: Sequence[random.Random]
    ) -> List[Optional[Node]]:
        """One uniform neighbor draw per ``(node, rng)`` pair.

        The compatibility shim: chain ``i``'s pick index is
        ``rngs[i].randrange(degree_i)`` — the *same* Mersenne consumption
        as ``len(rngs)`` scalar draws, in list order, so serial replays
        are bit-for-bit identical.  The picks then resolve through a
        single numpy gather instead of per-chain tuple indexing and
        hashing.  Empty rows yield ``None`` and consume no RNG.

        Raises:
            KeyError: If any node has no live row.
        """
        idxs = self._indexes(nodes)
        if len(idxs) == 0:
            return []
        if (idxs < 0).any() or (self._deg[idxs] == _NO_ROW).any():
            bad = next(n for n in nodes if not self.has_row(n))
            raise KeyError(bad)
        degs = self._deg[idxs]
        offs = np.fromiter(
            ((rng.randrange(int(k)) if k else 0) for rng, k in zip(rngs, degs)),
            dtype=np.int64,
            count=len(idxs),
        )
        picked = self._flat[self._start[idxs] + offs]  # the one gather
        node_of = self._interner.node
        return [
            node_of(int(p)) if k else None for p, k in zip(picked, degs)
        ]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def nodes_with_rows(self) -> Tuple[Node, ...]:
        """Ids with live rows, in intern (first-seen) order."""
        node_of = self._interner.node
        live = np.nonzero(self._deg[: len(self._interner)] != _NO_ROW)[0]
        return tuple(node_of(int(i)) for i in live)

    def csr(self) -> Tuple[Tuple[Node, ...], np.ndarray, np.ndarray]:
        """Compacted CSR view over live rows.

        Returns:
            ``(nodes, offsets, columns)``: ``nodes`` are the live-row ids
            in intern order; ``offsets`` is ``int64`` of length
            ``len(nodes) + 1``; ``columns`` is ``int32`` of summed row
            lengths, where column values are *intern indexes* (positions
            in the full interner, resolvable via the interner even for
            neighbors that have no row of their own).
        """
        n = len(self._interner)
        live = np.nonzero(self._deg[:n] != _NO_ROW)[0]
        degs = self._deg[live]
        offsets = np.zeros(len(live) + 1, dtype=np.int64)
        np.cumsum(degs, out=offsets[1:])
        columns = np.empty(int(offsets[-1]), dtype=np.int32)
        for out_pos, idx in enumerate(live):
            start, deg = int(self._start[idx]), int(self._deg[idx])
            columns[offsets[out_pos] : offsets[out_pos + 1]] = self._flat[start : start + deg]
        node_of = self._interner.node
        return tuple(node_of(int(i)) for i in live), offsets, columns

    @property
    def interner(self) -> NodeInterner:
        """The id interner (shared vocabulary for csr column values)."""
        return self._interner
