"""Constructive counterexamples for the paper's tightness corollaries.

The paper does not only prove its criteria sound — it proves them *tight*:

* **Corollary 1**: whenever Theorem 3's inequality fails, there exists a
  graph (with the given common-neighborhood size and degrees) in which the
  edge *is* cross-cutting.  :func:`corollary1_graph` builds that graph,
  following the appendix construction: `u` and `v` share `n` common
  neighbors, carry their remaining degree as "outer" pendant-decorated
  edges, and every auxiliary node is inflated with pendants so the
  minimum-conductance cut is forced through the (u, v) region.
* **Corollary 2**: degree 3 is the *only* safe replacement pivot.
  :func:`corollary2_graph` builds, for a pivot degree ``kv ≥ 4``, a graph
  where both ``e_uv`` and ``e_wv`` are cross-cutting — so replacing one
  with ``e_uw`` would merge two cross-cutting edges into one and lower
  conductance (the paper's Fig. 13 situation).

These are used by the test suite to verify the tightness claims
empirically (via exact minimum-conductance search) rather than taking the
appendix's word for it.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.adjacency import Graph


def _attach_pendants(graph: Graph, node, count: int, tag: str) -> None:
    """Give ``node`` ``count`` degree-1 neighbors (unique string ids)."""
    for i in range(count):
        graph.add_edge(node, f"{tag}:{node}:{i}")


def corollary1_graph(
    common_neighbors: int, ku: int, kv: int, pendant_weight: int = 6
) -> Tuple[Graph, Tuple[str, str]]:
    """A graph where ``e_uv`` (with the given local stats) is cross-cutting.

    Valid when Theorem 3's inequality FAILS for the parameters, i.e.
    ``ceil(n/2) + 1 <= max(ku, kv)/2`` — Corollary 1's hypothesis.

    Args:
        common_neighbors: Desired ``|N(u) ∩ N(v)|``.
        ku: Desired degree of ``u`` (≥ common_neighbors + 1).
        kv: Desired degree of ``v`` (≥ common_neighbors + 1).
        pendant_weight: Pendants attached to every auxiliary node; the
            appendix's ``k_w ≫ max(ku, kv)`` inflation that forces the
            minimum cut through the (u, v) region.

    Returns:
        ``(graph, ("u", "v"))``.

    Raises:
        ValueError: If the degree targets cannot host the common
            neighborhood plus the (u, v) edge.
    """
    if ku < common_neighbors + 1 or kv < common_neighbors + 1:
        raise ValueError("degrees must cover the common neighborhood and e_uv")
    g = Graph()
    u, v = "u", "v"
    g.add_edge(u, v)
    for i in range(common_neighbors):
        w = f"c{i}"
        g.add_edge(u, w)
        g.add_edge(v, w)
        _attach_pendants(g, w, pendant_weight, "pw")
    for i in range(ku - common_neighbors - 1):
        o = f"ou{i}"
        g.add_edge(u, o)
        _attach_pendants(g, o, pendant_weight, "pu")
    for i in range(kv - common_neighbors - 1):
        o = f"ov{i}"
        g.add_edge(v, o)
        _attach_pendants(g, o, pendant_weight, "pv")
    return g, (u, v)


def corollary2_graph(kv: int = 4, block: int = 5) -> Tuple[Graph, Tuple[str, str, str]]:
    """A graph where replacing ``e_uv`` by ``e_uw`` at a degree-``kv``
    pivot lowers the conductance.

    Construction (paper Fig. 13): two dense blocks; the pivot ``v`` sits
    between them with ``u`` and ``w`` in the *other* block, so both
    ``e_uv`` and ``e_wv`` are cross-cutting.  Replacing ``e_uv`` with
    ``e_uw`` turns two cross-cutting edges into one intra-block edge plus
    one cross-cutting edge — strictly fewer crossings, lower conductance.

    Args:
        kv: Pivot degree (must be ≥ 4; degree 3 is exactly the safe case).
        block: Size of each dense block.

    Returns:
        ``(graph, ("u", "v", "w"))``.

    Raises:
        ValueError: If ``kv < 4`` (Theorem 4's safe case) or blocks are
            too small.
    """
    if kv < 4:
        raise ValueError("Corollary 2 concerns pivot degrees >= 4")
    if block < 3:
        raise ValueError("blocks need at least 3 nodes")
    g = Graph()
    left = [f"L{i}" for i in range(block)]
    right = [f"R{i}" for i in range(block)]
    for side in (left, right):
        for i in range(block):
            for j in range(i + 1, block):
                g.add_edge(side[i], side[j])
    v = "v"
    u, w = right[0], right[1]
    # v lives in the left block with kv - 2 intra-block edges, plus the
    # two cross-cutting edges to u and w.
    for i in range(kv - 2):
        g.add_edge(v, left[i % block])
    g.add_edge(v, u)
    g.add_edge(v, w)
    return g, (u, v, w)
