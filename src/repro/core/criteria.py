"""Edge-manipulation criteria: Theorems 3, 4, and 5.

These are the paper's theoretical core.  All three operate on *local*
knowledge only — the neighborhoods of the edge's endpoints (already paid
for by the walk) plus, for Theorem 5, degrees of common neighbors cached
from earlier steps.

**Theorem 3 (removal).**  For an edge ``e_uv``, if

    ceil(|N(u) ∩ N(v)| / 2) + 1  >  max(k_u, k_v) / 2

then ``e_uv`` is provably *not* cross-cutting and can be removed from the
overlay without lowering conductance.  Corollary 1 shows the bound is
tight.

**Theorem 5 (extension).**  With cached degrees, let
``N* = {w ∈ N(u) ∩ N(v) : k_w known and 2 ≤ k_w ≤ 3}``.  If

    ceil((|N(u) ∩ N(v)| − |N*|) / 2) + 1 + ½ Σ_{w∈N*} (4 − k_w)
        >  max(k_u, k_v) / 2

then ``e_uv`` is not cross-cutting.  With ``N* = ∅`` this reduces to
Theorem 3.

**Theorem 4 (replacement).**  If ``k_v = 3`` and ``u, w ∈ N(v)``, then
replacing ``e_uv`` by ``e_uw`` never decreases conductance (and may
increase it).  Corollary 2 shows ``k_v = 3`` is the *only* safe degree.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Hashable, Mapping, Optional

Node = Hashable


def removal_criterion(common_neighbors: int, ku: int, kv: int) -> bool:
    """Theorem 3's inequality: is the edge provably non-cross-cutting?

    Args:
        common_neighbors: ``|N(u) ∩ N(v)|``.
        ku: Degree of ``u`` (including the edge to ``v``).
        kv: Degree of ``v`` (including the edge to ``u``).

    Returns:
        ``True`` iff ``ceil(n/2) + 1 > max(ku, kv)/2``.

    Raises:
        ValueError: On negative counts or degrees below 1 (the edge itself
            guarantees degree ≥ 1 at both ends).
    """
    if common_neighbors < 0:
        raise ValueError("common neighbor count cannot be negative")
    if ku < 1 or kv < 1:
        raise ValueError("endpoint degrees must be at least 1")
    return math.ceil(common_neighbors / 2) + 1 > max(ku, kv) / 2


def extension_criterion(
    common_neighbors: int,
    ku: int,
    kv: int,
    known_common_degrees: Mapping[Node, int],
) -> bool:
    """Theorem 5's inequality, using cached common-neighbor degrees.

    Only cached degrees in {2, 3} contribute (the paper's ``N*``); larger
    cached degrees are ignored, exactly as the theorem prescribes.

    Args:
        common_neighbors: ``|N(u) ∩ N(v)|``.
        ku: Degree of ``u``.
        kv: Degree of ``v``.
        known_common_degrees: Mapping ``w -> k_w`` for those common
            neighbors whose degree the sampler already knows (from its
            local cache; never queried for this test).

    Returns:
        ``True`` iff the extended inequality holds.

    Raises:
        ValueError: On invalid counts, or if more qualifying degrees are
            supplied than there are common neighbors.
    """
    if common_neighbors < 0:
        raise ValueError("common neighbor count cannot be negative")
    if ku < 1 or kv < 1:
        raise ValueError("endpoint degrees must be at least 1")
    n_star = {w: k for w, k in known_common_degrees.items() if 2 <= k <= 3}
    if len(n_star) > common_neighbors:
        raise ValueError("N* cannot exceed the common neighborhood")
    bonus = 0.5 * sum(4 - k for k in n_star.values())
    lhs = math.ceil((common_neighbors - len(n_star)) / 2) + 1 + bonus
    return lhs > max(ku, kv) / 2


class NeighborhoodView:
    """Minimal protocol the criteria need: neighborhoods and degrees.

    Both :class:`repro.graph.adjacency.Graph` and
    :class:`repro.core.overlay.OverlayGraph` satisfy it structurally
    (``neighbors(node)`` returning a set and ``degree(node)``).
    """

    def neighbors(self, node: Node) -> AbstractSet[Node]:  # pragma: no cover
        raise NotImplementedError

    def degree(self, node: Node) -> int:  # pragma: no cover
        raise NotImplementedError


def is_removable(
    view,
    u: Node,
    v: Node,
    cached_degrees: Optional[Mapping[Node, int]] = None,
) -> bool:
    """Whether edge ``(u, v)`` is removable under Theorem 3 / Theorem 5.

    Args:
        view: Any object with ``neighbors(node)`` and ``degree(node)`` —
            the overlay during a walk, or a plain graph offline.
        u: One endpoint.
        v: The other endpoint.
        cached_degrees: Optional ``w -> k_w`` cache enabling the Theorem 5
            extension; ``None`` (or an empty mapping) falls back to
            Theorem 3.

    Returns:
        ``True`` iff the applicable criterion certifies the edge
        non-cross-cutting.

    Raises:
        ValueError: If ``(u, v)`` is not an edge of ``view``.
    """
    nu = view.neighbors(u)
    nv = view.neighbors(v)
    if v not in nu:
        raise ValueError(f"({u!r}, {v!r}) is not an edge")
    common = nu & nv if isinstance(nu, (set, frozenset)) else set(nu) & set(nv)
    ku = view.degree(u)
    kv = view.degree(v)
    if cached_degrees:
        known = {w: cached_degrees[w] for w in common if w in cached_degrees}
        return extension_criterion(len(common), ku, kv, known)
    return removal_criterion(len(common), ku, kv)


def replacement_allowed(kv: int) -> bool:
    """Theorem 4 / Corollary 2: replacement is safe exactly when k_v = 3.

    Raises:
        ValueError: For non-positive degrees.
    """
    if kv < 1:
        raise ValueError("degree must be positive")
    return kv == 3
