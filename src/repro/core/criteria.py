"""Edge-manipulation criteria: Theorems 3, 4, and 5.

These are the paper's theoretical core.  All three operate on *local*
knowledge only — the neighborhoods of the edge's endpoints (already paid
for by the walk) plus, for Theorem 5, degrees of common neighbors cached
from earlier steps.

**Theorem 3 (removal).**  For an edge ``e_uv``, if

    ceil(|N(u) ∩ N(v)| / 2) + 1  >  max(k_u, k_v) / 2

then ``e_uv`` is provably *not* cross-cutting and can be removed from the
overlay without lowering conductance.  Corollary 1 shows the bound is
tight.

**Theorem 5 (extension).**  With cached degrees, let
``N* ⊆ {w ∈ N(u) ∩ N(v) : k_w known and 2 ≤ k_w ≤ 3}``.  If

    ceil((|N(u) ∩ N(v)| − |N*|) / 2) + 1 + ½ Σ_{w∈N*} (4 − k_w)
        >  max(k_u, k_v) / 2

then ``e_uv`` is not cross-cutting.  Any subset of the qualifying cached
common neighbors is a valid ``N*`` (each choice is its own sound
certificate), so the implementation evaluates the inequality at the most
favorable subset; with ``N* = ∅`` it reduces to Theorem 3, which is why
extra cached knowledge can never certify *less* than Theorem 3 — taking
the full qualifying set blindly would lose that dominance for odd common
counts, where dropping a degree-3 member costs a full ceil increment but
only refunds ½.

**Theorem 4 (replacement).**  If ``k_v = 3`` and ``u, w ∈ N(v)``, then
replacing ``e_uv`` by ``e_uw`` never decreases conductance (and may
increase it).  Corollary 2 shows ``k_v = 3`` is the *only* safe degree.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Hashable, Mapping, Optional

Node = Hashable


def removal_criterion(common_neighbors: int, ku: int, kv: int) -> bool:
    """Theorem 3's inequality: is the edge provably non-cross-cutting?

    Args:
        common_neighbors: ``|N(u) ∩ N(v)|``.
        ku: Degree of ``u`` (including the edge to ``v``).
        kv: Degree of ``v`` (including the edge to ``u``).

    Returns:
        ``True`` iff ``ceil(n/2) + 1 > max(ku, kv)/2``.

    Raises:
        ValueError: On negative counts or degrees below 1 (the edge itself
            guarantees degree ≥ 1 at both ends).
    """
    if common_neighbors < 0:
        raise ValueError("common neighbor count cannot be negative")
    if ku < 1 or kv < 1:
        raise ValueError("endpoint degrees must be at least 1")
    return math.ceil(common_neighbors / 2) + 1 > max(ku, kv) / 2


def extension_criterion(
    common_neighbors: int,
    ku: int,
    kv: int,
    known_common_degrees: Mapping[Node, int],
) -> bool:
    """Theorem 5's inequality, using cached common-neighbor degrees.

    Only cached degrees in {2, 3} qualify (the paper's ``N*``); larger
    cached degrees are ignored, exactly as the theorem prescribes.  The
    inequality is evaluated at the most favorable *subset* of the
    qualifying neighbors: every subset is a valid ``N*``, and the full set
    is not always the strongest choice (for an odd common count, moving a
    degree-3 neighbor into ``N*`` trades a whole ceil increment for a ½
    bonus).  The empty subset recovers Theorem 3, so this criterion
    dominates it by construction.

    Args:
        common_neighbors: ``|N(u) ∩ N(v)|``.
        ku: Degree of ``u``.
        kv: Degree of ``v``.
        known_common_degrees: Mapping ``w -> k_w`` for those common
            neighbors whose degree the sampler already knows (from its
            local cache; never queried for this test).

    Returns:
        ``True`` iff the extended inequality holds for some valid ``N*``.

    Raises:
        ValueError: On invalid counts, or if more qualifying degrees are
            supplied than there are common neighbors.
    """
    if common_neighbors < 0:
        raise ValueError("common neighbor count cannot be negative")
    if ku < 1 or kv < 1:
        raise ValueError("endpoint degrees must be at least 1")
    qualifying = sorted(k for k in known_common_degrees.values() if 2 <= k <= 3)
    if len(qualifying) > common_neighbors:
        raise ValueError("N* cannot exceed the common neighborhood")
    # For a fixed |N*| = m the ceil term is constant, so the best m-subset
    # takes the m largest bonuses — i.e. the m smallest degrees.  Scanning
    # m over the sorted prefix therefore visits every optimal subset.
    best = math.ceil(common_neighbors / 2) + 1.0  # m = 0: Theorem 3
    bonus = 0.0
    for m, k in enumerate(qualifying, start=1):
        bonus += 0.5 * (4 - k)
        lhs = math.ceil((common_neighbors - m) / 2) + 1 + bonus
        if lhs > best:
            best = lhs
    return best > max(ku, kv) / 2


class NeighborhoodView:
    """Minimal protocol the criteria need: neighborhoods and degrees.

    Both :class:`repro.graph.adjacency.Graph` and
    :class:`repro.core.overlay.OverlayGraph` satisfy it structurally
    (``neighbors(node)`` returning a set and ``degree(node)``).
    """

    def neighbors(self, node: Node) -> AbstractSet[Node]:  # pragma: no cover
        raise NotImplementedError

    def degree(self, node: Node) -> int:  # pragma: no cover
        raise NotImplementedError


def is_removable(
    view,
    u: Node,
    v: Node,
    cached_degrees: Optional[Mapping[Node, int]] = None,
) -> bool:
    """Whether edge ``(u, v)`` is removable under Theorem 3 / Theorem 5.

    Args:
        view: Any object with ``neighbors(node)`` and ``degree(node)`` —
            the overlay during a walk, or a plain graph offline.
        u: One endpoint.
        v: The other endpoint.
        cached_degrees: Optional ``w -> k_w`` cache enabling the Theorem 5
            extension; ``None`` (or an empty mapping) falls back to
            Theorem 3.

    Returns:
        ``True`` iff the applicable criterion certifies the edge
        non-cross-cutting.

    Raises:
        ValueError: If ``(u, v)`` is not an edge of ``view``.
    """
    # Prefer copy-free views when the substrate offers them (Graph and
    # OverlayGraph both do) — this check runs once per candidate step.
    view_fn = getattr(view, "neighbors_view", None)
    if view_fn is not None:
        nu = view_fn(u)
        nv = view_fn(v)
    else:
        nu = view.neighbors(u)
        nv = view.neighbors(v)
    if v not in nu:
        raise ValueError(f"({u!r}, {v!r}) is not an edge")
    try:
        common = nu & nv
    except TypeError:
        common = set(nu) & set(nv)
    ku = len(nu)
    kv = len(nv)
    if cached_degrees:
        known = {w: cached_degrees[w] for w in common if w in cached_degrees}
        return extension_criterion(len(common), ku, kv, known)
    return removal_criterion(len(common), ku, kv)


def replacement_allowed(kv: int) -> bool:
    """Theorem 4 / Corollary 2: replacement is safe exactly when k_v = 3.

    Raises:
        ValueError: For non-positive degrees.
    """
    if kv < 1:
        raise ValueError("degree must be positive")
    return kv == 3
