"""The virtual overlay topology MTO-Sampler walks on.

The sampler cannot modify the real social network; what it modifies is its
*own view* — the overlay graph G* (§I-C).  :class:`OverlayGraph` keeps, per
node, the set of edge modifications recorded so far (removals and
additions), and materializes a node's overlay neighborhood the first time
the walk needs it by combining the interface's query answer with those
modifications.  All bookkeeping is symmetric: removing ``(u, v)`` at ``u``
is visible from ``v`` whenever ``v`` is materialized, so the overlay is a
well-defined undirected graph at every instant.

Materialized neighborhoods are *indexed*: an insertion-ordered mapping for
O(1) membership plus a lazily cached neighbor tuple, so the walk's uniform
draw is O(1) and deterministic under a fixed seed without any sorting.
The ordering follows the interface's stable ``neighbor_seq`` (removal
filters preserve it; replacements append), which is itself deterministic
for deterministically built networks.

:func:`build_overlay_fixpoint` is the offline analogue used by the running
example (Fig. 1): apply Theorem 3 removals to a fully known graph until no
edge qualifies, optionally followed by Theorem 4 replacement passes —
producing the G* / G** whose conductances §II-D and §III report.
"""

from __future__ import annotations

import random
from typing import AbstractSet, Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.core.adjacency import CompactAdjacency
from repro.core.criteria import is_removable, replacement_allowed
from repro.errors import EdgeNotFoundError, SelfLoopError, WalkError
from repro.graph.adjacency import Graph
from repro.interface.api import BatchQueryResult, QueryResponse, RestrictedSocialAPI
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable
Edge = Tuple[Node, Node]


def shared_overlay_of(samplers) -> Optional["OverlayGraph"]:
    """The one overlay every sampler in a group shares, or ``None``.

    Parallel MTO chains may walk a common :class:`OverlayGraph` so any
    chain's rewiring benefits all of them (§VI); group drivers and
    :class:`~repro.interface.session.SamplingSession` need to know whether
    that is the case to snapshot the overlay exactly once.  Returns the
    shared instance when every sampler exposes the *same* overlay object,
    and ``None`` when no sampler has one or the overlays differ (per-chain
    private overlays cannot be captured by one group snapshot).

    Args:
        samplers: Any iterable of walk samplers (overlay-less ones count
            as "no overlay" and are compatible only with an all-``None``
            group).
    """
    overlays = [getattr(s, "overlay", None) for s in samplers]
    shared = next((o for o in overlays if o is not None), None)
    if shared is None:
        return None
    return shared if all(o is shared for o in overlays) else None


class OverlayGraph:
    """Sampler-side virtual topology over a restrictive interface.

    Args:
        api: The interface supplying original neighborhoods (each
            materialization costs one billed query unless cached).

    Notes:
        Only *materialized* nodes (those the walk has queried) have overlay
        neighborhoods; modifications touching un-materialized nodes are
        recorded and applied lazily when those nodes are first seen.
    """

    def __init__(self, api: RestrictedSocialAPI) -> None:
        self._api = api
        # node -> insertion-ordered neighbor index (dict keys as ordered set)
        self._known: Dict[Node, Dict[Node, None]] = {}
        # Int-interned arena mirror of _known, mutated in lockstep: serves
        # neighbor tuples, seeded draws, and the batched lanes (a row
        # exists exactly for materialized nodes).
        self._compact = CompactAdjacency()
        self._removed: Dict[Node, Set[Node]] = {}
        # insertion-ordered so lazy application preserves determinism
        self._added: Dict[Node, Dict[Node, None]] = {}
        # original-graph degrees captured at materialization (free trace /
        # Theorem 5 knowledge without rebuilding cached responses)
        self._orig_degree: Dict[Node, int] = {}
        self._removal_count = 0
        self._replacement_count = 0

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _materialize(self, node: Node, resp: QueryResponse) -> None:
        removed = self._removed.get(node, ())
        nbrs = {v: None for v in resp.neighbor_seq if v != node and v not in removed}
        for v in self._added.get(node, ()):
            if v != node:
                nbrs[v] = None
        self._known[node] = nbrs
        self._compact.set_row(node, nbrs)
        self._orig_degree[node] = resp.degree

    def ensure_known(self, node: Node) -> None:
        """Materialize ``node``'s overlay neighborhood (queries if needed)."""
        if node in self._known:
            return
        self._materialize(node, self._api.query(node))

    def ensure_known_many(self, nodes: Iterable[Node]) -> BatchQueryResult:
        """Materialize several nodes through one batched interface call.

        Billing is identical to calling :meth:`ensure_known` per node, but
        the fetches share one rate-limiter pass and failures degrade
        gracefully: private or unknown members are reported in the result
        instead of raising, and budget exhaustion materializes the prefix
        that was still affordable.

        Args:
            nodes: Node ids to materialize; already-known ids are skipped.

        Returns:
            The underlying :class:`~repro.interface.api.BatchQueryResult`,
            so callers can see which members failed.
        """
        order = list(dict.fromkeys(nodes))
        if order:
            # One batched membership read instead of per-id dict probes.
            mask = self._compact.row_mask(order)
            missing = [n for n, known in zip(order, mask) if not known]
        else:
            missing = []
        result = self._api.query_many(missing)
        for node, resp in result.responses.items():
            if node not in self._known:
                self._materialize(node, resp)
        return result

    def is_known(self, node: Node) -> bool:
        """Whether ``node`` has been materialized."""
        return node in self._known

    def known_nodes(self) -> Iterator[Node]:
        """Iterate over materialized nodes."""
        return iter(self._known)

    # ------------------------------------------------------------------
    # overlay queries (require materialization)
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """Overlay neighborhood of a materialized node (an immutable copy).

        Raises:
            WalkError: If the node has not been materialized.
        """
        try:
            return frozenset(self._known[node])
        except KeyError:
            raise WalkError(f"node {node!r} not materialized in overlay") from None

    def neighbors_view(self, node: Node) -> AbstractSet[Node]:
        """Set-like view of a materialized neighborhood — no copy.

        For hot loops (the removal criterion's intersections).  Callers
        must not mutate the overlay while holding the view.

        Raises:
            WalkError: If the node has not been materialized.
        """
        try:
            return self._known[node].keys()
        except KeyError:
            raise WalkError(f"node {node!r} not materialized in overlay") from None

    def neighbors_seq(self, node: Node) -> Tuple[Node, ...]:
        """Stable neighbor tuple of a materialized node (cached, O(1)).

        Raises:
            WalkError: If the node has not been materialized.
        """
        try:
            return self._compact.seq(node)
        except KeyError:
            raise WalkError(f"node {node!r} not materialized in overlay") from None

    def random_neighbor(self, node: Node, rng: random.Random) -> Optional[Node]:
        """Uniform O(1) draw from a materialized neighborhood.

        Returns ``None`` when the overlay leaves ``node`` isolated.

        Raises:
            WalkError: If the node has not been materialized.
        """
        try:
            return self._compact.draw(node, rng)
        except KeyError:
            raise WalkError(f"node {node!r} not materialized in overlay") from None

    def draw_many(
        self, nodes, rngs
    ) -> "list[Optional[Node]]":
        """One uniform draw per ``(node, rng)`` pair — see
        :meth:`repro.core.adjacency.CompactAdjacency.draw_many`.

        Raises:
            WalkError: If any node has not been materialized.
        """
        try:
            return self._compact.draw_many(nodes, rngs)
        except KeyError as exc:
            raise WalkError(
                f"node {exc.args[0]!r} not materialized in overlay"
            ) from None

    def known_mask(self, nodes):
        """Boolean is-materialized for a batch of ids, one call."""
        return self._compact.row_mask(nodes)

    def known_degrees_many(self, nodes):
        """Overlay degrees for a batch; ``-1`` marks unmaterialized ids."""
        return self._compact.degrees_many(nodes)

    def degree(self, node: Node) -> int:
        """Overlay degree ``k*_node`` of a materialized node.

        Raises:
            WalkError: If the node has not been materialized.
        """
        try:
            return len(self._known[node])
        except KeyError:
            raise WalkError(f"node {node!r} not materialized in overlay") from None

    def known_degree(self, node: Node) -> Optional[int]:
        """Overlay degree if materialized, else ``None`` (never queries)."""
        nbrs = self._known.get(node)
        return len(nbrs) if nbrs is not None else None

    def original_degree(self, node: Node) -> Optional[int]:
        """Original-graph degree captured at materialization, else ``None``.

        This is knowledge the walk already paid for with the ``q(node)``
        query; serving it from overlay bookkeeping keeps the hot path off
        the response cache entirely.
        """
        return self._orig_degree.get(node)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Edge test from ``u``'s side (``u`` must be materialized).

        Raises:
            WalkError: If ``u`` has not been materialized.
        """
        if u not in self._known:
            raise WalkError(f"node {u!r} not materialized in overlay")
        return v in self._known[u]

    # ------------------------------------------------------------------
    # modifications
    # ------------------------------------------------------------------
    def _note_removed(self, u: Node, v: Node) -> None:
        self._removed.setdefault(u, set()).add(v)
        self._removed.setdefault(v, set()).add(u)
        self._added.get(u, {}).pop(v, None)
        self._added.get(v, {}).pop(u, None)

    def _note_added(self, u: Node, v: Node) -> None:
        self._added.setdefault(u, {})[v] = None
        self._added.setdefault(v, {})[u] = None
        self._removed.get(u, set()).discard(v)
        self._removed.get(v, set()).discard(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove overlay edge ``(u, v)`` (both endpoints materialized or not).

        Raises:
            EdgeNotFoundError: If a materialized endpoint does not carry
                the edge.
        """
        for a, b in ((u, v), (v, u)):
            if a in self._known:
                if b not in self._known[a]:
                    raise EdgeNotFoundError(u, v)
        self._note_removed(u, v)
        for a, b in ((u, v), (v, u)):
            if a in self._known:
                self._known[a].pop(b, None)
                self._compact.remove(a, b)
        self._removal_count += 1

    def add_edge(self, u: Node, v: Node) -> None:
        """Insert overlay edge ``(u, v)``.

        Raises:
            SelfLoopError: If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self._note_added(u, v)
        for a, b in ((u, v), (v, u)):
            if a in self._known:
                if b not in self._known[a]:
                    self._compact.append(a, b)
                self._known[a][b] = None

    def replace_edge(self, u: Node, v: Node, w: Node) -> None:
        """Theorem 4's operation: replace ``e_uv`` by ``e_uw``.

        Args:
            u: The pivot endpoint that keeps its edge.
            v: The degree-3 node losing the edge.
            w: The new far endpoint (must differ from ``u``).

        Raises:
            SelfLoopError: If ``w == u``.
            EdgeNotFoundError: If ``(u, v)`` is absent.
        """
        if w == u:
            raise SelfLoopError(u)
        self.remove_edge(u, v)
        self._removal_count -= 1  # counted as a replacement, not a removal
        self.add_edge(u, w)
        self._replacement_count += 1

    # ------------------------------------------------------------------
    # accounting / export
    # ------------------------------------------------------------------
    @property
    def removal_count(self) -> int:
        """Number of pure removals performed."""
        return self._removal_count

    @property
    def replacement_count(self) -> int:
        """Number of replacements performed."""
        return self._replacement_count

    def state_dict(self) -> dict:
        """Serializable overlay state: G* minus anything re-derivable.

        Captures the insertion-ordered materialized neighborhoods (the
        ordering *is* the draw determinism — ``neighbors_seq`` and every
        seeded ``random_neighbor`` stream depend on it), the lazy
        removal/addition deltas for not-yet-materialized nodes, the
        original-graph degrees already paid for (§II-B: knowledge from
        billed queries that must never be re-billed), and the
        removal/replacement counters.  The ``neighbors_seq`` tuple cache
        is derived state and deliberately excluded.
        """
        return {
            "known": {node: list(nbrs) for node, nbrs in self._known.items()},
            "removed": {node: set(peers) for node, peers in self._removed.items() if peers},
            "added": {node: list(peers) for node, peers in self._added.items() if peers},
            "orig_degree": dict(self._orig_degree),
            "removal_count": self._removal_count,
            "replacement_count": self._replacement_count,
        }

    def load_state(self, state: dict) -> None:
        """Replace this overlay's bookkeeping with a captured state.

        The interface binding is untouched — restore into an overlay
        wrapping a fresh :class:`RestrictedSocialAPI` over the same
        network and the walk continues without re-querying any
        materialized node.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._known = {node: dict.fromkeys(nbrs) for node, nbrs in state["known"].items()}
        self._removed = {node: set(peers) for node, peers in state["removed"].items()}
        self._added = {node: dict.fromkeys(peers) for node, peers in state["added"].items()}
        self._orig_degree = dict(state["orig_degree"])
        self._removal_count = int(state["removal_count"])
        self._replacement_count = int(state["replacement_count"])
        self._compact = CompactAdjacency()
        for node, nbrs in self._known.items():
            self._compact.set_row(node, nbrs)

    def known_subgraph(self) -> Graph:
        """The overlay restricted to materialized nodes, as a plain graph.

        Used by experiments that measure the overlay's conductance/SLEM
        after the walk visited everything (§V-A.3's theoretical measure).
        """
        g = Graph()
        for node in self._known:
            g.add_node(node)
        for u, nbrs in self._known.items():
            for v in nbrs:
                if v in self._known:
                    g.add_edge(u, v)
        return g


def build_overlay_fixpoint(
    graph: Graph,
    use_replacement: bool = False,
    seed: RngLike = 0,
    max_passes: int = 100,
) -> Graph:
    """Offline overlay construction: apply Theorem 3 (and optionally
    Theorem 4) to a fully known graph until fixpoint.

    The criterion is evaluated against the *current* overlay state — the
    progressive semantics Algorithm 1 has on-the-fly (see DESIGN.md §3.1;
    a single simultaneous pass would disconnect dense graphs).  Edges are
    visited in random order each pass (seeded shuffles over the graph's
    stable insertion order — no sorting); passes repeat until a pass makes
    no change.

    Args:
        graph: Original topology (not modified).
        use_replacement: After removals reach fixpoint, run one Theorem 4
            replacement pass (each degree-3 node ``v`` donates one edge
            ``e_uv → e_uw``), then re-run removal passes — producing G**.
        seed: Randomness for edge visit order and replacement choices.
        max_passes: Safety bound on total passes.

    Returns:
        The overlay graph (a new :class:`Graph`).

    Raises:
        WalkError: If ``max_passes`` is exhausted (should not happen:
            removals strictly decrease the edge count).
    """
    rng = ensure_rng(seed)
    overlay = graph.copy()

    def removal_pass() -> bool:
        changed = False
        edges = list(overlay.edges())
        rng.shuffle(edges)
        for u, v in edges:
            if not overlay.has_edge(u, v):
                continue
            if overlay.degree(u) <= 1 or overlay.degree(v) <= 1:
                continue  # never disconnect a pendant node
            if is_removable(overlay, u, v):
                overlay.remove_edge(u, v)
                changed = True
        return changed

    passes = 0
    while removal_pass():
        passes += 1
        if passes > max_passes:
            raise WalkError("removal fixpoint did not converge")

    if use_replacement:
        nodes = list(overlay.nodes())
        rng.shuffle(nodes)
        for v in nodes:
            if overlay.degree(v) < 1 or not replacement_allowed(overlay.degree(v)):
                continue
            nbrs = overlay.neighbors_seq(v)
            u = nbrs[rng.randrange(len(nbrs))]
            others = [w for w in nbrs if w != u and not overlay.has_edge(u, w)]
            if not others:
                continue
            w = others[rng.randrange(len(others))]
            overlay.remove_edge(u, v)
            overlay.add_edge(u, w)
        while removal_pass():
            passes += 1
            if passes > max_passes:
                raise WalkError("post-replacement fixpoint did not converge")

    return overlay
