"""MTO-Sampler: the paper's Algorithm 1.

A simple random walk that, at every step, uses the local neighborhood
knowledge it has already paid for to *rewire its own view* of the network:

1. **Removal** — when the freshly drawn neighbor ``v`` forms an edge with
   the current node ``u`` that Theorem 3 (or Theorem 5, using degrees
   cached from earlier steps) certifies as non-cross-cutting, the edge is
   deleted from the overlay and the draw repeats.
2. **Replacement** — when ``v``'s overlay degree is exactly 3 (the one
   degree Theorem 4 proves safe), the walk may replace ``e_uv`` by
   ``e_uw`` for another neighbor ``w`` of ``v``, steering probability mass
   toward likely cross-cutting edges.
3. **Lazy transition** — the walk finally moves to the surviving candidate
   with probability 1/2, else redraws (Algorithm 1's ``rand(0,1) < 1/2``
   branch), guaranteeing aperiodicity.

The walk is exactly a (lazy) simple random walk on the final overlay G*,
whose stationary distribution is ``τ*(u) = k*_u / 2|E*|`` (eq. 10), so
uniform-target importance weights are ``1 / k*_u`` with the overlay degree
read from the sampler's own bookkeeping — no extra queries.

The hot path is draw-dominated, so every step works on the overlay's
indexed neighborhoods: a uniform draw is one O(1) tuple index (no sorting,
no neighborhood copies), and the removal criterion intersects copy-free
set views.  Determinism under a fixed seed comes from the overlay's stable
insertion ordering, not from re-sorting per step.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.criteria import extension_criterion, removal_criterion, replacement_allowed
from repro.core.overlay import OverlayGraph
from repro.errors import DeadEndError, PrivateUserError, WalkError
from repro.interface.api import RestrictedSocialAPI
from repro.utils.rng import RngLike
from repro.walks.base import RandomWalkSampler

Node = Hashable


class MTOSampler(RandomWalkSampler):
    """Modified-TOpology sampler (Algorithm 1).

    Args:
        api: Restrictive interface.
        start: Start node.
        seed: Randomness.
        enable_removal: Apply the Theorem 3/5 removal rule (``MTO_RM`` and
            ``MTO_Both`` in Figure 10).
        enable_replacement: Apply the Theorem 4 replacement rule
            (``MTO_RP`` and ``MTO_Both``).
        use_degree_cache: Use Theorem 5 with degrees cached from earlier
            queries instead of plain Theorem 3 (§III-D extension).
        replacement_probability: Chance of performing an eligible
            replacement (Algorithm 1 leaves the choice free; 0.5 mirrors
            its coin-flip structure).
        lazy: Algorithm 1's 1/2-probability redraw coin.  Off by default:
            each redraw queries a freshly drawn neighbor, which under the
            unique-query cost model doubles the cost per committed move
            without changing the stationary distribution — the paper's
            reported savings are only attainable without it (DESIGN.md
            §3.3 discusses the deviation).
        max_redraws: Bound on removal/lazy redraws within one step — a
            pathological overlay cannot stall the walk silently.
        overlay: Existing overlay to share (parallel walks, §VI: rewirings
            discovered by one chain benefit every chain).  Must wrap the
            same ``api``; a private overlay is created when omitted.
        prefetch_replacement: Materialize *all* replacement candidates of
            an eligible degree-3 node through one batched interface call
            (``ensure_known_many``) before choosing, instead of querying
            the single chosen candidate.  A private candidate then no
            longer cancels the replacement (the choice falls on the
            accessible ones), and budget exhaustion degrades to skipping
            the replacement — but the walk may bill a candidate it does
            not pick, so query accounting differs from the paper's
            single-fetch semantics.  Off by default to keep
            cost-per-sample identical for identical seeds.

    Example:
        >>> from repro.generators import paper_barbell
        >>> from repro.interface import RestrictedSocialAPI
        >>> api = RestrictedSocialAPI(paper_barbell())
        >>> mto = MTOSampler(api, start=0, seed=7)
        >>> run = mto.run(num_samples=50)
        >>> mto.overlay.removal_count > 0
        True
    """

    def __init__(
        self,
        api: RestrictedSocialAPI,
        start: Node,
        seed: RngLike = None,
        enable_removal: bool = True,
        enable_replacement: bool = True,
        use_degree_cache: bool = True,
        replacement_probability: float = 0.5,
        lazy: bool = False,
        max_redraws: int = 10_000,
        overlay: OverlayGraph | None = None,
        prefetch_replacement: bool = False,
    ) -> None:
        if not 0 <= replacement_probability <= 1:
            raise ValueError("replacement_probability must be in [0, 1]")
        if max_redraws < 1:
            raise ValueError("max_redraws must be positive")
        super().__init__(api, start, seed=seed)
        self._overlay = overlay if overlay is not None else OverlayGraph(api)
        self._overlay.ensure_known(start)
        self._enable_removal = enable_removal
        self._enable_replacement = enable_replacement
        self._use_degree_cache = use_degree_cache
        self._replacement_probability = replacement_probability
        self._lazy = lazy
        self._max_redraws = max_redraws
        self._prefetch_replacement = prefetch_replacement

    @property
    def overlay(self) -> OverlayGraph:
        """The virtual topology built so far."""
        return self._overlay

    # ------------------------------------------------------------------
    def _cached_degrees_for(self, common) -> Dict[Node, int]:
        """Overlay degrees of common neighbors already materialized.

        This is the Theorem 5 side channel: "when the random walk reaches
        the nodes we have accessed before, we can use their degree
        information without issuing extra web requests" (§III-D).
        """
        out: Dict[Node, int] = {}
        known_degree = self._overlay.known_degree
        for w in common:
            k = known_degree(w)
            if k is not None:
                out[w] = k
        return out

    def _removable(self, u: Node, v: Node) -> bool:
        # Copy-free intersection of the already-materialized endpoint
        # neighborhoods; the edge (u, v) exists by construction here, so
        # the criteria are applied directly.
        nu = self._overlay.neighbors_view(u)
        nv = self._overlay.neighbors_view(v)
        common = nu & nv
        ku = len(nu)
        kv = len(nv)
        if self._use_degree_cache:
            cached = self._cached_degrees_for(common)
            if cached:
                return extension_criterion(len(common), ku, kv, cached)
        return removal_criterion(len(common), ku, kv)

    def _choose_replacement(self, u: Node, v: Node) -> Node | None:
        """Pick and materialize a Theorem 4 target ``w``, or ``None``."""
        overlay = self._overlay
        others = [w for w in overlay.neighbors_seq(v) if w != u and not overlay.has_edge(u, w)]
        if not others:
            return None
        if self._prefetch_replacement:
            # One batched fetch for every candidate; private/unaffordable
            # members drop out instead of cancelling the replacement.
            overlay.ensure_known_many(others)
            others = [w for w in others if overlay.is_known(w)]
            if not others:
                return None
            return others[self._rng.randrange(len(others))]
        w = others[self._rng.randrange(len(others))]
        try:
            self._overlay.ensure_known(w)
        except PrivateUserError:
            return None
        return w

    def step(self) -> Node:
        """One Algorithm 1 step: draw, maybe remove/replace, maybe move.

        Raises:
            DeadEndError: If the overlay leaves the current node with no
                neighbors.
            WalkError: If ``max_redraws`` is exhausted (degenerate
                overlay).
        """
        u = self.current
        overlay = self._overlay
        rng = self._rng
        overlay.ensure_known(u)
        for _ in range(self._max_redraws):
            v = overlay.random_neighbor(u, rng)
            if v is None:
                raise DeadEndError(u)
            try:
                overlay.ensure_known(v)  # the step's (potential) query
            except PrivateUserError:
                # Private neighbor: never traversable, so drop the overlay
                # edge (the walk lives on the accessible subgraph) and
                # redraw.  One billed refusal, cached afterwards.
                if overlay.degree(u) > 1:
                    overlay.remove_edge(u, v)
                    continue
                self._stay()
                return self.current

            # --- removal branch (Theorem 3 / Theorem 5) ---------------
            if (
                self._enable_removal
                and overlay.degree(u) > 1
                and overlay.degree(v) > 1
                and self._removable(u, v)
            ):
                overlay.remove_edge(u, v)
                continue  # redraw from the shrunken neighborhood

            # --- replacement branch (Theorem 4) -----------------------
            if (
                self._enable_replacement
                and replacement_allowed(overlay.degree(v))
                and rng.random() < self._replacement_probability
            ):
                w = self._choose_replacement(u, v)
                if w is not None:
                    overlay.replace_edge(u, v, w)
                    v = w  # the walk's candidate follows the moved edge

            # --- lazy transition ---------------------------------------
            if not self._lazy or rng.random() < 0.5:
                if self._uses_default_trace:
                    # v was just materialized: its original degree is free
                    # overlay knowledge, no response rebuild needed.
                    self._advance_fast(v, overlay.original_degree(v))
                else:
                    self._advance(v, self._api.query(v))  # cached — free
                return v
            # lazy hold: redraw a neighbor without committing a move
        raise WalkError(f"step at {u!r} exceeded {self._max_redraws} redraws")

    def predict_next_fetch(self, max_steps: int = 64) -> Node | None:
        """Replay the overlay draw / rewiring branches to the next fetch.

        Algorithm 1's (potential) query is ``ensure_known`` on the drawn
        candidate — or on the Theorem-4 replacement target — so the
        replay draws from the *live* overlay rows with a cloned RNG and
        returns the first candidate G* has not materialized.  Branches
        that would **mutate** the overlay before the fetch resolves
        (a certified removal, a replacement whose target is already
        materialized) end the replay with ``None``: simulating them
        would require mutating shared state the prediction must not
        touch.  Lazy holds and committed moves through materialized
        territory replay exactly (the overlay is unchanged by them), so
        the horizon can span several steps.

        The replay reads the overlay as it stands *now*; drivers that
        interleave other chains writing the same shared G* between
        prediction and step must only predict for chains no earlier
        writer can invalidate (see ``ParallelWalkers``).

        Returns ``None`` on networks with private users, in
        ``prefetch_replacement`` mode once the replacement branch fires
        (its batched fetch has no single-node prediction), at dead ends,
        and when the horizon resolves entirely inside G*.
        """
        if self._api.may_have_private:
            return None
        overlay = self._overlay
        if not overlay.is_known(self._current):
            return None
        rng = self._replay_rng_clone()
        u = self._current
        for _ in range(max_steps):
            committed = None
            for _ in range(self._max_redraws):
                v = overlay.random_neighbor(u, rng)
                if v is None:
                    return None  # live step dead-ends
                if not overlay.is_known(v):
                    return v  # ensure_known(v) is the step's query
                if (
                    self._enable_removal
                    and overlay.degree(u) > 1
                    and overlay.degree(v) > 1
                    and self._removable(u, v)
                ):
                    return None  # removal mutates G*, then redraws
                if (
                    self._enable_replacement
                    and replacement_allowed(overlay.degree(v))
                    and rng.random() < self._replacement_probability
                ):
                    if self._prefetch_replacement:
                        return None  # batched candidate materialization
                    others = [
                        w
                        for w in overlay.neighbors_seq(v)
                        if w != u and not overlay.has_edge(u, w)
                    ]
                    if others:
                        w = others[rng.randrange(len(others))]
                        if not overlay.is_known(w):
                            return w  # _choose_replacement's query
                        return None  # replace_edge mutates G*
                    # no candidates: no RNG spent, replacement skipped
                if not self._lazy or rng.random() < 0.5:
                    committed = v
                    break
                # lazy hold: redraw without committing
            if committed is None:
                return None  # max_redraws exhausted — live step raises
            u = committed
        return None

    def weight(self, node: Node) -> float:
        """``1 / k*_node`` — corrects the overlay-degree stationary (eq. 10).

        The overlay degree comes from the sampler's own bookkeeping; for a
        just-visited node it is always materialized.
        """
        k_star = self._overlay.known_degree(node)
        if k_star is None or k_star == 0:
            raise WalkError(f"overlay degree unknown for {node!r}")
        return 1.0 / k_star
