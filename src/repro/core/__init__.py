"""The paper's contribution: MTO-Sampler and its supporting theory.

* :mod:`repro.core.adjacency` — the numpy-backed compact adjacency store
  (id interning, arena rows, batched draws) mirrored by the graph and
  overlay substrates;
* :mod:`repro.core.criteria` — the edge-manipulation theorems: the
  deterministic non-cross-cutting removal criterion (Theorem 3), its
  cached-degree extension (Theorem 5), and the degree-3 replacement rule
  (Theorem 4);
* :mod:`repro.core.overlay` — the virtual overlay topology the walk
  follows, plus the offline fixpoint construction of G*/G** used by the
  running example;
* :mod:`repro.core.mto` — Algorithm 1, the MTO-Sampler random walk;
* :mod:`repro.core.estimators` — importance-sampling aggregate estimation
  (§IV-A) shared by all samplers.

Re-exports resolve lazily (PEP 562): :mod:`repro.core.adjacency` is a
leaf module that :mod:`repro.graph.adjacency` imports at class-definition
time, so importing this package must not eagerly pull in
:mod:`repro.core.overlay` (which imports the graph substrate right back).
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "extension_criterion": "repro.core.criteria",
    "is_removable": "repro.core.criteria",
    "removal_criterion": "repro.core.criteria",
    "replacement_allowed": "repro.core.criteria",
    "EstimationResult": "repro.core.estimators",
    "Estimator": "repro.core.estimators",
    "estimate": "repro.core.estimators",
    "MTOSampler": "repro.core.mto",
    "OverlayGraph": "repro.core.overlay",
    "build_overlay_fixpoint": "repro.core.overlay",
    "CompactAdjacency": "repro.core.adjacency",
    "NodeInterner": "repro.core.adjacency",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is not None:
        return getattr(import_module(module), name)
    try:
        return import_module(f"repro.core.{name}")
    except ModuleNotFoundError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
