"""The paper's contribution: MTO-Sampler and its supporting theory.

* :mod:`repro.core.criteria` — the edge-manipulation theorems: the
  deterministic non-cross-cutting removal criterion (Theorem 3), its
  cached-degree extension (Theorem 5), and the degree-3 replacement rule
  (Theorem 4);
* :mod:`repro.core.overlay` — the virtual overlay topology the walk
  follows, plus the offline fixpoint construction of G*/G** used by the
  running example;
* :mod:`repro.core.mto` — Algorithm 1, the MTO-Sampler random walk;
* :mod:`repro.core.estimators` — importance-sampling aggregate estimation
  (§IV-A) shared by all samplers.
"""

from repro.core.criteria import (
    extension_criterion,
    is_removable,
    removal_criterion,
    replacement_allowed,
)
from repro.core.estimators import EstimationResult, Estimator, estimate
from repro.core.mto import MTOSampler
from repro.core.overlay import OverlayGraph, build_overlay_fixpoint

__all__ = [
    "extension_criterion",
    "is_removable",
    "removal_criterion",
    "replacement_allowed",
    "EstimationResult",
    "Estimator",
    "estimate",
    "MTOSampler",
    "OverlayGraph",
    "build_overlay_fixpoint",
]
