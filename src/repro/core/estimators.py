"""Importance-sampling aggregate estimation (§IV-A).

All walkers produce samples from *some* stationary distribution τ (degree-
proportional for SRW, overlay-degree-proportional for MTO, uniform for
MHRW/RJ).  To answer aggregates over all users the samples are re-weighted
to the uniform target with ``w(x) ∝ π(x)/τ(x)`` and combined with the
self-normalizing ratio estimator the paper states::

    A(f) = ( Σ f(x_i) w(x_i) ) / ( Σ w(x_i) )

AVG aggregates need nothing else; COUNT and SUM additionally use the
provider-published total user count (footnote 4).
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Optional, Sequence

from repro.aggregates.queries import AggregateQuery
from repro.errors import EstimationError
from repro.interface.api import QueryResponse, RestrictedSocialAPI
from repro.walks.base import WalkSample

Node = Hashable


@dataclasses.dataclass(frozen=True)
class EstimationResult:
    """An aggregate estimate with its provenance.

    Attributes:
        query: The aggregate that was estimated.
        estimate: The estimate.
        num_samples: Samples used.
        query_cost: Billed interface queries spent producing them.
        effective_sample_size: Kish ESS ``(Σw)² / Σw²`` — how many unit-
            weight samples the weighted set is worth.
    """

    query: AggregateQuery
    estimate: float
    num_samples: int
    query_cost: int
    effective_sample_size: float


class Estimator:
    """Incremental self-normalizing importance-sampling estimator.

    Feed ``(f_value, weight, predicate)`` triples (or whole samples via
    :meth:`add_sample`); read :attr:`estimate` at any time.  Experiments
    use the incremental form to draw estimate-vs-query-cost curves from a
    single run.

    Args:
        query: The aggregate to estimate.
        total_users: Provider-published user count; required for COUNT and
            SUM aggregates, ignored for AVG.
    """

    def __init__(self, query: AggregateQuery, total_users: Optional[int] = None) -> None:
        if query.kind in ("count", "sum") and total_users is None:
            raise EstimationError(f"{query.kind.upper()} estimation needs total_users")
        self._query = query
        self._total_users = total_users
        self._sum_w = 0.0
        self._sum_w_pred = 0.0
        self._sum_fw = 0.0
        self._n = 0

    def add(self, response: QueryResponse, weight: float) -> None:
        """Fold in one sampled user's query response with its weight.

        Raises:
            EstimationError: For non-positive weights.
        """
        if weight <= 0:
            raise EstimationError("weights must be positive")
        self._n += 1
        self._sum_w += weight
        if self._query.matches(response):
            self._sum_w_pred += weight
            if self._query.kind != "count":
                self._sum_fw += self._query.value(response) * weight

    @property
    def num_samples(self) -> int:
        """Samples folded so far."""
        return self._n

    @property
    def estimate(self) -> float:
        """Current estimate.

        Raises:
            EstimationError: With no (matching) samples yet.
        """
        if self._n == 0:
            raise EstimationError("no samples")
        kind = self._query.kind
        if kind == "avg":
            if self._sum_w_pred == 0:
                raise EstimationError("no samples matched the selection")
            return self._sum_fw / self._sum_w_pred
        if self._sum_w == 0:  # pragma: no cover - weights are positive
            raise EstimationError("zero total weight")
        fraction = (
            self._sum_w_pred / self._sum_w
            if kind == "count"
            else self._sum_fw / self._sum_w
        )
        assert self._total_users is not None
        return fraction * self._total_users


def estimate(
    query: AggregateQuery,
    samples: Sequence[WalkSample],
    api: RestrictedSocialAPI,
    total_users: Optional[int] = None,
) -> EstimationResult:
    """One-shot estimation from a finished sampling run.

    The sampled nodes' responses are re-read through the interface — they
    are cached, so this costs nothing.

    Args:
        query: Aggregate to estimate.
        samples: Output of :meth:`RandomWalkSampler.run`.
        api: The interface the samples came from (for cached responses).
        total_users: Provider-published count (COUNT/SUM only); defaults
            to ``api.published_user_count()`` when those kinds need it.

    Raises:
        EstimationError: If ``samples`` is empty.
    """
    if not samples:
        raise EstimationError("no samples")
    if total_users is None and query.kind in ("count", "sum"):
        total_users = api.published_user_count()
    est = Estimator(query, total_users=total_users)
    sum_w = 0.0
    sum_w2 = 0.0
    for sample in samples:
        resp = api.query(sample.node)  # cached, free
        est.add(resp, sample.weight)
        sum_w += sample.weight
        sum_w2 += sample.weight * sample.weight
    ess = (sum_w * sum_w / sum_w2) if sum_w2 > 0 else 0.0
    return EstimationResult(
        query=query,
        estimate=est.estimate,
        num_samples=len(samples),
        query_cost=api.query_cost,
        effective_sample_size=ess,
    )


def estimate_curve(
    query: AggregateQuery,
    samples: Sequence[WalkSample],
    api: RestrictedSocialAPI,
    total_users: Optional[int] = None,
) -> List[tuple]:
    """Estimate after each prefix of ``samples``: ``[(query_cost, estimate)]``.

    The raw material of the paper's Figures 7 and 11: how the estimate
    evolves as query budget is spent.  Prefixes whose estimate is undefined
    (no matching samples yet) are skipped.
    """
    if not samples:
        raise EstimationError("no samples")
    if total_users is None and query.kind in ("count", "sum"):
        total_users = api.published_user_count()
    est = Estimator(query, total_users=total_users)
    out: List[tuple] = []
    for sample in samples:
        est.add(api.query(sample.node), sample.weight)
        try:
            out.append((sample.query_cost, est.estimate))
        except EstimationError:
            continue
    return out
