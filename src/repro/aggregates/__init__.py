"""Aggregate query objects and ground-truth evaluation."""

from repro.aggregates.queries import AggregateQuery, ground_truth

__all__ = ["AggregateQuery", "ground_truth"]
