"""Aggregate queries over a social network (§I-A's analytics).

An :class:`AggregateQuery` bundles an aggregate kind (AVG / SUM / COUNT), a
per-user value function over the ``q(v)`` response, and an optional
selection predicate — covering the paper's examples: "the average age of
users", "the COUNT of user posts that contain a given word", the average
degree (Figures 7–11), and the average self-description length (Figure
11c).

:func:`ground_truth` evaluates the same query exactly against a fully known
network, which is how the experiments measure relative error on the local
datasets.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Optional

from repro.datastore.documents import DocumentStore
from repro.errors import EstimationError
from repro.graph.adjacency import Graph
from repro.interface.api import QueryResponse

Node = Hashable

_VALID_KINDS = ("avg", "sum", "count")


@dataclasses.dataclass(frozen=True)
class AggregateQuery:
    """A third-party aggregate over all users.

    Attributes:
        kind: ``"avg"``, ``"sum"``, or ``"count"``.
        name: Human-readable label used in experiment reports.
        value_fn: Maps a query response to the aggregated value (ignored
            for COUNT).
        predicate: Optional selection condition; ``None`` selects everyone.
    """

    kind: str
    name: str
    value_fn: Optional[Callable[[QueryResponse], float]] = None
    predicate: Optional[Callable[[QueryResponse], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"kind must be one of {_VALID_KINDS}, got {self.kind!r}")
        if self.kind != "count" and self.value_fn is None:
            raise ValueError(f"{self.kind.upper()} queries need a value_fn")

    def matches(self, response: QueryResponse) -> bool:
        """Whether the user satisfies the selection condition."""
        return self.predicate is None or bool(self.predicate(response))

    def value(self, response: QueryResponse) -> float:
        """The aggregated value for one user.

        Raises:
            EstimationError: For COUNT queries (which have no per-user
                value).
        """
        if self.value_fn is None:
            raise EstimationError("COUNT queries have no per-user value")
        return float(self.value_fn(response))

    # ------------------------------------------------------------------
    # the paper's queries
    # ------------------------------------------------------------------
    @staticmethod
    def average_degree() -> "AggregateQuery":
        """AVG of user degree — the paper's headline aggregate."""
        return AggregateQuery(
            kind="avg", name="average_degree", value_fn=lambda r: float(r.degree)
        )

    @staticmethod
    def average_attribute(field: str) -> "AggregateQuery":
        """AVG of a numeric profile attribute (e.g. ``"age"``).

        Users lacking the attribute are excluded via the predicate.
        """
        return AggregateQuery(
            kind="avg",
            name=f"average_{field}",
            value_fn=lambda r: float(r.attributes.get(field, 0.0)),
            predicate=lambda r: field in r.attributes,
        )

    @staticmethod
    def average_self_description_length() -> "AggregateQuery":
        """Figure 11(c)'s aggregate: mean characters of self-description."""
        return AggregateQuery(
            kind="avg",
            name="average_self_description_length",
            value_fn=lambda r: float(len(r.attributes.get("self_description", ""))),
            predicate=lambda r: "self_description" in r.attributes,
        )

    @staticmethod
    def count_where(name: str, predicate: Callable[[QueryResponse], bool]) -> "AggregateQuery":
        """COUNT of users matching ``predicate`` (needs the published total)."""
        return AggregateQuery(kind="count", name=name, predicate=predicate)

    @staticmethod
    def sum_attribute(field: str) -> "AggregateQuery":
        """SUM of a numeric profile attribute over all users."""
        return AggregateQuery(
            kind="sum",
            name=f"sum_{field}",
            value_fn=lambda r: float(r.attributes.get(field, 0.0)),
            predicate=lambda r: field in r.attributes,
        )


def ground_truth(
    query: AggregateQuery, graph: Graph, profiles: Optional[DocumentStore] = None
) -> float:
    """Exact aggregate value over a fully known network.

    Builds the same :class:`QueryResponse` objects the interface would
    serve, so value functions and predicates behave identically to the
    sampled path.

    Raises:
        EstimationError: If no user matches an AVG query's selection.
    """
    total = 0.0
    matched = 0
    for node in graph.nodes():
        attrs = {}
        if profiles is not None:
            doc = profiles.get_or_none(node)
            if doc is not None:
                attrs = doc
        resp = QueryResponse(
            user=node,
            neighbors=graph.neighbors(node),
            attributes=attrs,
            from_cache=True,
        )
        if not query.matches(resp):
            continue
        matched += 1
        if query.kind != "count":
            total += query.value(resp)
    if query.kind == "count":
        return float(matched)
    if query.kind == "sum":
        return total
    if matched == 0:
        raise EstimationError("no user matches the selection")
    return total / matched
