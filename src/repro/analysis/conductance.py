"""Conductance per the paper's Definition 3, and cross-cutting edges.

The paper defines the conductance of a cut ``(S, S̄)`` as::

    φ(S) = |cut(S, S̄)| / min(|edges incident to S|, |edges incident to S̄|)

Note the denominator counts *edges with at least one endpoint* in the side
(each internal edge once), not the degree-sum volume — the running example
pins this down: the barbell's Φ = 1/(C(11,2) + 1) = 1/56, i.e. 55 internal
edges + 1 bridge in the denominator.

A cross-cutting edge (Definition 4) is an edge crossing *some* cut that
attains the minimum conductance.  Finding the minimum is NP-hard in general
(Theorem 1), so:

* :func:`min_conductance_exact` enumerates all cuts with a Gray-code walk
  (O(2^n) cuts, O(deg) update per step) — practical to ~22 nodes, which
  covers the running example and the Figure 10 graphs' components;
* :func:`sweep_conductance` runs the standard Fiedler-vector sweep for an
  upper bound on larger graphs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import AbstractSet, FrozenSet, Hashable, List, Set, Tuple

import numpy as np

from repro.graph.adjacency import Graph, normalize_edge

Node = Hashable
Edge = Tuple[Node, Node]


@dataclasses.dataclass(frozen=True)
class CutResult:
    """A cut and its conductance.

    Attributes:
        conductance: φ(S) under the paper's definition.
        side: The smaller-incidence side ``S`` as a frozenset of nodes.
        cut_edges: The edges crossing the cut.
    """

    conductance: float
    side: FrozenSet[Node]
    cut_edges: FrozenSet[Edge]


def cut_conductance(graph: Graph, side: AbstractSet[Node]) -> float:
    """φ(S) for an explicit side ``S`` (Definition 3/4's ratio).

    Args:
        graph: Graph with at least one edge.
        side: Non-empty proper subset of the nodes.

    Raises:
        ValueError: If ``side`` is empty, covers all nodes, or contains
            unknown nodes.
    """
    s = set(side)
    if not s:
        raise ValueError("side must be non-empty")
    for node in s:
        if not graph.has_node(node):
            raise ValueError(f"node {node!r} not in graph")
    if len(s) >= graph.num_nodes:
        raise ValueError("side must be a proper subset of the nodes")
    cut = 0
    incident_s = 0
    for u, v in graph.edges():
        u_in = u in s
        v_in = v in s
        if u_in or v_in:
            incident_s += 1
        if u_in != v_in:
            cut += 1
    incident_sbar = graph.num_edges - incident_s + cut  # edges touching S̄
    denom = min(incident_s, incident_sbar)
    if denom == 0:
        return math.inf
    return cut / denom


def cut_conductance_volume(graph: Graph, side: AbstractSet[Node]) -> float:
    """Standard (degree-volume) conductance of a cut.

    ``|cut| / min(vol(S), vol(S̄))`` with ``vol(S) = Σ_{v∈S} k_v`` — the
    textbook definition the mixing-time inequality (eq. 3, Alon/Sinclair)
    is stated for.  The paper's Definition 3 counts *edges incident* to a
    side instead; the two differ by at most a factor 2 (internal edges
    count twice in the volume).

    Raises:
        ValueError: Same conditions as :func:`cut_conductance`.
    """
    s = set(side)
    if not s:
        raise ValueError("side must be non-empty")
    for node in s:
        if not graph.has_node(node):
            raise ValueError(f"node {node!r} not in graph")
    if len(s) >= graph.num_nodes:
        raise ValueError("side must be a proper subset of the nodes")
    cut = 0
    vol_s = sum(graph.degree(v) for v in s)
    for u, v in graph.edges():
        if (u in s) != (v in s):
            cut += 1
    vol_sbar = graph.total_degree() - vol_s
    denom = min(vol_s, vol_sbar)
    if denom == 0:
        return math.inf
    return cut / denom


def min_conductance_volume_exact(graph: Graph, max_nodes: int = 18) -> CutResult:
    """Minimum *volume* conductance by subset enumeration (small graphs).

    Used to validate the eq. (3) sandwich, which is stated for the
    textbook conductance.  Plain subset loop (not Gray-coded), so keep
    ``max_nodes`` modest.

    Raises:
        ValueError: If the graph is too large/small or edgeless.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    if n > max_nodes:
        raise ValueError(f"exact volume enumeration limited to {max_nodes} nodes")
    if graph.num_edges == 0:
        raise ValueError("conductance undefined without edges")
    nodes = list(graph.nodes())
    best = math.inf
    best_side: FrozenSet[Node] = frozenset()
    for mask in range(1, 1 << (n - 1)):
        side = {nodes[i + 1] for i in range(n - 1) if (mask >> i) & 1}
        if not side:
            continue
        phi = cut_conductance_volume(graph, side)
        if phi < best:
            best = phi
            best_side = frozenset(side)
    return CutResult(
        conductance=best, side=best_side, cut_edges=_cut_edges(graph, best_side)
    )


def _cut_edges(graph: Graph, side: AbstractSet[Node]) -> FrozenSet[Edge]:
    s = set(side)
    return frozenset(
        normalize_edge(u, v) for u, v in graph.edges() if (u in s) != (v in s)
    )


def min_conductance_exact(
    graph: Graph, max_nodes: int = 22
) -> CutResult:
    """Minimum-conductance cut by Gray-code enumeration of all 2^(n-1) cuts.

    Each Gray-code step flips one node between sides and updates the cut
    size and per-side edge-incidence counts in O(degree), so the total cost
    is O(2^n · avg_degree) — seconds at n = 22 (the running example), and
    instant below n = 16 where the tests live.

    Args:
        graph: Connected graph with 2..``max_nodes`` nodes and ≥ 1 edge.
        max_nodes: Safety bound; raise instead of looping for minutes.

    Returns:
        The minimizing cut (ties broken by the first Gray-code hit).

    Raises:
        ValueError: If the graph is too large, too small, or edgeless.
    """
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least two nodes")
    if n > max_nodes:
        raise ValueError(
            f"exact enumeration limited to {max_nodes} nodes (got {n}); "
            "use sweep_conductance for larger graphs"
        )
    if graph.num_edges == 0:
        raise ValueError("conductance undefined without edges")
    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    adj: List[List[int]] = [
        [index[w] for w in graph.neighbors_view(v)] for v in nodes
    ]
    m = graph.num_edges

    # Fix node 0 in S̄ (cuts are symmetric), enumerate memberships of the
    # remaining n-1 nodes by Gray code.
    in_s = [False] * n
    cut = 0            # edges between S and S̄
    edges_in_s = 0     # edges entirely inside S
    best_phi = math.inf
    best_mask = 0

    def phi_now() -> float:
        incident_s = edges_in_s + cut
        edges_in_sbar = m - edges_in_s - cut
        denom = min(incident_s, edges_in_sbar + cut)
        return cut / denom if denom > 0 else math.inf

    total = 1 << (n - 1)
    gray_prev = 0
    size_s = 0
    for code in range(1, total):
        gray = code ^ (code >> 1)
        flipped_bit = (gray ^ gray_prev).bit_length() - 1
        gray_prev = gray
        x = flipped_bit + 1  # node index (node 0 never flips)
        to_s = not in_s[x]
        nbrs_in_s = sum(1 for y in adj[x] if in_s[y])
        nbrs_in_sbar = len(adj[x]) - nbrs_in_s
        if to_s:
            # x joins S: its S-edges stop being cut, its S̄-edges become cut.
            cut += nbrs_in_sbar - nbrs_in_s
            edges_in_s += nbrs_in_s
            size_s += 1
        else:
            cut += nbrs_in_s - nbrs_in_sbar
            edges_in_s -= nbrs_in_s
            size_s -= 1
        in_s[x] = to_s
        if size_s == 0:
            continue
        phi = phi_now()
        if phi < best_phi:
            best_phi = phi
            best_mask = gray

    side = frozenset(nodes[i + 1] for i in range(n - 1) if (best_mask >> i) & 1)
    return CutResult(
        conductance=best_phi, side=side, cut_edges=_cut_edges(graph, side)
    )


def cross_cutting_edges(graph: Graph, max_nodes: int = 18, tol: float = 1e-12) -> FrozenSet[Edge]:
    """All cross-cutting edges per Definition 4 (exact, small graphs only).

    An edge is cross-cutting iff it crosses *some* cut attaining the
    minimum conductance, so all minimizing cuts are collected and their cut
    edges unioned.

    Args:
        graph: Connected graph with 2..``max_nodes`` nodes.
        max_nodes: Safety bound (the second enumeration pass stores cut
            sets, so the bound is tighter than for
            :func:`min_conductance_exact`).
        tol: Ties within ``tol`` of the minimum count as minimizing.

    Returns:
        The set of cross-cutting edges (canonical order).

    Raises:
        ValueError: If the graph is too large/small or edgeless.
    """
    best = min_conductance_exact(graph, max_nodes=max_nodes)
    n = graph.num_nodes
    nodes = list(graph.nodes())
    crossing: Set[Edge] = set()
    # Second pass: re-enumerate, collect every side attaining the minimum.
    # Simple subset loop is fine here given max_nodes <= 18.
    for mask in range(1, 1 << (n - 1)):
        side = {nodes[i + 1] for i in range(n - 1) if (mask >> i) & 1}
        if not side:
            continue
        if abs(cut_conductance(graph, side) - best.conductance) <= tol:
            crossing |= _cut_edges(graph, side)
    return frozenset(crossing)


def sweep_conductance(graph: Graph) -> CutResult:
    """Fiedler-vector sweep cut: an upper bound on the minimum conductance.

    Sorts nodes by the second eigenvector of the normalized Laplacian and
    evaluates every prefix cut, returning the best.  By Cheeger's
    inequality the result is within ``sqrt(2 Φ)`` of optimal — good enough
    to characterize the dataset stand-ins and large overlays.

    Args:
        graph: Connected graph with ≥ 3 nodes.

    Raises:
        ValueError: For graphs where the spectrum is undefined.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 3:
        raise ValueError("sweep needs at least 3 nodes")
    index = {v: i for i, v in enumerate(nodes)}
    degrees = np.array([graph.degree(v) for v in nodes], dtype=float)
    if np.any(degrees == 0):
        raise ValueError("graph has isolated nodes")
    inv_sqrt = 1.0 / np.sqrt(degrees)
    S = np.zeros((n, n))
    for i, u in enumerate(nodes):
        for v in graph.neighbors_view(u):
            S[i, index[v]] = inv_sqrt[i] * inv_sqrt[index[v]]
    eigvals, eigvecs = np.linalg.eigh(S)
    fiedler = eigvecs[:, -2] * inv_sqrt  # second-largest of S ↔ Fiedler of L
    order = np.argsort(fiedler)

    best_phi = math.inf
    best_k = 1
    side: Set[Node] = set()
    cut = 0
    edges_in_s = 0
    m = graph.num_edges
    for k in range(n - 1):
        x = nodes[order[k]]
        nbrs_in_s = sum(1 for y in graph.neighbors_view(x) if y in side)
        cut += graph.degree(x) - 2 * nbrs_in_s
        edges_in_s += nbrs_in_s
        side.add(x)
        incident_s = edges_in_s + cut
        edges_in_sbar = m - edges_in_s - cut
        denom = min(incident_s, edges_in_sbar + cut)
        if denom > 0:
            phi = cut / denom
            if phi < best_phi:
                best_phi = phi
                best_k = k + 1
    best_side = frozenset(nodes[order[i]] for i in range(best_k))
    return CutResult(
        conductance=best_phi,
        side=best_side,
        cut_edges=_cut_edges(graph, best_side),
    )


def cheeger_bounds(graph: Graph) -> Tuple[float, float]:
    """Spectral bounds ``(gap/2, sqrt(2·gap))`` sandwiching Φ(G).

    Uses the normalized-Laplacian gap ``1 − λ2``; by Cheeger's inequality
    ``gap/2 ≤ Φ ≤ sqrt(2·gap)`` (for the standard volume-based conductance;
    the paper's incidence-count variant is within a factor 2 of it, which
    these bounds absorb in practice and tests assert only directionally).

    Raises:
        ValueError: For graphs where the spectrum is undefined.
    """
    from repro.analysis.spectral import _symmetric_spectrum

    eigs = _symmetric_spectrum(graph)
    if len(eigs) < 2:
        raise ValueError("need at least two nodes")
    gap = 1.0 - float(eigs[1])
    return (gap / 2.0, math.sqrt(max(0.0, 2.0 * gap)))
