"""Analysis substrate: spectral mixing-time tools, conductance, distances.

Implements the quantitative machinery of the paper's Sections II and V:

* :mod:`repro.analysis.spectral` — transition matrices, the second-largest
  eigenvalue modulus (SLEM), the theoretical mixing time
  ``Θ(1 / log(1/µ))`` used in Figure 10, the relative point-wise distance
  Δ(t) of Definition 2, and the conductance→mixing-time bounds of
  equations (3)–(6);
* :mod:`repro.analysis.conductance` — the paper's conductance (Definition
  3, which counts edges *incident* to each side), exact minimum-conductance
  cuts by Gray-code enumeration, Fiedler sweep cuts for large graphs,
  cross-cutting edge identification (Definition 4), and Cheeger bounds;
* :mod:`repro.analysis.distances` — KL divergence (the paper's symmetric
  form), total variation, Kolmogorov–Smirnov, and sampling-bias measures.
"""

from repro.analysis.conductance import (
    CutResult,
    cheeger_bounds,
    cross_cutting_edges,
    cut_conductance,
    cut_conductance_volume,
    min_conductance_exact,
    min_conductance_volume_exact,
    sweep_conductance,
)
from repro.analysis.distances import (
    empirical_distribution,
    kl_divergence,
    ks_distance,
    sampling_bias_kl,
    symmetric_kl,
    total_variation,
)
from repro.analysis.walk_stats import (
    autocorrelation,
    effective_sample_size,
    integrated_autocorrelation_time,
)
from repro.analysis.spectral import (
    mixing_time_bound_paper,
    mixing_time_from_slem,
    mixing_time_exact,
    relative_pointwise_distance,
    slem,
    spectral_gap,
    srw_stationary,
    transition_matrix,
)

__all__ = [
    "autocorrelation",
    "effective_sample_size",
    "integrated_autocorrelation_time",
    "CutResult",
    "cheeger_bounds",
    "cross_cutting_edges",
    "cut_conductance",
    "cut_conductance_volume",
    "min_conductance_exact",
    "min_conductance_volume_exact",
    "sweep_conductance",
    "empirical_distribution",
    "kl_divergence",
    "ks_distance",
    "sampling_bias_kl",
    "symmetric_kl",
    "total_variation",
    "mixing_time_bound_paper",
    "mixing_time_from_slem",
    "mixing_time_exact",
    "relative_pointwise_distance",
    "slem",
    "spectral_gap",
    "srw_stationary",
    "transition_matrix",
]
