"""Spectral analysis of simple random walks.

The paper measures walk efficiency three ways; all are implemented here:

1. **SLEM mixing time** (footnote 12, Figure 10): the theoretical mixing
   time of a simple random walk is ``Θ(1 / log(1/µ))`` where ``µ`` is the
   second largest eigenvalue modulus of the transition matrix ``P``.
2. **Relative point-wise distance** Δ(t) (Definition 2):
   ``max_{u,v} |P^t_uv − π(v)| / π(v)``, the bias after ``t`` steps.
3. **Conductance bounds** (equations 3–6): ``(1 − 2Φ)^t ≤ Δ(t) ≤
   c (1 − Φ²/2)^t`` with ``c = 2|E| / min_v k_v``; solving the upper bound
   for ``t`` gives the paper's mixing-time expressions.  The paper's
   numeric constants (e.g. 14212.3·log(22.2/ε) for the barbell) arise from
   **base-10** logarithms; :func:`mixing_time_bound_paper` reproduces them.

All matrix work uses dense numpy (the graphs these quantities are computed
on — the running example, Figure 10's 50–100 node latent space graphs, the
overlay snapshots — are small; walk *simulation* on large graphs never
builds a matrix).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.graph.adjacency import Graph

Node = Hashable


def _node_order(graph: Graph) -> List[Node]:
    return list(graph.nodes())


def transition_matrix(
    graph: Graph, lazy: bool = False
) -> Tuple[np.ndarray, List[Node]]:
    """Simple-random-walk transition matrix ``P`` with its node ordering.

    ``P[i, j] = 1/k_i`` if ``j ∈ N(i)`` else 0 (Definition 1); the lazy
    variant returns ``(I + P) / 2``.

    Args:
        graph: Graph; every node must have degree ≥ 1 (a dead-end node has
            no outgoing distribution).
        lazy: Return the lazy walk's matrix instead.

    Returns:
        ``(P, order)`` where ``order[i]`` is the node of row/column ``i``.

    Raises:
        ValueError: If the graph is empty or has an isolated node.
    """
    order = _node_order(graph)
    n = len(order)
    if n == 0:
        raise ValueError("transition matrix of empty graph")
    index = {node: i for i, node in enumerate(order)}
    P = np.zeros((n, n))
    for i, u in enumerate(order):
        k = graph.degree(u)
        if k == 0:
            raise ValueError(f"node {u!r} is isolated; SRW undefined")
        w = 1.0 / k
        for v in graph.neighbors_view(u):
            P[i, index[v]] = w
    if lazy:
        P = 0.5 * (np.eye(n) + P)
    return P, order


def srw_stationary(graph: Graph) -> Dict[Node, float]:
    """The SRW stationary distribution ``π(v) = k_v / 2|E|``.

    Raises:
        ValueError: If the graph has no edges.
    """
    total = graph.total_degree()
    if total == 0:
        raise ValueError("stationary distribution undefined without edges")
    return {v: graph.degree(v) / total for v in graph.nodes()}


def _symmetric_spectrum(graph: Graph, lazy: bool = False) -> np.ndarray:
    """Eigenvalues of the degree-symmetrized SRW operator, descending.

    ``S = D^{-1/2} A D^{-1/2}`` is symmetric and similar to ``P``, so their
    spectra coincide; symmetric eigensolvers are faster and numerically
    stable.
    """
    order = _node_order(graph)
    n = len(order)
    index = {node: i for i, node in enumerate(order)}
    degrees = np.array([graph.degree(v) for v in order], dtype=float)
    if n == 0:
        raise ValueError("spectrum of empty graph")
    if np.any(degrees == 0):
        raise ValueError("graph has isolated nodes; SRW undefined")
    S = np.zeros((n, n))
    inv_sqrt = 1.0 / np.sqrt(degrees)
    for i, u in enumerate(order):
        for v in graph.neighbors_view(u):
            j = index[v]
            S[i, j] = inv_sqrt[i] * inv_sqrt[j]
    eigs = np.linalg.eigvalsh(S)
    if lazy:
        eigs = 0.5 * (1.0 + eigs)
    return eigs[::-1]


def slem(graph: Graph, lazy: bool = False) -> float:
    """Second largest eigenvalue modulus of the SRW transition matrix.

    Args:
        graph: Connected graph with ≥ 2 nodes.
        lazy: Use the lazy walk's matrix (shifts the spectrum to ≥ 0, so
            periodicity never inflates the SLEM).

    Returns:
        ``µ = max(|λ2|, |λn|)``.

    Raises:
        ValueError: For graphs where the walk/spectrum is undefined.
    """
    eigs = _symmetric_spectrum(graph, lazy=lazy)
    if len(eigs) < 2:
        raise ValueError("SLEM needs at least two nodes")
    return float(max(abs(eigs[1]), abs(eigs[-1])))


def spectral_gap(graph: Graph, lazy: bool = False) -> float:
    """``1 − µ`` — the quantity conductance squeezes via Cheeger."""
    return 1.0 - slem(graph, lazy=lazy)


def mixing_time_from_slem(graph: Graph, lazy: bool = True) -> float:
    """The paper's theoretical mixing time ``1 / log(1/µ)`` (footnote 12).

    Figure 10 plots exactly this quantity.  The lazy walk is used by
    default: on graphs with near-bipartite structure the non-lazy SLEM can
    reflect periodicity rather than bottlenecks.

    Returns:
        ``1 / ln(1/µ)``; ``math.inf`` when µ = 1 (disconnected graph),
        0.0 when µ = 0.

    Raises:
        ValueError: For graphs where the spectrum is undefined.
    """
    mu = slem(graph, lazy=lazy)
    if mu >= 1.0:
        return math.inf
    if mu <= 0.0:
        return 0.0
    return 1.0 / math.log(1.0 / mu)


def relative_pointwise_distance(
    graph: Graph,
    t: int,
    lazy: bool = False,
    neighbors_only: bool = False,
) -> float:
    """Δ(t) of Definition 2: ``max |P^t_uv − π(v)| / π(v)``.

    Args:
        graph: Connected graph.
        t: Number of walk steps (≥ 0).
        lazy: Use the lazy walk.
        neighbors_only: Restrict the max to pairs with ``v ∈ N(u)``, the
            literal reading of Definition 2; the default takes all pairs
            (the standard Sinclair definition, which upper-bounds the
            restricted one).

    Raises:
        ValueError: If ``t`` is negative or the walk is undefined.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    P, order = transition_matrix(graph, lazy=lazy)
    pi = srw_stationary(graph)
    pi_vec = np.array([pi[v] for v in order])
    Pt = np.linalg.matrix_power(P, t)
    ratio = np.abs(Pt - pi_vec[None, :]) / pi_vec[None, :]
    if neighbors_only:
        index = {node: i for i, node in enumerate(order)}
        best = 0.0
        for u in graph.nodes():
            i = index[u]
            for v in graph.neighbors_view(u):
                best = max(best, float(ratio[i, index[v]]))
        return best
    return float(ratio.max())


def mixing_time_exact(
    graph: Graph,
    epsilon: float = 0.25,
    lazy: bool = True,
    t_max: int = 100_000,
) -> int:
    """Smallest ``t`` with ``Δ(t) ≤ ε``, by doubling + bisection.

    Args:
        graph: Connected non-bipartite (or lazy) graph.
        epsilon: Bias threshold.
        lazy: Use the lazy walk (guarantees convergence).
        t_max: Give-up bound.

    Returns:
        The exact mixing time (in steps).

    Raises:
        ValueError: If ``ε`` is non-positive or convergence was not reached
            by ``t_max``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    P, order = transition_matrix(graph, lazy=lazy)
    pi = srw_stationary(graph)
    pi_vec = np.array([pi[v] for v in order])

    def delta_of(Pt: np.ndarray) -> float:
        return float((np.abs(Pt - pi_vec[None, :]) / pi_vec[None, :]).max())

    # Doubling phase.
    t = 1
    Pt = P.copy()
    while delta_of(Pt) > epsilon:
        t *= 2
        if t > t_max:
            raise ValueError(f"no convergence to {epsilon} within {t_max} steps")
        Pt = Pt @ Pt
    if t == 1:
        return 1
    # Bisection on [t/2, t].
    lo, hi = t // 2, t
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if delta_of(np.linalg.matrix_power(P, mid)) <= epsilon:
            hi = mid
        else:
            lo = mid
    return hi


def mixing_time_bound_paper(
    conductance: float,
    num_edges: int,
    min_degree: int,
    epsilon: float = 1.0,
    log_base: float = 10.0,
) -> float:
    """The paper's conductance upper bound on mixing time (eqs. 4–6).

    Solving ``c (1 − Φ²/2)^t ≤ ε`` with ``c = 2|E| / min_v k_v`` gives
    ``t ≥ log(c/ε) / (−log(1 − Φ²/2))``.  With base-10 logs this
    reproduces the paper's constants: the barbell's Φ = 0.018 yields the
    coefficient 14212.3, and Φ = 0.010 → 46050.5, Φ = 0.012 → 31979.1
    (§II-D).

    Args:
        conductance: Φ(G) in (0, 1].
        num_edges: ``|E|``.
        min_degree: ``min_v k_v`` (≥ 1).
        epsilon: Bias threshold; with ``ε = 1`` the returned value is the
            bare coefficient ``−log(c)/log(1 − Φ²/2)`` is *not* returned —
            instead use :func:`mixing_time_coefficient` for the coefficient
            alone.
        log_base: 10 to match the paper's numbers; use ``math.e`` for the
            natural-log variant.

    Returns:
        The upper bound on the mixing time (may be fractional).

    Raises:
        ValueError: On out-of-range parameters.
    """
    coeff = mixing_time_coefficient(conductance, log_base=log_base)
    c = 2.0 * num_edges / min_degree
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return coeff * (math.log(c / epsilon, log_base))


def mixing_time_coefficient(conductance: float, log_base: float = 10.0) -> float:
    """``−1 / log(1 − Φ²/2)`` — the paper's mixing-time coefficient.

    The paper reports mixing times in the form ``coefficient · log(c/ε)``;
    this returns the coefficient (base-10 by default, matching §II-D).

    Raises:
        ValueError: If Φ is not in (0, 1].
    """
    if not 0 < conductance <= 1:
        raise ValueError("conductance must be in (0, 1]")
    inner = 1.0 - conductance * conductance / 2.0
    return -1.0 / math.log(inner, log_base)


def mixing_lower_bound_factor(conductance: float) -> float:
    """``1 − 2Φ`` — the base of the paper's lower bound ``(1−2Φ)^t ≤ Δ(t)``.

    Raises:
        ValueError: If Φ is not in [0, 1].
    """
    if not 0 <= conductance <= 1:
        raise ValueError("conductance must be in [0, 1]")
    return 1.0 - 2.0 * conductance
