"""Distribution distances and sampling-bias measures.

The paper measures sampling bias with a *symmetric* KL divergence
(§V-A.3): ``D_KL(P‖P_sam) + D_KL(P_sam‖P)`` between the ideal stationary
distribution and the measured sampling distribution.  Total variation and
Kolmogorov–Smirnov distances are included because the related-work
comparisons (Gjoka et al., Mohaisen et al.) report them for degree
distributions.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Sequence

from repro.graph.adjacency import Graph
from repro.analysis.spectral import srw_stationary

Node = Hashable


def _validated(dist: Mapping, name: str) -> Dict:
    if not dist:
        raise ValueError(f"{name} must be non-empty")
    total = float(sum(dist.values()))
    if total <= 0:
        raise ValueError(f"{name} must have positive mass")
    if any(p < 0 for p in dist.values()):
        raise ValueError(f"{name} has negative probabilities")
    return {k: v / total for k, v in dist.items()}


def empirical_distribution(samples: Sequence[Node]) -> Dict[Node, float]:
    """Normalized frequency distribution of ``samples``.

    Raises:
        ValueError: If ``samples`` is empty.
    """
    if not samples:
        raise ValueError("no samples")
    counts = Counter(samples)
    n = len(samples)
    return {k: c / n for k, c in counts.items()}


def kl_divergence(
    p: Mapping[Node, float],
    q: Mapping[Node, float],
    smoothing: float = 1e-12,
) -> float:
    """``D_KL(p ‖ q) = Σ p(x) log(p(x)/q(x))`` in nats.

    Args:
        p: Reference distribution (normalized internally).
        q: Comparison distribution (normalized internally).
        smoothing: Floor applied to ``q`` where ``p`` has mass but ``q``
            does not — an empirical sampling distribution always misses
            some nodes, and the unsmoothed divergence would be infinite.

    Raises:
        ValueError: On empty/negative inputs or negative smoothing.
    """
    if smoothing < 0:
        raise ValueError("smoothing must be non-negative")
    pn = _validated(p, "p")
    qn = _validated(q, "q")
    out = 0.0
    for x, px in pn.items():
        if px == 0:
            continue
        qx = qn.get(x, 0.0)
        if qx <= 0:
            if smoothing == 0:
                return math.inf
            qx = smoothing
        out += px * math.log(px / qx)
    return max(0.0, out)


def symmetric_kl(
    p: Mapping[Node, float],
    q: Mapping[Node, float],
    smoothing: float = 1e-12,
) -> float:
    """The paper's bias measure: ``D_KL(p‖q) + D_KL(q‖p)`` (§V-A.3)."""
    return kl_divergence(p, q, smoothing) + kl_divergence(q, p, smoothing)


def total_variation(p: Mapping[Node, float], q: Mapping[Node, float]) -> float:
    """``TV(p, q) = ½ Σ |p(x) − q(x)|``, in [0, 1]."""
    pn = _validated(p, "p")
    qn = _validated(q, "q")
    keys = set(pn) | set(qn)
    return 0.5 * sum(abs(pn.get(k, 0.0) - qn.get(k, 0.0)) for k in keys)


def ks_distance(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic.

    Used for degree-distribution comparisons (a convergence measure the
    paper cites from the OSN-sampling literature).

    Raises:
        ValueError: If either sample is empty.
    """
    a = sorted(xs)
    b = sorted(ys)
    if not a or not b:
        raise ValueError("samples must be non-empty")
    i = j = 0
    d = 0.0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        # Advance past all ties at the current value before comparing the
        # empirical CDFs, otherwise identical samples register a gap.
        x = min(a[i], b[j])
        while i < na and a[i] == x:
            i += 1
        while j < nb and b[j] == x:
            j += 1
        d = max(d, abs(i / na - j / nb))
    return d


def sampling_bias_kl(samples: Sequence[Node], graph: Graph) -> float:
    """Bias of walk samples against the SRW stationary target (§V-A.3).

    Computes the symmetric KL divergence between the ideal distribution
    ``π(v) = k_v / 2|E|`` and the empirical distribution of ``samples``,
    exactly the Figure 8/9 measure.

    Args:
        samples: Node samples from a (converged) walk.
        graph: The sampled graph (ground-truth topology).

    Raises:
        ValueError: If ``samples`` is empty or the graph has no edges.
    """
    ideal = srw_stationary(graph)
    measured = empirical_distribution(samples)
    return symmetric_kl(ideal, measured)
