"""Empirical walk-trace statistics: autocorrelation, IAT, effective samples.

The spectral quantities in :mod:`repro.analysis.spectral` need the whole
topology; a third party only has its own trace.  These estimators extract
the same information — how slowly the walk mixes — from the trace alone:

* :func:`autocorrelation` — normalized autocovariance at a lag;
* :func:`integrated_autocorrelation_time` — the IAT ``τ = 1 + 2 Σ ρ(k)``
  with Geyer's initial-positive-sequence truncation; effective sample
  size is ``n / τ``;
* :func:`effective_sample_size` — the walk-side analogue of the Kish ESS
  the estimator reports for weights.

An MTO walk on a rewired overlay shows a smaller IAT than an SRW on the
original graph — the trace-level signature of the conductance gain, used
by the ablation benchmark.
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.stats import OnlineMeanVar


def autocorrelation(trace: Sequence[float], lag: int) -> float:
    """Normalized autocorrelation ``ρ(lag)`` of the trace.

    Args:
        trace: At least ``lag + 2`` values.
        lag: Non-negative lag; 0 returns 1.0.

    Raises:
        ValueError: On bad lag or insufficient/degenerate data.
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    n = len(trace)
    if n < lag + 2:
        raise ValueError(f"trace of length {n} too short for lag {lag}")
    acc = OnlineMeanVar()
    acc.extend(trace)
    var = acc.variance
    if var == 0:
        raise ValueError("constant trace has undefined autocorrelation")
    if lag == 0:
        return 1.0
    mean = acc.mean
    cov = sum(
        (trace[i] - mean) * (trace[i + lag] - mean) for i in range(n - lag)
    ) / (n - lag)
    return cov / var


def integrated_autocorrelation_time(
    trace: Sequence[float], max_lag: int | None = None
) -> float:
    """IAT with Geyer's initial-positive-sequence truncation.

    Sums paired autocorrelations ``ρ(2k−1) + ρ(2k)`` while the pair sums
    stay positive (the standard reversible-chain estimator), giving
    ``τ = 1 + 2 Σ ρ``.

    Args:
        trace: The attribute trace (≥ 10 values, non-constant).
        max_lag: Truncation bound; defaults to ``len(trace) // 3``.

    Returns:
        τ ≥ 1.0 (1.0 for white noise).

    Raises:
        ValueError: On insufficient or constant traces.
    """
    n = len(trace)
    if n < 10:
        raise ValueError("need at least 10 trace values")
    bound = max_lag if max_lag is not None else n // 3
    total = 0.0
    k = 1
    while 2 * k <= bound:
        pair = autocorrelation(trace, 2 * k - 1) + autocorrelation(trace, 2 * k)
        if pair <= 0:
            break
        total += pair
        k += 1
    return max(1.0, 1.0 + 2.0 * total)


def effective_sample_size(trace: Sequence[float]) -> float:
    """``n / τ`` — independent-sample equivalent of the correlated trace."""
    return len(trace) / integrated_autocorrelation_time(trace)
