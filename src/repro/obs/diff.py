"""Trace-diff regression attribution: turn a red gate into a diagnosis.

Two runs of the same spec — different knobs, seeds, or baselines —
produce two deterministic traces; :func:`diff_traces` aligns them and
explains the wall-clock and §II-B cost delta in causal terms: which
critical-path categories moved, by how much, and which single driver
dominates.  The regression gate prints :meth:`TraceDiff.explain` when a
planning/service/obs check fails with both traces at hand, so a failure
reads "planner prefetch stopped converting steps to cache hits", not
"2.31 != 1.87".

Alignment is by category, not by event: two runs of one spec need not
have comparable event sequences (a knob change reshuffles every tick),
but their wall-clock tilings share a vocabulary —
:mod:`repro.obs.causality`'s exclusive categories — and §II-B cost is a
set size, so both deltas decompose cleanly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.obs.causality import Attribution, Source, attribute_run, _events_of
from repro.obs.trace import EVENT_QUERY, EVENT_REFUSAL

__all__ = ["TraceDiff", "diff_traces"]

#: Synthetic driver label: the delta is explained by planner prefetching
#: (one side converted provider round trips into free cache-hit steps).
DRIVER_PLANNER_PREFETCH = "planner_prefetch"


def _query_cost(events) -> int:
    """The §II-B bill replayed from events: distinct billed users."""
    billed = set()
    for event in events:
        if event.name in (EVENT_QUERY, EVENT_REFUSAL):
            billed.add(event.attrs["user"])
    return len(billed)


@dataclasses.dataclass
class TraceDiff:
    """A structured two-run comparison, most-moved categories first.

    Attributes:
        label_a: Name of the baseline run.
        label_b: Name of the candidate run.
        attribution_a: Run ``a``'s critical-path attribution.
        attribution_b: Run ``b``'s critical-path attribution.
        wall_delta: ``b`` minus ``a`` simulated wall-clock.
        cost_delta: ``b`` minus ``a`` §II-B query cost.
        drivers: ``(category, delta)`` pairs, ``b`` minus ``a`` per
            critical-path category, ranked by magnitude.
        dominant_driver: The single best causal explanation — a category
            name, ``"planner_prefetch"`` when a prefetching disparity
            explains the direction of the delta, or ``"none"`` for
            identical runs.
    """

    label_a: str
    label_b: str
    attribution_a: Attribution
    attribution_b: Attribution
    cost_a: int
    cost_b: int
    drivers: List[Tuple[str, float]]
    dominant_driver: str

    @property
    def wall_delta(self) -> float:
        return self.attribution_b.wall_clock - self.attribution_a.wall_clock

    @property
    def cost_delta(self) -> int:
        return self.cost_b - self.cost_a

    def to_dict(self) -> dict:
        """Plain-value summary for report/benchmark JSON."""
        return {
            "labels": [self.label_a, self.label_b],
            "wall_clock": [
                self.attribution_a.wall_clock,
                self.attribution_b.wall_clock,
            ],
            "wall_delta": self.wall_delta,
            "query_cost": [self.cost_a, self.cost_b],
            "cost_delta": self.cost_delta,
            "drivers": [[category, delta] for category, delta in self.drivers],
            "dominant_driver": self.dominant_driver,
        }

    def explain(self) -> str:
        """One human paragraph: the delta, its movers, its driver."""
        a, b = self.attribution_a, self.attribution_b
        if b.wall_clock == a.wall_clock and self.cost_delta == 0 and not any(
            delta for _c, delta in self.drivers
        ):
            return (
                f"Runs {self.label_a!r} and {self.label_b!r} are equivalent: "
                f"identical simulated wall-clock ({a.wall_clock:.3f}s), identical "
                f"§II-B query cost ({self.cost_a}), and no critical-path category "
                f"moved."
            )
        ratio = (b.wall_clock / a.wall_clock) if a.wall_clock else float("inf")
        parts = [
            f"Run {self.label_b!r} spent {b.wall_clock:.3f}s simulated against "
            f"{a.wall_clock:.3f}s for {self.label_a!r} "
            f"({self.wall_delta:+.3f}s, {ratio:.2f}x), with §II-B query cost "
            f"{self.cost_b} vs {self.cost_a} ({self.cost_delta:+d})."
        ]
        movers = [(c, d) for c, d in self.drivers if d][:3]
        if movers:
            listed = ", ".join(f"{category} {delta:+.3f}s" for category, delta in movers)
            parts.append(f"Critical-path movers: {listed}.")
        if self.dominant_driver == DRIVER_PLANNER_PREFETCH:
            fast_label, fast, slow = (
                (self.label_b, b, a)
                if b.counts.get("prefetch_issued", 0) > a.counts.get("prefetch_issued", 0)
                else (self.label_a, a, b)
            )
            parts.append(
                f"Dominant driver: planner prefetch — {fast_label!r} issued "
                f"{fast.counts.get('prefetch_issued', 0)} prefetches (other side "
                f"{slow.counts.get('prefetch_issued', 0)}), converting provider "
                f"round trips into {fast.counts.get('free_steps', 0)} free cache-hit "
                f"steps (other side {slow.counts.get('free_steps', 0)})."
            )
        else:
            parts.append(f"Dominant driver: {self.dominant_driver}.")
        return " ".join(parts)


def diff_traces(
    a: Source,
    b: Source,
    *,
    label_a: str = "a",
    label_b: str = "b",
    tenant: Optional[str] = None,
) -> TraceDiff:
    """Align two runs' traces and attribute their deltas causally.

    Args:
        a: Baseline trace (recorder or event list).
        b: Candidate trace.
        label_a: Baseline name used in the explanation.
        label_b: Candidate name.
        tenant: Compare a single tenant's slice of two service traces.

    Returns:
        The :class:`TraceDiff`, drivers ranked by magnitude.
    """
    events_a = _events_of(a)
    events_b = _events_of(b)
    attribution_a = attribute_run(events_a, tenant=tenant)
    attribution_b = attribute_run(events_b, tenant=tenant)
    categories = list(attribution_a.categories)
    for category in attribution_b.categories:
        if category not in categories:
            categories.append(category)
    deltas = {
        category: attribution_b.categories.get(category, 0.0)
        - attribution_a.categories.get(category, 0.0)
        for category in categories
    }
    drivers = sorted(deltas.items(), key=lambda item: (-abs(item[1]), item[0]))
    issued_a = attribution_a.counts.get("prefetch_issued", 0)
    issued_b = attribution_b.counts.get("prefetch_issued", 0)
    wall_delta = attribution_b.wall_clock - attribution_a.wall_clock
    if issued_a != issued_b and wall_delta != 0.0 and (
        (issued_b - issued_a > 0) == (wall_delta < 0.0)
    ):
        # One side prefetched more and finished sooner: the disparity,
        # not any single wait category, is the causal story.
        dominant = DRIVER_PLANNER_PREFETCH
    elif drivers and drivers[0][1] != 0.0:
        dominant = drivers[0][0]
    else:
        dominant = "none"
    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        attribution_a=attribution_a,
        attribution_b=attribution_b,
        cost_a=_query_cost(events_a),
        cost_b=_query_cost(events_b),
        drivers=drivers,
        dominant_driver=dominant,
    )
