"""Live SLO watchers over the metrics streams, on the simulated clock.

A :class:`SLOWatcher` holds declarative :class:`SLO` objects and is
polled by the instrumented layers at their commit points — the
scheduler after every committed event/tick, the service after every
tenant tick.  Each poll reads the attached recorder's
:class:`~repro.obs.metrics.MetricsRegistry` through *non-creating*
readers and, on a threshold crossing, records one ordered
``slo_breach`` event into the same trace the run is writing.  The
breach timestamp is therefore exact and deterministic: the first
simulated commit at which the condition held.

Watching never perturbs a run.  Polls read metrics and append events
only — no walk state, no RNG, no billing is touched — so a watched run
is bit-for-bit identical in samples and cost to an unwatched one, and
the hooks are cheap enough to live under the recorder's CI-gated 1.10x
overhead ceiling (one guarded branch per commit, a handful of dict
lookups per armed SLO).

Breaches edge-trigger: an SLO fires once when its condition first
crosses and re-arms silently when the stream recovers, so a persistent
violation is one event, not one per tick.

Declarative helpers cover the paper-stack's four canonical objectives:
:func:`tenant_pace_slo` (per-tenant p95 seconds-per-sample ceiling, via
the service's pace histogram), :func:`cache_hit_rate_slo` (shared-cache
hit-share floor), :func:`shard_in_flight_slo` (per-shard burst-depth
ceiling), and :func:`retry_rate_slo` (fleet retry-per-fetch ceiling).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import EVENT_SLO_BREACH, TraceEvent, TraceRecorder

__all__ = [
    "SLO",
    "SLOWatcher",
    "tenant_pace_slo",
    "cache_hit_rate_slo",
    "shard_in_flight_slo",
    "retry_rate_slo",
]

#: Instrument readers an :class:`SLO` may bind to.
INSTRUMENTS = ("counter", "gauge", "series", "histogram_quantile", "ratio", "share")


@dataclasses.dataclass(frozen=True)
class SLO:
    """One declarative objective over a live metric stream.

    Attributes:
        name: Stable identifier stamped on breach events.
        metric: Registry instrument name to read.
        kind: ``"floor"`` (breach when value < threshold) or
            ``"ceiling"`` (breach when value > threshold).
        threshold: The objective.
        instrument: How to read ``metric`` — ``"counter"``, ``"gauge"``,
            ``"series"`` (latest sample), ``"histogram_quantile"``
            (bounded-bucket quantile, see
            :meth:`~repro.obs.metrics.Histogram.percentile`),
            ``"ratio"`` (``metric / ratio_to``), or ``"share"``
            (``metric / (metric + ratio_to)``).
        quantile: The quantile for ``histogram_quantile``.
        ratio_to: Denominator counter for ``ratio`` / ``share``.
        min_count: Observations required before the SLO evaluates —
            quantiles and rates are noise until streams fill.
    """

    name: str
    metric: str
    kind: str
    threshold: float
    instrument: str = "gauge"
    quantile: float = 0.95
    ratio_to: Optional[str] = None
    min_count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("floor", "ceiling"):
            raise ValueError(f"SLO kind must be 'floor' or 'ceiling', got {self.kind!r}")
        if self.instrument not in INSTRUMENTS:
            raise ValueError(
                f"SLO instrument must be one of {INSTRUMENTS}, got {self.instrument!r}"
            )
        if self.instrument in ("ratio", "share") and self.ratio_to is None:
            raise ValueError(f"SLO instrument {self.instrument!r} needs ratio_to")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"SLO quantile must be in (0, 1], got {self.quantile!r}")

    def evaluate(self, metrics: MetricsRegistry) -> Optional[float]:
        """Read the current value, or ``None`` when not yet evaluable."""
        if self.instrument == "counter":
            return float(metrics.counter_value(self.metric))
        if self.instrument == "gauge":
            return metrics.gauge_value(self.metric)
        if self.instrument == "series":
            return metrics.series_last(self.metric)
        if self.instrument == "histogram_quantile":
            return metrics.histogram_percentile(
                self.metric, self.quantile, min_count=max(1, self.min_count)
            )
        numerator = metrics.counter_value(self.metric)
        denominator = metrics.counter_value(self.ratio_to)
        if self.instrument == "share":
            denominator = numerator + denominator
        if denominator < max(1, self.min_count):
            return None
        return numerator / denominator

    def breached(self, value: float) -> bool:
        """Whether ``value`` violates the objective."""
        if self.kind == "floor":
            return value < self.threshold
        return value > self.threshold


class SLOWatcher:
    """Polls declared SLOs against a recorder's live metrics.

    Attach with ``EventDrivenWalkers.set_watcher`` /
    ``SamplingService.set_watcher``; the layers poll at their commit
    points on their simulated clocks.  SLOs are evaluated in
    declaration order every poll, so breach events are totally ordered
    and deterministic.
    """

    def __init__(self, recorder: TraceRecorder, slos: Sequence[SLO]) -> None:
        self._recorder = recorder
        self._metrics = recorder.metrics
        self._slos = list(slos)
        # Evaluation runs once per commit point on the hot path, so each
        # SLO's reader is compiled to a closure here instead of
        # re-dispatching on the instrument string every poll.
        self._evaluators = [self._compile(slo) for slo in self._slos]
        self._armed = [True] * len(self._slos)
        self._breaches: List[TraceEvent] = []

    def _compile(self, slo: SLO):
        metrics = self._metrics
        metric = slo.metric
        if slo.instrument == "counter":
            return lambda: float(metrics.counter_value(metric))
        if slo.instrument == "gauge":
            return lambda: metrics.gauge_value(metric)
        if slo.instrument == "series":
            return lambda: metrics.series_last(metric)
        if slo.instrument == "histogram_quantile":
            quantile = slo.quantile
            floor_count = max(1, slo.min_count)
            return lambda: metrics.histogram_percentile(
                metric, quantile, min_count=floor_count
            )
        ratio_to = slo.ratio_to
        share = slo.instrument == "share"
        floor_count = max(1, slo.min_count)

        def _rate() -> Optional[float]:
            numerator = metrics.counter_value(metric)
            denominator = metrics.counter_value(ratio_to)
            if share:
                denominator = numerator + denominator
            if denominator < floor_count:
                return None
            return numerator / denominator

        return _rate

    @property
    def slos(self) -> List[SLO]:
        """The declared objectives, in evaluation order."""
        return list(self._slos)

    @property
    def breaches(self) -> List[TraceEvent]:
        """Every breach event fired so far, in emission order."""
        return list(self._breaches)

    def poll(self, now: float) -> None:
        """Evaluate every SLO at simulated time ``now``; record crossings."""
        armed = self._armed
        for index, evaluate in enumerate(self._evaluators):
            value = evaluate()
            if value is None:
                continue
            slo = self._slos[index]
            if slo.breached(value):
                if armed[index]:
                    armed[index] = False
                    event = self._recorder.record(
                        EVENT_SLO_BREACH,
                        now,
                        slo=slo.name,
                        metric=slo.metric,
                        value=value,
                        threshold=slo.threshold,
                        kind=slo.kind,
                    )
                    self._breaches.append(event)
            elif not armed[index]:
                armed[index] = True  # recovered: re-arm for the next crossing


def tenant_pace_slo(tenant: str, ceiling: float, *, min_count: int = 1) -> SLO:
    """p95 seconds-per-sample ceiling for one tenant's delivery pace."""
    return SLO(
        name=f"tenant.{tenant}.pace_p95",
        metric=f"tenant.{tenant}.pace_hist",
        kind="ceiling",
        threshold=ceiling,
        instrument="histogram_quantile",
        quantile=0.95,
        min_count=min_count,
    )


def cache_hit_rate_slo(
    floor: float, *, prefix: str = "interface", min_count: int = 10
) -> SLO:
    """Hit-share floor over ``<prefix>.cache_hits`` / ``.cache_misses``."""
    return SLO(
        name=f"{prefix}.cache_hit_rate",
        metric=f"{prefix}.cache_hits",
        kind="floor",
        threshold=floor,
        instrument="share",
        ratio_to=f"{prefix}.cache_misses",
        min_count=min_count,
    )


def shard_in_flight_slo(shard: int, ceiling: float) -> SLO:
    """Burst-depth ceiling on one shard's in-flight series."""
    return SLO(
        name=f"shard.{shard}.in_flight",
        metric=f"shard.{shard}.in_flight",
        kind="ceiling",
        threshold=ceiling,
        instrument="series",
    )


def retry_rate_slo(ceiling: float, *, min_count: int = 10) -> SLO:
    """Retries-per-fetch ceiling over the shared fleet's counters."""
    return SLO(
        name="fleet.retry_rate",
        metric="fleet.retries",
        kind="ceiling",
        threshold=ceiling,
        instrument="ratio",
        ratio_to="fleet.fetches",
        min_count=min_count,
    )
