"""``repro.obs``: end-to-end run observability over the simulated clocks.

Four small parts compose the subsystem:

* :mod:`repro.obs.trace` — the :class:`TraceRecorder` every layer
  (interface, scheduler, planner, fleet, service) writes structured,
  simulated-clock-stamped events into when one is attached;
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, and simulated-time series the same hooks stream into;
* :mod:`repro.obs.export` — JSONL traces (snapshot-codec lines, exact
  round trip) and Chrome ``trace_event`` timelines for Perfetto;
* :mod:`repro.obs.audit` — reconciliation: replaying a trace must
  reproduce the §II-B bill and the per-shard books exactly;
* :mod:`repro.obs.causality` — the causal profiler: rebuild the causal
  DAG from a trace, walk the critical path, and attribute 100% of the
  simulated wall-clock to exclusive wait categories, reconciled
  bit-for-bit against the telemetry books;
* :mod:`repro.obs.diff` — trace-diff regression attribution: align two
  runs and explain their wall-clock / §II-B cost delta causally;
* :mod:`repro.obs.watch` — live declarative SLO watchers polled at the
  layers' commit points on the simulated clock.

Wiring: pass ``recorder=`` to :func:`repro.compose.build_stack` or
:class:`repro.service.service.SamplingService` so the trace covers the
stack's bootstrap queries too; :func:`attach_stack` instruments an
already-built stack (events before the attach point are simply absent,
which a ``query_cost`` reconciliation will flag).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.audit import reconcile_fleet, reconcile_interface, reconcile_run
from repro.obs.causality import (
    CATEGORY_ADMISSION_WAIT,
    CATEGORY_BURST_HOLD,
    CATEGORY_PREFETCH_WAIT,
    CATEGORY_RETRY_BACKOFF,
    CATEGORY_SCHEDULER_HOLD,
    CATEGORY_SHARD_LATENCY,
    CATEGORY_TENANT_QUANTUM,
    Attribution,
    CausalDag,
    Segment,
    ServiceAttribution,
    attribute_run,
    attribute_service,
    build_dag,
    reconcile_attribution,
    reconcile_service,
)
from repro.obs.diff import TraceDiff, diff_traces
from repro.obs.export import (
    TRACE_FORMAT,
    TRACE_VERSION,
    export_chrome_trace,
    export_jsonl,
    filter_events,
    read_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from repro.obs.trace import (
    EVENT_ADMISSION_WAIT,
    EVENT_BURST_DISPATCH,
    EVENT_FETCH,
    EVENT_HIBERNATE,
    EVENT_LIMITER_WAIT,
    EVENT_PREFETCH_ISSUE,
    EVENT_PREFETCH_LAND,
    EVENT_QUERY,
    EVENT_REFUSAL,
    EVENT_RETRY,
    EVENT_SAMPLE,
    EVENT_SLO_BREACH,
    EVENT_TENANT_TICK,
    EVENT_WAKE,
    EVENT_WALK_STEP,
    TraceEvent,
    TraceRecorder,
)
from repro.obs.watch import (
    SLO,
    SLOWatcher,
    cache_hit_rate_slo,
    retry_rate_slo,
    shard_in_flight_slo,
    tenant_pace_slo,
)

__all__ = [
    "TraceRecorder",
    "TraceEvent",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "attach_stack",
    "export_jsonl",
    "read_jsonl",
    "export_chrome_trace",
    "filter_events",
    "reconcile_interface",
    "reconcile_fleet",
    "reconcile_run",
    "Attribution",
    "ServiceAttribution",
    "Segment",
    "CausalDag",
    "attribute_run",
    "attribute_service",
    "build_dag",
    "reconcile_attribution",
    "reconcile_service",
    "TraceDiff",
    "diff_traces",
    "SLO",
    "SLOWatcher",
    "tenant_pace_slo",
    "cache_hit_rate_slo",
    "shard_in_flight_slo",
    "retry_rate_slo",
    "CATEGORY_SHARD_LATENCY",
    "CATEGORY_RETRY_BACKOFF",
    "CATEGORY_ADMISSION_WAIT",
    "CATEGORY_BURST_HOLD",
    "CATEGORY_PREFETCH_WAIT",
    "CATEGORY_SCHEDULER_HOLD",
    "CATEGORY_TENANT_QUANTUM",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "EVENT_QUERY",
    "EVENT_REFUSAL",
    "EVENT_LIMITER_WAIT",
    "EVENT_WALK_STEP",
    "EVENT_BURST_DISPATCH",
    "EVENT_ADMISSION_WAIT",
    "EVENT_PREFETCH_ISSUE",
    "EVENT_PREFETCH_LAND",
    "EVENT_FETCH",
    "EVENT_RETRY",
    "EVENT_TENANT_TICK",
    "EVENT_HIBERNATE",
    "EVENT_WAKE",
    "EVENT_SAMPLE",
    "EVENT_SLO_BREACH",
]


def attach_stack(stack, recorder: TraceRecorder, tenant: Optional[str] = None) -> TraceRecorder:
    """Wire one recorder through every layer of a built sampling stack.

    Duck-typed on purpose (``repro.obs`` imports none of the layer
    modules): anything with ``api`` / ``walkers`` / ``fleet`` and an
    optional ``planner`` works — a :class:`~repro.compose.SamplingStack`
    in practice.  Returns the recorder for chaining.

    Note that a stack instrumented *after* construction has already
    billed its bootstrap queries untraced; build with
    ``build_stack(..., recorder=...)`` when the trace must reconcile
    against ``query_cost`` exactly.
    """
    stack.api.set_recorder(recorder, tenant=tenant)
    stack.fleet.set_recorder(recorder)
    stack.walkers.set_recorder(recorder, tenant=tenant)
    planner = getattr(stack, "planner", None)
    if planner is not None:
        planner.set_recorder(recorder)
    return recorder
