"""Live metric streams over simulated time: counters, gauges, series.

The telemetry record (:mod:`repro.interface.telemetry`) is an end-of-run
aggregate — it answers *what* a run cost, never *when*.  This registry is
the time-resolved half of observability: instrumented layers push samples
as the simulated clocks advance, so a finished run can answer "when did
the cache hit rate collapse?", "which shard's queue was deepest at
t=800s?", or "when did R̂ cross threshold?".

Everything here is deterministic: instruments are keyed by name in
insertion order, time-series samples are bucketed on the *simulated*
clock (never the wall clock), and the whole registry round-trips through
``state_dict()``/``load_state()`` so an in-flight recorder survives a
checkpoint bit-for-bit.

Instruments:

* :class:`Counter` — monotonically accumulating float/int.
* :class:`Gauge` — last-write-wins level (queue depth, ledger balance).
* :class:`Histogram` — fixed-bound distribution (latency shapes).
* :class:`TimeSeries` — ``(bucket, value)`` samples over simulated time;
  one value per bucket, last write wins, so streaming a gauge into a
  series costs O(1) amortized and stays bounded by run length.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount!r}")
        self.value += amount


class Gauge:
    """A last-write-wins level."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        """Replace the gauge's current level."""
        self.value = value


class Histogram:
    """A fixed-bound distribution: counts per bucket plus sum/count.

    Args:
        bounds: Ascending upper bounds; an observation lands in the first
            bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must ascend, got {bounds!r}")
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile's bucket upper bound — exact, not estimated.

        A bounded histogram cannot interpolate honestly, so this returns
        the smallest bound whose cumulative count covers rank
        ``ceil(q * count)``: the tightest upper bound the buckets can
        prove for the ``q``-quantile.  Observations past the last bound
        have no provable bound, so a rank landing in the overflow bucket
        returns ``inf``.  An empty histogram returns 0.0 (like
        :attr:`mean`).

        Raises:
            ValueError: If ``q`` is outside ``(0, 1]``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile wants q in (0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self.buckets[i]
            if seen >= rank:
                return bound
        return math.inf

    def summary(self) -> dict:
        """p50/p95/p99 plus count and mean — what an SLO watcher reads."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_dict(self) -> dict:
        """Buckets, totals, and the :meth:`summary` quantiles, plain values."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "summary": self.summary(),
        }


class TimeSeries:
    """``(bucket start, value)`` samples over simulated time.

    Args:
        bucket: Bucket width in simulated seconds; observations within
            one bucket coalesce (last write wins), so high-frequency
            streams stay bounded by run length, not event count.
    """

    __slots__ = ("bucket", "samples")

    def __init__(self, bucket: float = 1.0) -> None:
        if bucket <= 0:
            raise ValueError(f"time-series bucket must be > 0, got {bucket!r}")
        self.bucket = bucket
        self.samples: List[Tuple[float, float]] = []

    def observe(self, ts: float, value: float) -> None:
        """Record ``value`` at simulated time ``ts``.

        Timestamps must be non-decreasing (simulated clocks only move
        forward); an in-bucket repeat overwrites, a new bucket appends.
        """
        start = math.floor(ts / self.bucket) * self.bucket
        if self.samples and self.samples[-1][0] == start:
            self.samples[-1] = (start, value)
        else:
            self.samples.append((start, value))

    def last(self) -> Optional[float]:
        """The most recent value, or ``None`` when empty."""
        return self.samples[-1][1] if self.samples else None


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-exact.

    Layers never construct instruments directly — they ask the registry
    (``registry.counter("interface.cache_hits").inc()``), so every stream
    a run produced is discoverable by name afterwards via
    :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at 0 on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created at 0.0 on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: Tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0)) -> Histogram:
        """The histogram called ``name`` (``bounds`` applies on creation)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def series(self, name: str, bucket: float = 1.0) -> TimeSeries:
        """The time series called ``name`` (``bucket`` applies on creation)."""
        instrument = self._series.get(name)
        if instrument is None:
            instrument = self._series[name] = TimeSeries(bucket)
        return instrument

    def counter_value(self, name: str) -> float:
        """Read a counter without creating it (0 when absent)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def gauge_value(self, name: str) -> Optional[float]:
        """Read a gauge without creating it (``None`` when absent).

        The SLO watcher polls with these non-creating readers so a
        watched run's registry state stays byte-identical to an
        unwatched one — reads must never mint instruments.
        """
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else None

    def series_last(self, name: str) -> Optional[float]:
        """Latest sample of a series without creating it (``None`` when absent/empty)."""
        instrument = self._series.get(name)
        return instrument.last() if instrument is not None else None

    def histogram_summary(self, name: str) -> Optional[dict]:
        """A histogram's :meth:`Histogram.summary` without creating it."""
        instrument = self._histograms.get(name)
        return instrument.summary() if instrument is not None else None

    def histogram_percentile(
        self, name: str, q: float, min_count: int = 1
    ) -> Optional[float]:
        """A histogram's :meth:`Histogram.percentile` without creating it.

        Returns ``None`` when the histogram is absent or holds fewer
        than ``min_count`` observations — a quantile over a near-empty
        stream is noise, not a signal an SLO should fire on.
        """
        instrument = self._histograms.get(name)
        if instrument is None or instrument.count < min_count:
            return None
        return instrument.percentile(q)

    def snapshot(self) -> dict:
        """Every instrument's current state as plain values.

        Counters/gauges map name -> value; histograms map name ->
        ``{bounds, buckets, count, total}``; series map name -> sample
        list.  Derived rates (e.g. cache hit rate) are the caller's
        arithmetic — the registry only stores what was observed.
        """
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {
                name: h.to_dict() for name, h in self._histograms.items()
            },
            "series": {
                name: {"bucket": s.bucket, "samples": [list(p) for p in s.samples]}
                for name, s in self._series.items()
            },
        }

    def state_dict(self) -> dict:
        """Snapshot-codec-safe state (tuples for sample points)."""
        return {
            "counters": dict((name, c.value) for name, c in self._counters.items()),
            "gauges": dict((name, g.value) for name, g in self._gauges.items()),
            "histograms": {
                name: {
                    "bounds": h.bounds,
                    "buckets": tuple(h.buckets),
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in self._histograms.items()
            },
            "series": {
                name: {"bucket": s.bucket, "samples": tuple(s.samples)}
                for name, s in self._series.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` payload, replacing all instruments."""
        self._counters = {name: Counter(value) for name, value in state.get("counters", {}).items()}
        self._gauges = {name: Gauge(value) for name, value in state.get("gauges", {}).items()}
        self._histograms = {}
        for name, payload in state.get("histograms", {}).items():
            histogram = Histogram(tuple(payload["bounds"]))
            histogram.buckets = list(payload["buckets"])
            histogram.count = payload["count"]
            histogram.total = payload["total"]
            self._histograms[name] = histogram
        self._series = {}
        for name, payload in state.get("series", {}).items():
            series = TimeSeries(payload["bucket"])
            series.samples = [tuple(point) for point in payload["samples"]]
            self._series[name] = series
