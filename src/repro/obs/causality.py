"""Causal critical-path analysis: *why* a run took the wall-clock it did.

The trace (:mod:`repro.obs.trace`) records what happened and when; the
audit (:mod:`repro.obs.audit`) proves the record complete.  This module
answers the remaining question — which waits actually *bound* simulated
wall-clock — by reconstructing the run's causal chain backward from its
last committed action and tiling ``[0, wall]`` with exclusive,
gap-free, overlap-free segments:

* ``shard_latency`` — a shard round trip the run could not proceed
  without (attributed to its shard);
* ``retry_backoff`` — the share of a binding round trip burnt on failed
  attempts (split out of ``shard_latency`` when the flaky layer retried);
* ``admission_wait`` — a chain held for the shard's next admission slot
  after opening a burst;
* ``burst_hold`` — a chain riding a coalesced burst that departs later
  than the chain arrived (the price of batch packing);
* ``prefetch_wait`` — a chain that walked onto a planner-prefetched node
  before its round trip landed (planner parking);
* ``scheduler_hold`` — tick grouping: the chain was ready but its event
  group departed later (batch windows, re-queues, quantum boundaries).

Cache-hit steps and sample merges take zero simulated time; they appear
in ``counts`` (``free_steps`` / ``samples``), never as segments.

Exactness is structural, not summed: the scheduler annotates every
batched ``walk_step`` with the burst tuples and final ready time its own
settle loop computed (see ``EventDrivenWalkers._annotate_tick``), so the
profiler re-derives each boundary from the *same floats with the same
operations* and the tiling reconciles bit-for-bit against the run clock
— no float-summation slop, in the same spirit as
:func:`repro.obs.audit.reconcile_run`.  :func:`reconcile_attribution`
checks exactly that.

One approximation is documented rather than hidden: a binding burst's
latency is the *maximum* over its members, and a retry's backoff split
applies only when the retried fetch is provably that maximum (matched by
shard and billed latency among the acting chain's own fetches).  When
the binding member belongs to another chain the whole round trip stays
``shard_latency`` — still a perfect tiling, just a coarser label.

Like the audit, this module never imports layer modules: it is pure
event-stream arithmetic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import (
    EVENT_BURST_DISPATCH,
    EVENT_FETCH,
    EVENT_PREFETCH_ISSUE,
    EVENT_PREFETCH_LAND,
    EVENT_QUERY,
    EVENT_RETRY,
    EVENT_SAMPLE,
    EVENT_TENANT_TICK,
    EVENT_WALK_STEP,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "CATEGORY_SHARD_LATENCY",
    "CATEGORY_RETRY_BACKOFF",
    "CATEGORY_ADMISSION_WAIT",
    "CATEGORY_BURST_HOLD",
    "CATEGORY_PREFETCH_WAIT",
    "CATEGORY_SCHEDULER_HOLD",
    "CATEGORY_TENANT_QUANTUM",
    "Segment",
    "Attribution",
    "ServiceAttribution",
    "CausalDag",
    "attribute_run",
    "attribute_service",
    "reconcile_attribution",
    "reconcile_service",
    "build_dag",
]

CATEGORY_SHARD_LATENCY = "shard_latency"
CATEGORY_RETRY_BACKOFF = "retry_backoff"
CATEGORY_ADMISSION_WAIT = "admission_wait"
CATEGORY_BURST_HOLD = "burst_hold"
CATEGORY_PREFETCH_WAIT = "prefetch_wait"
CATEGORY_SCHEDULER_HOLD = "scheduler_hold"
CATEGORY_TENANT_QUANTUM = "tenant_quantum"

#: Events that advance a chain: the nodes the critical path runs through.
_ACTIONS = frozenset((EVENT_WALK_STEP, EVENT_SAMPLE))

Source = Union[TraceRecorder, Iterable[TraceEvent]]


def _events_of(source: Source) -> List[TraceEvent]:
    if isinstance(source, TraceRecorder):
        return list(source.events)
    return list(source)


def _matches_tenant(event: TraceEvent, tenant: Optional[str]) -> bool:
    if tenant is None:
        return True
    return event.attrs.get("tenant") == tenant


def _ready_of(event: TraceEvent) -> float:
    """When the acting chain became ready again, bit-for-bit.

    Batched steps carry the settle loop's own ``ready`` annotation;
    unbatched steps re-derive it as ``ts + dur`` — the identical floats
    and operation the event loop used (``when + latency``).  Samples
    read local state and are free.
    """
    if event.name == EVENT_SAMPLE:
        return event.ts
    ready = event.attrs.get("ready")
    if ready is None:
        return event.ts + event.dur
    return ready


@dataclasses.dataclass(frozen=True)
class Segment:
    """One exclusive slice of the critical path's wall-clock tiling."""

    start: float
    end: float
    category: str
    chain: Optional[int] = None
    shard: Optional[int] = None
    tenant: Optional[str] = None

    @property
    def width(self) -> float:
        """Simulated seconds this slice covers."""
        return self.end - self.start


@dataclasses.dataclass
class Attribution:
    """100% of one run's simulated wall-clock, exclusively attributed.

    Attributes:
        wall_clock: The run clock the segments tile (``simulated_elapsed``).
        segments: The critical path, forward in time; a gap-free,
            overlap-free partition of ``[0, wall_clock]``.
        categories: Category -> total width (``math.fsum`` over segments).
        by_shard: Shard -> width of its binding round trips
            (``shard_latency`` + ``retry_backoff``).
        by_chain: Chain -> width of critical-path segments it owns.
        counts: Zero-cost and bookkeeping tallies (``samples``,
            ``free_steps``, ``steps``, ``actions``, ``prefetch_issued``,
            ``prefetch_landed``, ``path_segments``).
        latency_serial: Emission-order sum of billed query latencies —
            bit-identical to the interface's ``latency_spent``.
        latency_by_shard: Shard -> emission-order latency sum from fetch
            events — bit-identical to the per-shard books.
        tenant: The tenant filter this attribution was computed under.
    """

    wall_clock: float
    segments: List[Segment]
    categories: Dict[str, float]
    by_shard: Dict[int, float]
    by_chain: Dict[int, float]
    counts: Dict[str, int]
    latency_serial: float
    latency_by_shard: Dict[int, float]
    tenant: Optional[str] = None

    def total(self) -> float:
        """``math.fsum`` of all segment widths (reporting only — the
        exactness claim is the tiling, which :func:`reconcile_attribution`
        checks boundary by boundary)."""
        return math.fsum(segment.width for segment in self.segments)

    def to_dict(self) -> dict:
        """Plain-value summary for benchmark/report JSON."""
        return {
            "wall_clock": self.wall_clock,
            "total": self.total(),
            "categories": dict(self.categories),
            "by_shard": {str(k): v for k, v in self.by_shard.items()},
            "by_chain": {str(k): v for k, v in self.by_chain.items()},
            "counts": dict(self.counts),
            "latency_serial": self.latency_serial,
            "segments": len(self.segments),
        }


@dataclasses.dataclass
class ServiceAttribution:
    """A multi-tenant service run: the shared clock plus per-tenant paths.

    The service clock is serialized fleet occupancy, so its tiling is the
    quantum ledger itself: one ``tenant_quantum`` segment per tenant tick
    (zero-width ticks dropped), tiling ``[0, clock]`` exactly.  Inside
    each quantum the tenant's own scheduler clock ran; ``per_tenant``
    holds each tenant's inner critical-path attribution on that clock.
    """

    clock: float
    quanta: List[Segment]
    per_tenant: Dict[str, Attribution]
    by_tenant: Dict[str, float]

    def to_dict(self) -> dict:
        return {
            "clock": self.clock,
            "by_tenant": dict(self.by_tenant),
            "per_tenant": {t: a.to_dict() for t, a in self.per_tenant.items()},
            "quanta": len(self.quanta),
        }


def _decompose(
    event: TraceEvent, end: float, retries: Tuple[Tuple[int, float, float], ...]
) -> List[Segment]:
    """Tile ``[event.ts, end]`` for one critical action, zero-width free.

    ``end`` is the already-explained frontier (normally the action's own
    ready time); every boundary below is either a recorded float or the
    settle loop's exact arithmetic replayed, so consecutive segments meet
    bit-for-bit.
    """
    ts = event.ts
    chain = event.attrs.get("chain")
    tenant = event.attrs.get("tenant")
    if not end > ts:
        return []
    bursts = event.attrs.get("bursts")
    if not bursts:
        # A step with no dispatches that still left the chain waiting:
        # it walked onto a prefetched node whose round trip had not
        # landed yet (unbatched steps land here too, with their whole
        # provider latency as the wait — there is no burst structure to
        # split, and no admission on an unbatched path).
        if event.attrs.get("ready") is None and event.dur > 0.0:
            return [
                Segment(ts, end, CATEGORY_SHARD_LATENCY, chain=chain, tenant=tenant)
            ]
        return [Segment(ts, end, CATEGORY_PREFETCH_WAIT, chain=chain, tenant=tenant)]
    # The binding burst: first entry achieving the settle loop's max —
    # identical iteration order, identical floats, identical ops.
    best = bursts[0]
    done = best[1] + best[2]
    for entry in bursts[1:]:
        candidate = entry[1] + entry[2]
        if candidate > done:
            done = candidate
            best = entry
    shard, start, lat, opened = best
    segments: List[Segment] = []
    wait_end = min(start, end)
    if wait_end > ts:
        category = CATEGORY_ADMISSION_WAIT if opened else CATEGORY_BURST_HOLD
        segments.append(Segment(ts, wait_end, category, chain=chain, shard=shard, tenant=tenant))
    trip_end = min(done, end)
    if trip_end > wait_end:
        backoff = 0.0
        for retry_shard, retry_latency, retry_backoff in retries:
            if retry_shard == shard and retry_latency == lat:
                backoff = min(retry_backoff, trip_end - wait_end)
                break
        split = trip_end - backoff
        if split > wait_end:
            segments.append(
                Segment(
                    wait_end,
                    split,
                    CATEGORY_SHARD_LATENCY,
                    chain=chain,
                    shard=shard,
                    tenant=tenant,
                )
            )
        if trip_end > split:
            segments.append(
                Segment(
                    split,
                    trip_end,
                    CATEGORY_RETRY_BACKOFF,
                    chain=chain,
                    shard=shard,
                    tenant=tenant,
                )
            )
    if end > trip_end:
        segments.append(
            Segment(trip_end, end, CATEGORY_PREFETCH_WAIT, chain=chain, tenant=tenant)
        )
    return segments


def _critical_path(
    actions: List[Tuple[TraceEvent, float, Tuple[Tuple[int, float, float], ...]]],
    wall: float,
) -> List[Segment]:
    """Walk backward from the wall clock, tiling as causes are found.

    At every frontier ``cursor`` the predecessor is the latest-emitted
    action whose ready time *equals* the frontier bit-for-bit (its
    completion is what allowed time to reach ``cursor``); when none
    matches exactly, the latest-ready earlier action bounds a
    ``scheduler_hold`` gap.  Emission order strictly decreases, so the
    walk terminates even through zero-width actions.
    """
    segments_rev: List[Segment] = []
    cursor = wall
    upper = len(actions)
    while cursor > 0.0:
        match = None
        hold = None
        for j in range(upper - 1, -1, -1):
            ready = actions[j][1]
            if ready == cursor:
                match = j
                break
            if ready < cursor and (hold is None or ready > actions[hold][1]):
                hold = j
        if match is None:
            if hold is None:
                segments_rev.append(Segment(0.0, cursor, CATEGORY_SCHEDULER_HOLD))
                cursor = 0.0
                break
            event, ready, _ = actions[hold]
            segments_rev.append(
                Segment(
                    ready,
                    cursor,
                    CATEGORY_SCHEDULER_HOLD,
                    chain=event.attrs.get("chain"),
                    tenant=event.attrs.get("tenant"),
                )
            )
            cursor = ready
            match = hold
        event, _ready, retries = actions[match]
        segments_rev.extend(reversed(_decompose(event, cursor, retries)))
        cursor = event.ts
        upper = match
    return list(reversed(segments_rev))


def attribute_run(
    source: Source,
    *,
    wall_clock: Optional[float] = None,
    tenant: Optional[str] = None,
) -> Attribution:
    """Attribute one run's simulated wall-clock to exclusive categories.

    Args:
        source: A recorder, or the event list a trace file read back.
        wall_clock: The run clock to tile.  Defaults to the latest
            action timestamp, which equals the scheduler's
            ``simulated_elapsed`` bit-for-bit (the clock only advances
            at recorded ticks).
        tenant: Restrict to one tenant's events — each tenant's
            scheduler owns its own event-time clock, so per-tenant
            attribution inside a shared service trace must slice first.

    Returns:
        The :class:`Attribution`; feed it to
        :func:`reconcile_attribution` to prove the tiling exact.
    """
    events = _events_of(source)
    actions: List[Tuple[TraceEvent, float, Tuple[Tuple[int, float, float], ...]]] = []
    pending_retries: List[Tuple[int, float, float]] = []
    last_fetch: Optional[Tuple[int, float]] = None
    latency_serial = 0.0
    latency_by_shard: Dict[int, float] = {}
    counts = {
        "actions": 0,
        "steps": 0,
        "samples": 0,
        "free_steps": 0,
        "prefetch_issued": 0,
        "prefetch_landed": 0,
    }
    for event in events:
        name = event.name
        if name == EVENT_FETCH:
            if not _matches_tenant(event, tenant):
                continue
            if not event.attrs.get("refused"):
                shard = event.attrs["shard"]
                latency = event.attrs["latency"]
                latency_by_shard[shard] = latency_by_shard.get(shard, 0.0) + latency
                last_fetch = (shard, latency)
        elif name == EVENT_RETRY:
            if not _matches_tenant(event, tenant) or last_fetch is None:
                continue
            pending_retries.append(
                (last_fetch[0], last_fetch[1], event.attrs.get("backoff", 0.0))
            )
        elif name == EVENT_QUERY:
            if _matches_tenant(event, tenant):
                latency_serial += event.attrs["latency"]
        elif name == EVENT_PREFETCH_ISSUE:
            # The prefetch consumed the pending fetches; they are not the
            # next step's own round trips.
            pending_retries.clear()
            if _matches_tenant(event, tenant):
                counts["prefetch_issued"] += 1
        elif name == EVENT_PREFETCH_LAND:
            if _matches_tenant(event, tenant):
                counts["prefetch_landed"] += 1
        elif name == EVENT_TENANT_TICK:
            pending_retries.clear()
        elif name in _ACTIONS:
            retries = tuple(pending_retries)
            pending_retries.clear()
            if not _matches_tenant(event, tenant):
                continue
            counts["actions"] += 1
            if name == EVENT_SAMPLE:
                counts["samples"] += 1
            else:
                counts["steps"] += 1
                if event.dur == 0.0 and not event.attrs.get("bursts"):
                    counts["free_steps"] += 1
            actions.append((event, _ready_of(event), retries))
    if wall_clock is None:
        wall_clock = max((a[0].ts for a in actions), default=0.0)
    segments = _critical_path(actions, wall_clock)
    counts["path_segments"] = len(segments)
    categories: Dict[str, float] = {}
    by_shard: Dict[int, float] = {}
    by_chain: Dict[int, float] = {}
    grouped: Dict[str, List[float]] = {}
    shard_grouped: Dict[int, List[float]] = {}
    chain_grouped: Dict[int, List[float]] = {}
    for segment in segments:
        grouped.setdefault(segment.category, []).append(segment.width)
        if segment.shard is not None:
            shard_grouped.setdefault(segment.shard, []).append(segment.width)
        if segment.chain is not None:
            chain_grouped.setdefault(segment.chain, []).append(segment.width)
    for category, widths in grouped.items():
        categories[category] = math.fsum(widths)
    for shard, widths in shard_grouped.items():
        by_shard[shard] = math.fsum(widths)
    for chain, widths in chain_grouped.items():
        by_chain[chain] = math.fsum(widths)
    return Attribution(
        wall_clock=wall_clock,
        segments=segments,
        categories=categories,
        by_shard=by_shard,
        by_chain=by_chain,
        counts=counts,
        latency_serial=latency_serial,
        latency_by_shard=latency_by_shard,
        tenant=tenant,
    )


def reconcile_attribution(
    attribution: Attribution,
    *,
    wall_clock: Optional[float] = None,
    telemetry=None,
) -> List[str]:
    """Prove an attribution exact; list every violation.

    Checks, all bit-for-bit:

    * the segments partition ``[0, wall_clock]`` — first starts at 0.0,
      every boundary meets its neighbour exactly, the last ends at the
      wall (no float-sum tolerance anywhere);
    * the category/shard/chain totals re-derive from the segments;
    * with ``telemetry``: the serial latency sum matches
      ``latency_spent`` and (unfiltered runs) the per-shard sums match
      the books — the same contract :func:`repro.obs.audit.reconcile_run`
      enforces for the bill.

    Returns:
        Problem descriptions; empty when the attribution reconciles.
    """
    problems: List[str] = []
    wall = attribution.wall_clock
    if wall_clock is not None and wall != wall_clock:
        problems.append(
            f"wall_clock: attribution tiles {wall!r}, run clock is {wall_clock!r}"
        )
    segments = attribution.segments
    if wall > 0.0:
        if not segments:
            problems.append(f"no segments tile the positive wall clock {wall!r}")
        else:
            if segments[0].start != 0.0:
                problems.append(
                    f"tiling starts at {segments[0].start!r}, not 0.0"
                )
            if segments[-1].end != wall:
                problems.append(
                    f"tiling ends at {segments[-1].end!r}, wall clock is {wall!r}"
                )
            previous = segments[0]
            if previous.end < previous.start:
                problems.append(f"segment 0 has negative width: {previous!r}")
            for index, segment in enumerate(segments[1:], start=1):
                if segment.start != previous.end:
                    problems.append(
                        f"segment {index} starts at {segment.start!r}, "
                        f"previous ended at {previous.end!r}"
                    )
                if segment.end < segment.start:
                    problems.append(f"segment {index} has negative width: {segment!r}")
                previous = segment
    elif segments:
        problems.append("segments present under a zero wall clock")
    derived: Dict[str, List[float]] = {}
    for segment in segments:
        derived.setdefault(segment.category, []).append(segment.width)
    recomputed = {c: math.fsum(widths) for c, widths in derived.items()}
    if recomputed != attribution.categories:
        problems.append(
            f"categories: segments re-derive {recomputed!r}, "
            f"attribution says {attribution.categories!r}"
        )
    if telemetry is not None:
        if attribution.latency_serial != telemetry.latency_spent:
            problems.append(
                f"latency_spent: events sum to {attribution.latency_serial!r}, "
                f"interface spent {telemetry.latency_spent!r}"
            )
        shards = getattr(telemetry, "shards", None)
        if shards is not None and attribution.tenant is None:
            for shard in sorted(shards):
                replayed = attribution.latency_by_shard.get(shard, 0.0)
                booked = shards[shard].latency_spent
                if replayed != booked:
                    problems.append(
                        f"shard {shard} latency: events replay {replayed!r}, "
                        f"books say {booked!r}"
                    )
    return problems


def attribute_service(source: Source, *, clock: Optional[float] = None) -> ServiceAttribution:
    """Attribute a multi-tenant service run: quantum ledger + inner paths.

    The outer tiling is exact by construction: each ``tenant_tick``
    records its pre-charge timestamp *and* the absolute post-charge
    clock, and consecutive ticks read the same clock variable — so the
    quanta meet bit-for-bit with no re-summation.  Inner attributions
    run per tenant on each tenant's own scheduler clock.
    """
    events = _events_of(source)
    quanta: List[Segment] = []
    tenants: List[str] = []
    last_clock = 0.0
    for event in events:
        if event.name != EVENT_TENANT_TICK:
            continue
        tenant = event.attrs.get("tenant")
        if tenant not in tenants:
            tenants.append(tenant)
        end = event.attrs.get("clock")
        if end is None:
            end = event.ts + event.dur
        last_clock = end
        if end > event.ts:
            quanta.append(
                Segment(event.ts, end, CATEGORY_TENANT_QUANTUM, tenant=tenant)
            )
    for event in events:
        tenant = event.attrs.get("tenant")
        if event.name in _ACTIONS and tenant is not None and tenant not in tenants:
            tenants.append(tenant)
    per_tenant = {t: attribute_run(events, tenant=t) for t in tenants}
    grouped: Dict[str, List[float]] = {}
    for segment in quanta:
        grouped.setdefault(segment.tenant, []).append(segment.width)
    by_tenant = {t: math.fsum(widths) for t, widths in grouped.items()}
    return ServiceAttribution(
        clock=clock if clock is not None else last_clock,
        quanta=quanta,
        per_tenant=per_tenant,
        by_tenant=by_tenant,
    )


def reconcile_service(
    attribution: ServiceAttribution, *, clock: Optional[float] = None
) -> List[str]:
    """Prove a service attribution exact at both levels.

    The quanta must partition ``[0, clock]`` bit-for-bit, and every
    tenant's inner attribution must itself reconcile (its problems are
    returned prefixed with the tenant label).
    """
    problems: List[str] = []
    target = clock if clock is not None else attribution.clock
    quanta = attribution.quanta
    if target > 0.0:
        if not quanta:
            problems.append(f"no quanta tile the positive service clock {target!r}")
        else:
            if quanta[0].start != 0.0:
                problems.append(f"quanta start at {quanta[0].start!r}, not 0.0")
            if quanta[-1].end != target:
                problems.append(
                    f"quanta end at {quanta[-1].end!r}, service clock is {target!r}"
                )
            previous = quanta[0]
            for index, segment in enumerate(quanta[1:], start=1):
                if segment.start != previous.end:
                    problems.append(
                        f"quantum {index} starts at {segment.start!r}, "
                        f"previous ended at {previous.end!r}"
                    )
                previous = segment
    elif quanta:
        problems.append("quanta present under a zero service clock")
    for tenant, inner in attribution.per_tenant.items():
        for problem in reconcile_attribution(inner):
            problems.append(f"tenant {tenant}: {problem}")
    return problems


@dataclasses.dataclass
class CausalDag:
    """The reconstructed dependency DAG over trace events.

    Attributes:
        nodes: Event sequence number -> event.
        edges: ``(from_seq, to_seq, kind)`` triples, where the *from*
            event causally precedes the *to* event.  Kinds:
            ``chain_order`` (an action follows its chain's previous
            action), ``fetch`` (a step/prefetch depends on the shard
            fetches it issued), ``admission`` (a burst follows the
            previous burst's admission slot on its shard), ``prefetch``
            (a landing follows its issue), ``quantum`` (an action
            committed inside a tenant's admission quantum).
    """

    nodes: Dict[int, TraceEvent]
    edges: List[Tuple[int, int, str]]

    def edges_of(self, kind: str) -> List[Tuple[int, int, str]]:
        """All edges of one kind, in construction order."""
        return [edge for edge in self.edges if edge[2] == kind]

    def parents_of(self, seq: int) -> List[int]:
        """Sequence numbers of the events ``seq`` causally depends on."""
        return [src for src, dst, _kind in self.edges if dst == seq]

    def summary(self) -> dict:
        """Node count plus edge counts by kind."""
        kinds: Dict[str, int] = {}
        for _src, _dst, kind in self.edges:
            kinds[kind] = kinds.get(kind, 0) + 1
        return {"nodes": len(self.nodes), "edges": kinds}


def build_dag(source: Source) -> CausalDag:
    """Reconstruct the causal DAG from an event stream.

    Emission order carries the correlation the events do not spell out:
    a step's fetches are recorded immediately before the step (likewise
    a prefetch's), bursts on one shard share its admission horizon in
    order, and a tenant tick closes over the actions since the previous
    tick.  The DAG is explanatory structure — attribution above never
    depends on it.
    """
    events = _events_of(source)
    nodes = {event.seq: event for event in events}
    edges: List[Tuple[int, int, str]] = []
    pending_fetches: List[int] = []
    last_action_of: Dict[Tuple[Optional[str], int], int] = {}
    last_burst_of: Dict[int, int] = {}
    open_issues: Dict[Tuple[Optional[int], object], int] = {}
    pending_actions: List[int] = []
    for event in events:
        name = event.name
        if name == EVENT_FETCH:
            pending_fetches.append(event.seq)
        elif name == EVENT_BURST_DISPATCH:
            shard = event.attrs.get("shard")
            previous = last_burst_of.get(shard)
            if previous is not None:
                edges.append((previous, event.seq, "admission"))
            last_burst_of[shard] = event.seq
        elif name == EVENT_PREFETCH_ISSUE:
            for fetch_seq in pending_fetches:
                edges.append((fetch_seq, event.seq, "fetch"))
            pending_fetches.clear()
            open_issues[(event.attrs.get("chain"), event.attrs.get("user"))] = event.seq
        elif name == EVENT_PREFETCH_LAND:
            issue = open_issues.pop(
                (event.attrs.get("chain"), event.attrs.get("user")), None
            )
            if issue is not None:
                edges.append((issue, event.seq, "prefetch"))
        elif name == EVENT_TENANT_TICK:
            tenant = event.attrs.get("tenant")
            for action_seq in pending_actions:
                action = nodes[action_seq]
                if action.attrs.get("tenant") == tenant:
                    edges.append((action_seq, event.seq, "quantum"))
            pending_actions.clear()
        elif name in _ACTIONS:
            for fetch_seq in pending_fetches:
                edges.append((fetch_seq, event.seq, "fetch"))
            pending_fetches.clear()
            key = (event.attrs.get("tenant"), event.attrs.get("chain"))
            previous = last_action_of.get(key)
            if previous is not None:
                edges.append((previous, event.seq, "chain_order"))
            last_action_of[key] = event.seq
            pending_actions.append(event.seq)
    return CausalDag(nodes=nodes, edges=edges)
