"""Trace exporters: JSONL event logs and Chrome ``trace_event`` timelines.

Two formats, two audiences:

* :func:`export_jsonl` / :func:`read_jsonl` — the machine-readable log.
  Every line goes through the PR-2 snapshot codec
  (:func:`~repro.datastore.snapshot.encode_value`), so arbitrary
  hashable user ids, exact floats, and the
  :class:`~repro.obs.trace.TraceEvent` records themselves round-trip
  type-faithfully; a read-back trace feeds the reconciliation audit
  (:mod:`repro.obs.audit`) byte-for-byte.
* :func:`export_chrome_trace` — the human-readable timeline.  The JSON
  it writes opens directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``: drag the file in and every chain, shard, and
  tenant gets its own named lane, with spans on the simulated clock
  (microsecond units, 1 simulated second = 1e6 µs).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.datastore.snapshot import SnapshotError, decode_value, encode_value
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, TraceRecorder

#: Format marker written into every JSONL trace header.
TRACE_FORMAT = "repro-trace"

#: Version of the JSONL layout; bumped on incompatible changes.
TRACE_VERSION = 1


def _events_of(source: Union[TraceRecorder, Iterable[TraceEvent]]) -> List[TraceEvent]:
    if isinstance(source, TraceRecorder):
        return list(source.events)
    return list(source)


def filter_events(
    events: Iterable[TraceEvent],
    *,
    tenant: Optional[str] = None,
    shard: Optional[int] = None,
    chain: Optional[int] = None,
) -> List[TraceEvent]:
    """Slice a trace down to one tenant's / shard's / chain's events.

    Filters are conjunctive and strict: a filtered dimension keeps only
    events that *carry* the attribute with the requested value, so the
    slice is exactly the lane a Perfetto view would show.  ``None``
    leaves a dimension unfiltered.
    """
    kept = []
    for event in events:
        if tenant is not None and event.attrs.get("tenant") != tenant:
            continue
        if shard is not None and event.attrs.get("shard") != shard:
            continue
        if chain is not None and event.attrs.get("chain") != chain:
            continue
        kept.append(event)
    return kept


def export_jsonl(
    recorder: TraceRecorder,
    path: "str | os.PathLike",
    *,
    tenant: Optional[str] = None,
    shard: Optional[int] = None,
    chain: Optional[int] = None,
) -> int:
    """Write a recorder's events + metrics as one atomic JSONL file.

    Layout: a header object, one codec-encoded line per event (JSON
    arrays — the codec's tagged form), and a footer object carrying the
    metrics registry state.  Returns the number of events written.

    ``tenant`` / ``shard`` / ``chain`` slice the event lines via
    :func:`filter_events`; the header's event count reflects the slice
    and the metrics footer stays complete (registry state is global —
    a slice of a histogram is not a histogram).
    """
    target = os.fspath(path)
    events = recorder.events
    if tenant is not None or shard is not None or chain is not None:
        events = filter_events(events, tenant=tenant, shard=shard, chain=chain)
    header = {"format": TRACE_FORMAT, "version": TRACE_VERSION, "events": len(events)}
    tmp = target + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(encode_value(event), sort_keys=True) + "\n")
        footer = {"metrics": encode_value(recorder.metrics.state_dict())}
        fh.write(json.dumps(footer, sort_keys=True) + "\n")
    os.replace(tmp, target)
    return len(events)


def read_jsonl(path: "str | os.PathLike") -> Tuple[List[TraceEvent], MetricsRegistry]:
    """Load a :func:`export_jsonl` file back into events + metrics.

    Raises:
        SnapshotError: On a missing, truncated, or malformed trace file.
    """
    source = os.fspath(path)
    if not os.path.exists(source):
        raise SnapshotError(f"trace file {source} does not exist")
    with open(source) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise SnapshotError(f"trace file {source} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"trace file {source} has a corrupt header") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise SnapshotError(f"trace file {source} is not a {TRACE_FORMAT} file")
    if header.get("version") != TRACE_VERSION:
        raise SnapshotError(
            f"trace file {source} has version {header.get('version')!r}; "
            f"this build reads version {TRACE_VERSION}"
        )
    events: List[TraceEvent] = []
    metrics = MetricsRegistry()
    saw_footer = False
    for raw in lines[1:]:
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"trace file {source} has a corrupt line") from exc
        if isinstance(record, dict):
            if "metrics" not in record:
                raise SnapshotError(f"trace file {source} has a malformed footer")
            metrics.load_state(decode_value(record["metrics"]))
            saw_footer = True
            continue
        decoded = decode_value(record)
        if not isinstance(decoded, TraceEvent):
            raise SnapshotError(f"trace file {source} holds a non-event line: {decoded!r}")
        events.append(decoded)
    if len(events) != header.get("events"):
        raise SnapshotError(
            f"trace file {source} is truncated: header promises "
            f"{header.get('events')} events, found {len(events)}"
        )
    if not saw_footer:
        raise SnapshotError(f"trace file {source} is truncated: missing metrics footer")
    return events, metrics


def _lane_of(event: TraceEvent) -> Tuple[str, str]:
    """Map an event to its timeline lane: chain, else shard, else tenant."""
    attrs = event.attrs
    if "chain" in attrs:
        return ("chain", str(attrs["chain"]))
    if "shard" in attrs:
        return ("shard", str(attrs["shard"]))
    if "tenant" in attrs:
        return ("tenant", str(attrs["tenant"]))
    return ("interface", "api")


def export_chrome_trace(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    path: "Optional[str | os.PathLike]" = None,
    *,
    tenant: Optional[str] = None,
    shard: Optional[int] = None,
    chain: Optional[int] = None,
) -> dict:
    """Render events in Chrome ``trace_event`` JSON (Perfetto-ready).

    Spans become ``ph="X"`` complete events and instantaneous marks
    ``ph="i"`` instants; one thread lane per chain/shard/tenant (named
    via ``ph="M"`` metadata), timestamps in microseconds of simulated
    time.  Returns the document; also writes it to ``path`` when given.
    ``tenant`` / ``shard`` / ``chain`` slice the timeline to matching
    lanes via :func:`filter_events`.
    """
    events = _events_of(source)
    if tenant is not None or shard is not None or chain is not None:
        events = filter_events(events, tenant=tenant, shard=shard, chain=chain)
    lanes: Dict[Tuple[str, str], int] = {}
    rows: List[dict] = []
    for event in events:
        lane = _lane_of(event)
        tid = lanes.get(lane)
        if tid is None:
            tid = lanes[lane] = len(lanes) + 1
        row = {
            "name": event.name,
            "pid": 1,
            "tid": tid,
            "ts": event.ts * 1e6,
            "args": dict(event.attrs, seq=event.seq),
        }
        if event.dur > 0.0:
            row["ph"] = "X"
            row["dur"] = event.dur * 1e6
        else:
            row["ph"] = "i"
            row["s"] = "t"
        rows.append(row)
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro simulated run"},
        }
    ]
    for (kind, label), tid in lanes.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"{kind} {label}"},
            }
        )
    document = {"traceEvents": meta + rows, "displayTimeUnit": "ms"}
    if path is not None:
        target = os.fspath(path)
        tmp = target + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(document, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, target)
    return document
