"""Deterministic structured event traces over the simulated clocks.

A :class:`TraceRecorder` is the collection point every instrumented layer
(:class:`~repro.interface.api.RestrictedSocialAPI`,
:class:`~repro.walks.scheduler.EventDrivenWalkers`,
:class:`~repro.planning.planner.DispatchPlanner`,
:class:`~repro.fleet.provider.ShardedProvider`,
:class:`~repro.service.service.SamplingService`) writes into when — and
only when — a recorder is attached.  The hooks are zero-allocation
no-ops otherwise: every instrumented hot path guards with
``if self._recorder is not None`` before constructing a single object,
exactly like the fleet's existing ``trace_dispatches`` flag.

Events are spans on *simulated* time: each carries the timestamp of the
clock owning its layer (the interface's :class:`SimulatedClock` for
``query``/``cache`` events, the scheduler's event time for
``walk_step``/``burst_dispatch``/``prefetch_*``, the service clock for
``tenant_tick``/``hibernate``/``wake``), a simulated duration, and
chain/tenant/shard/engine attributes.  Because every clock is
deterministic, two identical runs produce byte-identical traces — which
is what makes a trace a *checkable* artifact: replaying it must
reproduce the §II-B bill exactly (see :mod:`repro.obs.audit`).

The recorder rides snapshots: :class:`TraceEvent` registers with the
PR-2 codec, and ``RestrictedSocialAPI.state_dict`` embeds the attached
recorder's state, so a checkpointed in-flight trace resumes bit-for-bit
in a fresh process.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.datastore.snapshot import register_codec
from repro.obs.metrics import MetricsRegistry

#: Canonical event names the instrumented layers emit.
EVENT_QUERY = "query"
EVENT_REFUSAL = "refusal"
EVENT_LIMITER_WAIT = "limiter_wait"
EVENT_WALK_STEP = "walk_step"
EVENT_BURST_DISPATCH = "burst_dispatch"
EVENT_ADMISSION_WAIT = "admission_wait"
EVENT_PREFETCH_ISSUE = "prefetch_issue"
EVENT_PREFETCH_LAND = "prefetch_land"
EVENT_FETCH = "shard_fetch"
EVENT_RETRY = "retry"
EVENT_TENANT_TICK = "tenant_tick"
EVENT_HIBERNATE = "hibernate"
EVENT_WAKE = "wake"
EVENT_SAMPLE = "sample"
EVENT_SLO_BREACH = "slo_breach"


@dataclasses.dataclass
class TraceEvent:
    """One span on a simulated timeline.

    Deliberately *not* frozen: a frozen dataclass pays one
    ``object.__setattr__`` per field on construction, and events are
    built on the billed-fetch path — treat instances as immutable by
    convention instead.

    Attributes:
        seq: Recorder-assigned sequence number (total order of emission,
            which timestamps alone cannot give — layers run on distinct
            simulated clocks).
        name: Event kind (one of the ``EVENT_*`` constants).
        ts: Simulated start time on the emitting layer's clock.
        dur: Simulated duration (0.0 for instantaneous marks).
        attrs: Chain/tenant/shard/engine/user attributes.
    """

    seq: int
    name: str
    ts: float
    dur: float
    attrs: dict


class TraceRecorder:
    """Append-only event sink plus a live :class:`MetricsRegistry`.

    One recorder can serve a whole stack — interface, scheduler, planner,
    fleet, and service hooks all write into the same event list, so the
    exported timeline interleaves layers by emission order.

    Attributes:
        metrics: The registry instrumented layers stream counters,
            gauges, and simulated-time series into.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._events: List[TraceEvent] = []
        self._seq = 0
        self._clock_hint = 0.0
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def events(self) -> List[TraceEvent]:
        """All recorded events, in emission order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def record(self, name: str, ts: float, dur: float = 0.0, **attrs) -> TraceEvent:
        """Append one event and return it."""
        event = TraceEvent(seq=self._seq, name=name, ts=ts, dur=dur, attrs=attrs)
        self._seq += 1
        self._events.append(event)
        return event

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a metrics counter — the event-free hot-lane hook.

        Cache hits on ``fetch_seq`` use this instead of :meth:`record`:
        a counter increment keeps the recorder-on overhead within the
        CI-gated 10% budget on the serial walk microbench, and the
        reconciliation audit only needs hit/miss *counts*, not spans.
        """
        self.metrics.counter(name).inc(amount)

    def hint_clock(self, ts: float) -> None:
        """Publish the current simulated time for clockless layers.

        :class:`~repro.fleet.provider.ShardedProvider` owns no clock —
        the interface stamps the time just before delegating a fetch, so
        the fleet's ``shard_fetch``/``retry`` events land at the exact
        simulated instant the interface issued them.
        """
        self._clock_hint = ts

    @property
    def hinted_clock(self) -> float:
        """The most recently hinted simulated time."""
        return self._clock_hint

    def events_named(self, *names: str) -> List[TraceEvent]:
        """All events whose name is in ``names``, in emission order."""
        wanted = frozenset(names)
        return [event for event in self._events if event.name in wanted]

    def summary(self) -> dict:
        """Event counts by name plus the metrics counters — a quick look."""
        by_name: dict = {}
        for event in self._events:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        return {
            "events": len(self._events),
            "by_name": by_name,
            "counters": dict(self.metrics.snapshot()["counters"]),
        }

    def state_dict(self) -> dict:
        """Codec-safe full state: events, sequence, hint, metrics."""
        return {
            "seq": self._seq,
            "clock_hint": self._clock_hint,
            "events": tuple(self._events),
            "metrics": self.metrics.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` payload, replacing all state."""
        self._seq = state["seq"]
        self._clock_hint = state.get("clock_hint", 0.0)
        self._events = list(state["events"])
        self.metrics.load_state(state.get("metrics", {}))


register_codec(
    "x:trace-event",
    TraceEvent,
    lambda event: {
        "seq": event.seq,
        "name": event.name,
        "ts": event.ts,
        "dur": event.dur,
        "attrs": dict(event.attrs),
    },
    lambda payload: TraceEvent(**payload),
)
