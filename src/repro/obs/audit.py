"""Trace reconciliation: replay the event log against the §II-B bill.

A trace is only worth trusting if it is *complete*: every billed query,
every refusal, every shard round trip must appear, or the timeline lies
about what the run cost.  This module replays a recorded (or re-read)
event stream and re-derives the bill from events alone:

* ``query_cost`` — the §II-B measure — is the number of distinct users
  across ``query`` and ``refusal`` events (a refusal is billed once,
  exactly like a served query; cache hits emit no event and cost
  nothing);
* ``latency_spent`` is the sum of the ``latency`` attribute over
  ``query`` events, accumulated in emission order so the float total is
  bit-identical to the interface's own serial accumulation;
* cache hits/misses come from the recorder's counters (the hot cache
  lane is counter-only by design — see
  :meth:`~repro.obs.trace.TraceRecorder.count`);
* per-shard books re-derive from ``shard_fetch`` / ``retry`` /
  ``burst_dispatch`` / ``prefetch_issue`` events.

Every check compares against the live accounting
(:class:`~repro.interface.telemetry.InterfaceTelemetry` or any object
with the same fields — the module never imports the interface layer at
runtime, so ``repro.obs`` stays import-light) and returns a list of
human-readable mismatch strings.  An empty list *is* the audit passing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    EVENT_BURST_DISPATCH,
    EVENT_FETCH,
    EVENT_PREFETCH_ISSUE,
    EVENT_QUERY,
    EVENT_REFUSAL,
    TraceEvent,
    TraceRecorder,
)

__all__ = ["reconcile_interface", "reconcile_fleet", "reconcile_run"]


def _split(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    metrics: Optional[MetricsRegistry],
) -> tuple:
    if isinstance(source, TraceRecorder):
        return list(source.events), metrics if metrics is not None else source.metrics
    return list(source), metrics


def _matches_tenant(event: TraceEvent, tenant: Optional[str]) -> bool:
    if tenant is None:
        return True
    return event.attrs.get("tenant") == tenant


def reconcile_interface(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    telemetry,
    *,
    metrics: Optional[MetricsRegistry] = None,
    tenant: Optional[str] = None,
) -> List[str]:
    """Re-derive one interface's bill from events; list every mismatch.

    Args:
        source: A recorder, or the event list a trace file read back.
        telemetry: The live accounting to check against — an
            :class:`~repro.interface.telemetry.InterfaceTelemetry` or
            any object with ``query_cost`` / ``latency_spent`` /
            ``cache_hits`` / ``cache_misses`` fields (duck-typed).
        metrics: The registry holding the cache counters.  Defaults to
            the recorder's own when ``source`` is a recorder; required
            when replaying a bare event list read from a file.
        tenant: Restrict the replay to one tenant's events and read the
            ``tenant.<label>.*`` counters instead of ``interface.*`` —
            how a shared service trace is audited per tenant.

    Returns:
        Mismatch descriptions; empty when the trace reproduces the bill.
    """
    events, metrics = _split(source, metrics)
    if metrics is None:
        raise ValueError("replaying a bare event list needs the metrics registry")
    billed = set()
    latency = 0.0
    for event in events:
        if not _matches_tenant(event, tenant):
            continue
        if event.name == EVENT_QUERY:
            billed.add(event.attrs["user"])
            latency += event.attrs["latency"]
        elif event.name == EVENT_REFUSAL:
            billed.add(event.attrs["user"])
    problems: List[str] = []
    if len(billed) != telemetry.query_cost:
        problems.append(
            f"query_cost: events bill {len(billed)} unique users, "
            f"interface billed {telemetry.query_cost}"
        )
    if latency != telemetry.latency_spent:
        problems.append(
            f"latency_spent: events sum to {latency!r}, "
            f"interface spent {telemetry.latency_spent!r}"
        )
    prefix = "interface" if tenant is None else f"tenant.{tenant}"
    hits = metrics.counter_value(prefix + ".cache_hits")
    misses = metrics.counter_value(prefix + ".cache_misses")
    if hits != telemetry.cache_hits:
        problems.append(
            f"cache_hits: counter says {hits}, interface served {telemetry.cache_hits}"
        )
    if misses != telemetry.cache_misses:
        problems.append(
            f"cache_misses: counter says {misses}, "
            f"interface consulted the provider {telemetry.cache_misses} times"
        )
    return problems


def reconcile_fleet(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    shards: Dict[int, object],
) -> List[str]:
    """Re-derive per-shard books from events; list every mismatch.

    Args:
        source: A recorder or event list covering the fleet's fetches.
        shards: The live per-shard breakdown —
            ``InterfaceTelemetry.shards`` or any mapping of shard index
            to an object with ``queries`` / ``latency_spent`` /
            ``retries`` / ``disrupted`` / ``bursts`` / ``prefetched``
            fields.  ``max_in_flight`` is deliberately not replayed:
            burst depth is a high-water mark of scheduler state, not a
            billing quantity.

    Returns:
        Mismatch descriptions; empty when the trace reproduces the books.
    """
    events, _ = _split(source, None)
    queries: Dict[int, int] = {}
    latency: Dict[int, float] = {}
    retries: Dict[int, int] = {}
    disrupted: Dict[int, int] = {}
    bursts: Dict[int, int] = {}
    prefetched: Dict[int, int] = {}
    for event in events:
        if event.name == EVENT_FETCH:
            shard = event.attrs["shard"]
            queries[shard] = queries.get(shard, 0) + 1
            if not event.attrs.get("refused"):
                latency[shard] = latency.get(shard, 0.0) + event.attrs["latency"]
                extra = max(0, event.attrs["attempts"] - 1)
                if extra:
                    retries[shard] = retries.get(shard, 0) + extra
                if event.attrs.get("disrupted"):
                    disrupted[shard] = disrupted.get(shard, 0) + 1
        elif event.name == EVENT_BURST_DISPATCH:
            shard = event.attrs["shard"]
            bursts[shard] = bursts.get(shard, 0) + 1
        elif event.name == EVENT_PREFETCH_ISSUE:
            shard = event.attrs["shard"]
            prefetched[shard] = prefetched.get(shard, 0) + event.attrs.get("fetches", 1)
    problems: List[str] = []
    for shard in sorted(shards):
        row = shards[shard]
        checks = (
            ("queries", queries.get(shard, 0), row.queries),
            ("latency_spent", latency.get(shard, 0.0), row.latency_spent),
            ("retries", retries.get(shard, 0), row.retries),
            ("disrupted", disrupted.get(shard, 0), row.disrupted),
            ("bursts", bursts.get(shard, 0), row.bursts),
            ("prefetched", prefetched.get(shard, 0), row.prefetched),
        )
        for field, replayed, booked in checks:
            if replayed != booked:
                problems.append(
                    f"shard {shard} {field}: events replay to {replayed!r}, "
                    f"books say {booked!r}"
                )
    stray = set(queries) | set(bursts) | set(prefetched)
    for shard in sorted(stray - set(shards)):
        problems.append(f"shard {shard}: events mention a shard the books never saw")
    return problems


def reconcile_run(
    source: Union[TraceRecorder, Iterable[TraceEvent]],
    telemetry,
    *,
    metrics: Optional[MetricsRegistry] = None,
    tenant: Optional[str] = None,
) -> List[str]:
    """Full audit: interface bill plus per-shard books in one call.

    The shard books are only replayed when ``telemetry.shards`` is set
    and no ``tenant`` filter is active (shard books belong to the shared
    fleet; per-tenant shard attribution lives in the books' ``tenants``
    column, audited by the service-level tests directly).
    """
    problems = reconcile_interface(source, telemetry, metrics=metrics, tenant=tenant)
    shards = getattr(telemetry, "shards", None)
    if shards is not None and tenant is None:
        problems.extend(reconcile_fleet(source, shards))
    return problems
