"""Traced reference run: record, export, and audit one skewed fleet.

The other drivers answer the paper's questions; this one answers the
operator's — *what exactly happened, and does the timeline add up?*  It
runs a seeded multi-tenant workload over a deliberately skewed fleet
with one :class:`~repro.obs.trace.TraceRecorder` wired through every
layer (interface → scheduler → planner → fleet → service), then:

* reconciles the trace against each tenant's §II-B bill and the shared
  fleet's per-shard books (:mod:`repro.obs.audit`) — the run *fails*
  when any event is missing or double-counted;
* exports the event log as codec-exact JSONL
  (:func:`~repro.obs.export.export_jsonl`) and as a Chrome
  ``trace_event`` timeline that opens directly in Perfetto
  (https://ui.perfetto.dev) with one lane per chain/shard/tenant.

The trace is deterministic: same seed, same events, byte for byte.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.compose import FleetSpec, ProviderSpec, StackConfig, WalkSpec
from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.interface.telemetry import collect_telemetry
from repro.obs import (
    TraceRecorder,
    export_chrome_trace,
    export_jsonl,
    reconcile_fleet,
    reconcile_interface,
)
from repro.service import SamplingService


@dataclasses.dataclass
class ObsTraceResult:
    """Everything one traced reference run produced.

    Attributes:
        dataset: Network label.
        num_tenants: Concurrent tenants in the traced workload.
        num_samples: Samples each cold tenant requested (the hot tenant
            asks for ``hot_skew`` times as many).
        events: Total events the recorder captured.
        events_by_name: Event counts keyed by event name.
        query_cost_by_tenant: Each tenant's §II-B bill.
        problems: Reconciliation mismatches — empty means the trace
            reproduces every bill and every shard book exactly.
        jsonl_path: Where the JSONL event log was written (``None`` when
            export was skipped).
        chrome_path: Where the Perfetto timeline was written (``None``
            when export was skipped).
    """

    dataset: str
    num_tenants: int
    num_samples: int
    events: int
    events_by_name: Dict[str, int]
    query_cost_by_tenant: Dict[str, int]
    problems: List[str]
    jsonl_path: Optional[str] = None
    chrome_path: Optional[str] = None

    def __str__(self) -> str:
        lines = [
            f"traced run — {self.num_tenants} tenants on {self.dataset}: "
            f"{self.events} events, audit "
            + ("clean" if not self.problems else f"FAILED ({len(self.problems)})"),
        ]
        for name in sorted(self.events_by_name):
            lines.append(f"  {name:>16}: {self.events_by_name[name]}")
        for tenant in sorted(self.query_cost_by_tenant):
            lines.append(
                f"  tenant {tenant}: {self.query_cost_by_tenant[tenant]} unique queries"
            )
        for problem in self.problems:
            lines.append(f"  MISMATCH: {problem}")
        if self.jsonl_path:
            lines.append(f"  event log: {self.jsonl_path}")
        if self.chrome_path:
            lines.append(f"  timeline:  {self.chrome_path}  (open in ui.perfetto.dev)")
        return "\n".join(lines)


def run_obs_trace(
    network: SocialNetwork,
    num_tenants: int = 3,
    num_samples: int = 40,
    hot_skew: float = 4.0,
    num_shards: int = 3,
    seed: int = 0,
    jsonl_path: Optional[str] = None,
    chrome_path: Optional[str] = None,
    export_tenant: Optional[str] = None,
    export_shard: Optional[int] = None,
    export_chain: Optional[int] = None,
) -> ObsTraceResult:
    """Run, record, audit, and (optionally) export one traced workload.

    Args:
        network: Dataset to sample.
        num_tenants: Concurrent tenants (first one is the hot tenant).
        num_samples: Samples per cold tenant.
        hot_skew: Hot tenant's request size as a multiple of a cold one's.
        num_shards: Shared fleet size; shard weights are deliberately
            skewed so the timeline shows an uneven fleet.
        seed: Master seed — the trace is a pure function of it.
        jsonl_path: When given, write the codec-exact JSONL event log.
        chrome_path: When given, write the Perfetto ``trace_event`` file.
        export_tenant: Slice the exports to one tenant's events
            (:func:`~repro.obs.export.filter_events`); the audit always
            runs over the full trace.
        export_shard: Slice the exports to one shard's events.
        export_chain: Slice the exports to one chain's events.

    Raises:
        ExperimentError: When the trace fails reconciliation — an
            unaccounted event means the timeline cannot be trusted.
    """
    if num_tenants < 1:
        raise ExperimentError("a traced run needs at least one tenant")
    weights = tuple(2.0 ** (-i) for i in range(num_shards))
    recorder = TraceRecorder()
    service = SamplingService(
        network,
        fleet=FleetSpec(
            num_shards=num_shards,
            seed=seed * 7 + 3,
            weights=weights,
            shard_latency_spread=1.0,
            provider=ProviderSpec(latency_distribution="constant", latency_scale=0.5),
        ),
        recorder=recorder,
    )
    tenants = [f"t{i}" for i in range(num_tenants)]
    for i, tenant in enumerate(tenants):
        service.register(
            tenant,
            StackConfig(
                walk=WalkSpec(
                    engine="mhrw" if i % 2 else "srw",
                    chains=2,
                    seed=seed * 1_009 + i,
                )
            ),
        )
        hot = i == 0
        service.request(tenant, round(num_samples * hot_skew) if hot else num_samples)
    service.run_pending()

    problems: List[str] = []
    costs: Dict[str, int] = {}
    shards = None
    for tenant in tenants:
        telemetry = collect_telemetry(service.tenant(tenant).stack.api)
        costs[tenant] = telemetry.query_cost
        problems.extend(reconcile_interface(recorder, telemetry, tenant=tenant))
        shards = telemetry.shards
    if shards is not None:
        problems.extend(reconcile_fleet(recorder, shards))
    if problems:
        raise ExperimentError(
            "trace failed reconciliation: " + "; ".join(problems)
        )

    slices = {
        "tenant": export_tenant,
        "shard": export_shard,
        "chain": export_chain,
    }
    if jsonl_path is not None:
        export_jsonl(recorder, jsonl_path, **slices)
    if chrome_path is not None:
        export_chrome_trace(recorder, chrome_path, **slices)
    return ObsTraceResult(
        dataset=network.name,
        num_tenants=num_tenants,
        num_samples=num_samples,
        events=len(recorder),
        events_by_name=recorder.summary()["by_name"],
        query_cost_by_tenant=costs,
        problems=problems,
        jsonl_path=jsonl_path,
        chrome_path=chrome_path,
    )
