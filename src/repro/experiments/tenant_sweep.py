"""Tenant sweep: tenant count × hot-tenant skew × fairness on/off.

The fleet and history sweeps measure one crawl at a time.  This driver
measures the **service layer** (PR 6): many tenants sampling the same
network through one shared fleet and one shared neighborhood cache,
with a deliberately skewed workload — one hot tenant requesting
``skew``× the samples of everyone else on ``hot_chains`` chains.

Each cell runs twice: fairness on (deficit round-robin over simulated
fleet occupancy) and fairness off (first-come-first-served
run-to-completion, the hot tenant registered first).  Fair admission
must come at equal-or-lower total §II-B cost — the shared cache means
admission order can nudge who pays for a fetch and even wiggle the
walks by a step, but interleaving must never make the fleet *more*
expensive overall — and the driver asserts it.  What fairness buys
shows up in ``max_ratio``: the worst tenant's p95 per-sample pace
over its fair share, bounded under round-robin and unbounded under
FCFS, where every cold tenant pays the hot tenant's whole run.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.compose import FleetSpec, ProviderSpec, StackConfig, WalkSpec
from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.service import SamplingService


@dataclasses.dataclass(frozen=True)
class TenantSweepRow:
    """One (tenant count, skew, fairness) cell of the sweep.

    Attributes:
        num_tenants: Concurrent tenants in the cell.
        skew: Hot tenant's request size as a multiple of a cold tenant's.
        fairness: Whether deficit-round-robin admission was on.
        total_samples: Samples delivered across all tenants.
        total_query_cost: Summed §II-B bill — asserted equal-or-lower
            under fair admission than under FCFS for each
            (tenants, skew) pair.
        clock: Simulated fleet occupancy when the last request finished.
        fair_share: The per-sample pace a perfect round-robin would give
            every tenant (``num_tenants * clock / total_samples``).
        max_ratio: Worst tenant's p95 per-sample pace over ``fair_share``.
        hot_ratio: The hot tenant's ratio (it trades pace for volume).
        shared_cache_hits: Queries the cross-tenant cache served free.
    """

    num_tenants: int
    skew: float
    fairness: bool
    total_samples: int
    total_query_cost: int
    clock: float
    fair_share: float
    max_ratio: float
    hot_ratio: float
    shared_cache_hits: int


@dataclasses.dataclass
class TenantSweepResult:
    """Everything one tenant sweep produced.

    Attributes:
        dataset: Network label.
        num_samples: Samples per cold tenant (the hot one asks for
            ``skew`` times as many).
        quantum: Deficit-round-robin quantum (simulated seconds).
        rows: One :class:`TenantSweepRow` per swept cell.
    """

    dataset: str
    num_samples: int
    quantum: float
    rows: List[TenantSweepRow]

    def __str__(self) -> str:
        lines = [
            f"tenant sweep — {self.num_samples} samples per cold tenant "
            f"on {self.dataset} (quantum {self.quantum:g}s)",
            "  {:>7} {:>5} {:>8} {:>8} {:>9} {:>10} {:>9} {:>9}".format(
                "tenants", "skew", "fair", "queries", "clock", "fair share", "max", "hot"
            ),
        ]
        for row in self.rows:
            lines.append(
                "  {:>7} {:>5.1f} {:>8} {:>8} {:>9.1f} {:>10.4f} {:>8.2f}x {:>8.2f}x".format(
                    row.num_tenants,
                    row.skew,
                    "drr" if row.fairness else "fcfs",
                    row.total_query_cost,
                    row.clock,
                    row.fair_share,
                    row.max_ratio,
                    row.hot_ratio,
                )
            )
        return "\n".join(lines)


def run_tenant_sweep(
    network: SocialNetwork,
    tenant_counts: Sequence[int] = (4, 8),
    skews: Sequence[float] = (4.0, 10.0),
    num_samples: int = 40,
    hot_chains: int = 4,
    cold_chains: int = 2,
    quantum: float = 0.5,
    num_shards: int = 4,
    latency_scale: float = 0.5,
    seed: int = 0,
) -> TenantSweepResult:
    """Sweep multi-tenant workloads under both admission policies.

    For every (tenant count, skew) pair the identical tenant fleet —
    same configs, same seeds, same requests — runs once with fairness on
    and once with it off, and fair admission must not raise the total
    §II-B bill (the shared cache lets order shift a few queries between
    tenants, never upward in aggregate).

    Args:
        network: Dataset to sample.
        tenant_counts: Concurrent tenant counts to sweep.
        skews: Hot-tenant request multipliers.
        num_samples: Samples each cold tenant requests.
        hot_chains: Chain count of the hot tenant's walk spec.
        cold_chains: Chain count of every cold tenant's walk spec.
        quantum: Deficit-round-robin quantum (simulated seconds).
        num_shards: Shared fleet size.
        latency_scale: Uniform per-shard latency scale (simulated s).
        seed: Master seed (fleet streams and every tenant's walks
            derive from it).

    Raises:
        ExperimentError: On invalid sizes, or when fair admission bills
            more §II-B cost than FCFS for the same cell.
    """
    if min(hot_chains, cold_chains) < 2:
        raise ExperimentError("every tenant needs at least two chains")
    # Chain-divisible request sizes mean every chain runs exactly its
    # quota, making each tenant's visited set independent of admission
    # order — a short final chain would otherwise be *picked* by event
    # order, wiggling the §II-B bill between the two policies.
    num_samples = (num_samples // cold_chains) * cold_chains
    if num_samples <= 0:
        raise ExperimentError("num_samples must be at least the cold chain count")

    # Constant latency keeps every fetch's *provider* duration independent
    # of the cross-tenant dispatch order (random draws would consume shard
    # RNG streams in admission order).  The residual cost wiggle between
    # admission policies is the shared cache itself: whether a tenant
    # finds a user pre-warmed — and therefore steps instantly — depends
    # on who ran first, so walks can diverge by a step or two.
    fleet_spec = FleetSpec(
        num_shards=num_shards,
        seed=seed * 7 + 3,
        provider=ProviderSpec(
            latency_distribution="constant", latency_scale=latency_scale
        ),
    )

    def run_cell(num_tenants: int, skew: float, fairness: bool):
        service = SamplingService(
            network, fleet=fleet_spec, fairness=fairness, quantum=quantum
        )
        for i in range(num_tenants):
            hot = i == 0
            service.register(
                f"t{i}",
                StackConfig(
                    walk=WalkSpec(
                        engine="srw",
                        chains=hot_chains if hot else cold_chains,
                        seed=seed * 1_009 + i,
                    )
                ),
            )
        hot_samples = max(1, round(num_samples * skew / hot_chains)) * hot_chains
        for i in range(num_tenants):
            service.request(f"t{i}", hot_samples if i == 0 else num_samples)
        service.run_pending()
        return service.fairness_report()

    rows: List[TenantSweepRow] = []
    for num_tenants in tenant_counts:
        for skew in skews:
            baseline_cost = None
            for fairness in (True, False):
                report = run_cell(num_tenants, skew, fairness)
                if fairness:
                    baseline_cost = report["total_query_cost"]
                elif baseline_cost > report["total_query_cost"]:
                    raise ExperimentError(
                        f"fair admission raised the §II-B bill for "
                        f"{num_tenants} tenants (skew {skew}): "
                        f"{baseline_cost} vs {report['total_query_cost']} under FCFS"
                    )
                tenants = report["tenants"]
                rows.append(
                    TenantSweepRow(
                        num_tenants=num_tenants,
                        skew=skew,
                        fairness=fairness,
                        total_samples=report["total_samples"],
                        total_query_cost=report["total_query_cost"],
                        clock=report["clock"],
                        fair_share=report["fair_share"],
                        max_ratio=report["max_ratio"],
                        hot_ratio=tenants["t0"]["ratio"],
                        shared_cache_hits=sum(
                            row.get("cache_hits", 0) for row in tenants.values()
                        ),
                    )
                )
    return TenantSweepResult(
        dataset=network.name,
        num_samples=num_samples,
        quantum=quantum,
        rows=rows,
    )
