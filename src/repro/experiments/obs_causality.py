"""Causal profiler driver: critical path, attribution, SLOs, trace diff.

:mod:`repro.experiments.obs_trace` proves the timeline adds up;
this driver explains it.  :func:`run_obs_critical_path` runs a seeded
multi-tenant workload over a deliberately skewed fleet with live SLO
watchers attached, then walks every tenant's causal critical path and
attributes 100% of the service's simulated wall-clock to exclusive wait
categories (:mod:`repro.obs.causality`) — failing loudly unless the
tiling reconciles bit-for-bit against the run clock and each tenant's
latency book.

:func:`run_obs_tracediff` runs the canonical regression pair — the same
stack with the prefetch planner on and off — and prints
:meth:`~repro.obs.diff.TraceDiff.explain`: the wall-clock delta,
its category movers, and the dominant causal driver (planner prefetch,
for this pair, by construction).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.compose import (
    FleetSpec,
    PlannerSpec,
    ProviderSpec,
    StackConfig,
    WalkSpec,
    build_stack,
)
from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.interface.telemetry import collect_telemetry
from repro.obs import (
    SLOWatcher,
    TraceDiff,
    TraceRecorder,
    attribute_service,
    cache_hit_rate_slo,
    diff_traces,
    export_jsonl,
    reconcile_attribution,
    reconcile_service,
    retry_rate_slo,
    shard_in_flight_slo,
    tenant_pace_slo,
)
from repro.service import SamplingService


@dataclasses.dataclass
class ObsCriticalPathResult:
    """What one causally profiled multi-tenant run decomposed into.

    Attributes:
        dataset: Network label.
        num_tenants: Concurrent tenants in the workload.
        num_samples: Samples each cold tenant requested.
        clock: The service's final simulated clock.
        quanta_by_tenant: Outer tiling — each tenant's share of the
            service clock, summed from its quantum segments.
        categories_by_tenant: Inner tiling — each tenant's own
            wall-clock split into exclusive critical-path categories.
        counts_by_tenant: Structural counters (actions, free cache-hit
            steps, prefetches, critical-path segments) per tenant.
        breaches: ``(slo, ts, value)`` for every SLO breach the watcher
            recorded, in emission order.
        problems: Reconciliation mismatches — empty means the tilings
            meet the clock and the latency books bit-for-bit.
        jsonl_path: Where the traced event log went (``None`` = skipped).
    """

    dataset: str
    num_tenants: int
    num_samples: int
    clock: float
    quanta_by_tenant: Dict[str, float]
    categories_by_tenant: Dict[str, Dict[str, float]]
    counts_by_tenant: Dict[str, Dict[str, int]]
    breaches: List[Tuple[str, float, float]]
    problems: List[str]
    jsonl_path: Optional[str] = None

    def __str__(self) -> str:
        lines = [
            f"critical path — {self.num_tenants} tenants on {self.dataset}: "
            f"clock {self.clock:.3f}s, attribution "
            + ("reconciled" if not self.problems else f"FAILED ({len(self.problems)})"),
        ]
        for tenant in sorted(self.quanta_by_tenant):
            lines.append(
                f"  tenant {tenant}: {self.quanta_by_tenant[tenant]:.3f}s of the clock"
            )
            categories = self.categories_by_tenant[tenant]
            for category in sorted(categories, key=categories.get, reverse=True):
                lines.append(f"    {category:>16}: {categories[category]:.3f}s")
            counts = self.counts_by_tenant[tenant]
            lines.append(
                "    {:>16}: {} actions, {} free cache-hit steps, "
                "{} path segments".format(
                    "structure",
                    counts["actions"],
                    counts["free_steps"],
                    counts["path_segments"],
                )
            )
        if self.breaches:
            for slo, ts, value in self.breaches:
                lines.append(f"  SLO breach: {slo} = {value:.4f} at t={ts:.3f}s")
        else:
            lines.append("  SLO breaches: none")
        for problem in self.problems:
            lines.append(f"  MISMATCH: {problem}")
        if self.jsonl_path:
            lines.append(f"  event log: {self.jsonl_path}")
        return "\n".join(lines)


def run_obs_critical_path(
    network: SocialNetwork,
    num_tenants: int = 3,
    num_samples: int = 30,
    hot_skew: float = 3.0,
    num_shards: int = 3,
    seed: int = 0,
    pace_ceiling: float = 0.5,
    jsonl_path: Optional[str] = None,
) -> ObsCriticalPathResult:
    """Profile one skewed multi-tenant run down to causal categories.

    Args:
        network: Dataset to sample.
        num_tenants: Concurrent tenants (first one is the hot tenant).
        num_samples: Samples per cold tenant.
        hot_skew: Hot tenant's request size as a multiple of a cold one's.
        num_shards: Shared fleet size; shard weights skew 2x per shard
            and the latency spread is on, so the critical path has real
            structure to find.
        seed: Master seed — attribution is a pure function of it.
        pace_ceiling: p95 seconds-per-sample SLO ceiling for the hot
            tenant (deliberately tight so the driver demonstrates a
            breach timeline on the default workload).
        jsonl_path: When given, write the traced event log (breach
            events included) as codec-exact JSONL.

    Raises:
        ExperimentError: When any tiling fails to reconcile — a gap or
            overlap means the causal account cannot be trusted.
    """
    if num_tenants < 1:
        raise ExperimentError("a profiled run needs at least one tenant")
    weights = tuple(2.0 ** (-i) for i in range(num_shards))
    recorder = TraceRecorder()
    service = SamplingService(
        network,
        fleet=FleetSpec(
            num_shards=num_shards,
            seed=seed * 7 + 3,
            weights=weights,
            shard_latency_spread=1.0,
            provider=ProviderSpec(
                latency_distribution="uniform",
                latency_scale=0.5,
                failure_rate=0.1,
                max_attempts=6,
            ),
        ),
        recorder=recorder,
    )
    tenants = [f"t{i}" for i in range(num_tenants)]
    watcher = SLOWatcher(
        recorder,
        [
            tenant_pace_slo(tenants[0], pace_ceiling),
            cache_hit_rate_slo(0.5, min_count=10),
            shard_in_flight_slo(0, 4.0),
            retry_rate_slo(0.25, min_count=10),
        ],
    )
    service.set_watcher(watcher)
    for i, tenant in enumerate(tenants):
        service.register(
            tenant,
            StackConfig(
                walk=WalkSpec(
                    engine="mhrw" if i % 2 else "srw",
                    chains=2,
                    seed=seed * 1_009 + i,
                ),
                planner=PlannerSpec(lookahead=2) if i % 2 == 0 else None,
            ),
        )
        hot = i == 0
        service.request(tenant, round(num_samples * hot_skew) if hot else num_samples)
    service.run_pending()

    attribution = attribute_service(recorder)
    problems = list(reconcile_service(attribution))
    for tenant in tenants:
        telemetry = collect_telemetry(service.tenant(tenant).stack.api)
        inner = attribution.per_tenant[tenant]
        problems.extend(
            f"tenant {tenant}: {problem}"
            for problem in reconcile_attribution(inner, telemetry=telemetry)
        )
    if problems:
        raise ExperimentError(
            "attribution failed reconciliation: " + "; ".join(problems)
        )

    if jsonl_path is not None:
        export_jsonl(recorder, jsonl_path)
    return ObsCriticalPathResult(
        dataset=network.name,
        num_tenants=num_tenants,
        num_samples=num_samples,
        clock=attribution.clock,
        quanta_by_tenant=dict(attribution.by_tenant),
        categories_by_tenant={
            tenant: dict(inner.categories)
            for tenant, inner in attribution.per_tenant.items()
        },
        counts_by_tenant={
            tenant: dict(inner.counts)
            for tenant, inner in attribution.per_tenant.items()
        },
        breaches=[
            (event.attrs["slo"], event.ts, event.attrs["value"])
            for event in watcher.breaches
        ],
        problems=problems,
        jsonl_path=jsonl_path,
    )


def run_obs_tracediff(
    network: SocialNetwork,
    num_samples: int = 60,
    num_shards: int = 3,
    seed: int = 0,
    lookahead: int = 2,
) -> TraceDiff:
    """Diff the canonical regression pair: planner off vs planner on.

    Runs one seeded single-tenant stack twice — identical except for the
    prefetch planner — and returns the causal diff.  By construction the
    dominant driver is planner prefetching: the planner-on run converts
    provider round trips into free cache-hit steps and finishes sooner.
    The diff's ``cost_delta`` reports any §II-B divergence (a tail-end
    speculative prefetch can bill a user the plain walk never reaches);
    the reference seed is cost-neutral and the benchmark gate holds it
    there.
    """

    def _run(planner: Optional[PlannerSpec]) -> TraceRecorder:
        recorder = TraceRecorder()
        stack = build_stack(
            StackConfig(
                fleet=FleetSpec(
                    num_shards=num_shards,
                    seed=seed * 7 + 3,
                    weights=tuple(2.0 ** (-i) for i in range(num_shards)),
                    shard_latency_spread=1.0,
                    provider=ProviderSpec(
                        latency_distribution="constant", latency_scale=0.5
                    ),
                ),
                walk=WalkSpec(engine="srw", chains=4, seed=seed * 1_009 + 11),
                planner=planner,
            ),
            network,
            recorder=recorder,
        )
        stack.run(num_samples=num_samples)
        return recorder

    return diff_traces(
        _run(None),
        _run(PlannerSpec(lookahead=lookahead)),
        label_a="planner-off",
        label_b="planner-on",
    )
