"""Figure 10: theoretical mixing time on the latent space model.

Sweeps the node count (50–75 in the paper) of latent space graphs (2-D,
nodes uniform in [0,4]×[0,5], r = 0.7, α = ∞) and reports five series:

* **Original** — SLEM mixing time of the sampled graph;
* **Theoretical bound** — Theorem 6's conservative prediction: the
  original mixing time divided by the squared conductance amplification
  ``1/(1 − P(d ≤ √0.75·r))²`` (mixing time scales as 1/Φ², eq. 5);
* **MTO_Both / MTO_RM / MTO_RP** — SLEM mixing time of the overlay an
  actual MTO walk (run to full coverage) built with both rules, removal
  only, and replacement only.

Expected shape: all MTO variants sit at or below Original, MTO_Both lowest;
the theoretical bound is conservative (between Original and MTO_Both).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

from repro.analysis.spectral import mixing_time_from_slem
from repro.core.mto import MTOSampler
from repro.experiments.runner import run_to_coverage
from repro.generators.latent_space import latent_space_graph, removable_edge_probability
from repro.graph.adjacency import Graph
from repro.graph.traversal import is_connected, largest_connected_component
from repro.interface.api import RestrictedSocialAPI
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.tables import format_series

#: MTO configurations plotted by the paper.
VARIANTS = {
    "MTO_Both": {"enable_removal": True, "enable_replacement": True},
    "MTO_RM": {"enable_removal": True, "enable_replacement": False},
    "MTO_RP": {"enable_removal": False, "enable_replacement": True},
}


@dataclasses.dataclass
class Fig10Result:
    """Mixing-time series over the node-count sweep."""

    node_counts: Sequence[int]
    series: Dict[str, List[float]]

    def __str__(self) -> str:
        return format_series(
            self.series,
            x_label="n",
            x_values=list(self.node_counts),
            title=(
                "Figure 10 — theoretical mixing time (SLEM) on the latent "
                "space model, [0,4]x[0,5], r=0.7"
            ),
        )


def _connected_latent_graph(n: int, r: float, area, rng) -> Graph:
    """Sample latent graphs until the LCC carries ≥ 80% of the nodes.

    Small latent space graphs are frequently disconnected; the paper's
    mixing times are only defined on a connected graph, so we follow the
    standard practice of analyzing the largest connected component.
    """
    for _ in range(50):
        sample = latent_space_graph(n, area=area, r=r, seed=rng)
        lcc = largest_connected_component(sample.graph)
        if lcc.num_nodes >= max(3, int(0.8 * n)):
            return lcc
    return lcc  # best effort after 50 tries


def _overlay_mixing_time(graph: Graph, variant_kwargs: dict, rng) -> float:
    """Run MTO to coverage on ``graph`` and measure its overlay's SLEM time."""
    api = RestrictedSocialAPI(graph)
    start = sorted(graph.nodes())[0]
    mto = MTOSampler(api, start=start, seed=rng, **variant_kwargs)
    run_to_coverage(mto, graph.num_nodes)
    overlay = mto.overlay.known_subgraph()
    if not is_connected(overlay):
        overlay = largest_connected_component(overlay)
    if overlay.num_nodes < 2:
        return math.inf
    return mixing_time_from_slem(overlay)


def run_fig10(
    node_counts: Sequence[int] = (50, 55, 60, 65, 70, 75),
    r: float = 0.7,
    area=(4.0, 5.0),
    runs: int = 3,
    seed: RngLike = 0,
) -> Fig10Result:
    """Run the Figure 10 sweep.

    Args:
        node_counts: Graph sizes (paper: 50–75).
        r: Latent connection radius (paper: 0.7).
        area: Latent rectangle (paper: [0,4]×[0,5]).
        runs: Graph samples averaged per point.
        seed: Master randomness.
    """
    rng = ensure_rng(seed)
    amplification = 1.0 / (1.0 - removable_edge_probability(r, area))
    series: Dict[str, List[float]] = {
        "Original": [],
        "Theoretical": [],
        "MTO_Both": [],
        "MTO_RM": [],
        "MTO_RP": [],
    }
    for n_idx, n in enumerate(node_counts):
        acc: Dict[str, List[float]] = {k: [] for k in series}
        for run_idx in range(runs):
            run_rng = spawn_rng(rng, n_idx * 1000 + run_idx)
            graph = _connected_latent_graph(n, r, area, run_rng)
            original = mixing_time_from_slem(graph)
            acc["Original"].append(original)
            # Mixing time ∝ 1/Φ² (eq. 5), so Theorem 6's conductance
            # amplification divides the mixing time by its square.
            acc["Theoretical"].append(original / (amplification**2))
            for variant, kwargs in VARIANTS.items():
                acc[variant].append(_overlay_mixing_time(graph, kwargs, run_rng))
        for key in series:
            finite = [x for x in acc[key] if math.isfinite(x)]
            series[key].append(sum(finite) / len(finite) if finite else math.inf)
    return Fig10Result(node_counts=node_counts, series=series)
