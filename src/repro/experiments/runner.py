"""Shared experiment machinery: sampler factory and cost-at-error curves.

The paper's Figures 7 and 11(b,c) plot, per relative-error level ``e``,
"the maximum query cost for a random walk to generate an estimation with
relative error above ``e``" — i.e. how many queries a run burns before its
estimate settles within ``e`` of the truth for good.  Each point averages
20 runs.  :func:`mean_cost_at_error_curve` reproduces that pipeline from a
single sampling run per seed (the per-sample query costs recorded by the
walk make the whole curve recoverable retrospectively).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.aggregates.queries import AggregateQuery
from repro.core.estimators import estimate_curve
from repro.core.mto import MTOSampler
from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.utils.rng import ensure_rng, spawn_rng
from repro.walks.base import RandomWalkSampler
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.nbrw import NonBacktrackingWalk
from repro.walks.rj import RandomJumpWalk
from repro.walks.srw import SimpleRandomWalk

#: The four algorithms of §V-A.3.
SAMPLER_NAMES = ("SRW", "MTO", "MHRW", "RJ")

#: Additional comparators from the paper's related work (§VI): the
#: non-backtracking walk of ref. [14].  Not part of the paper's figures,
#: available for extension studies.
EXTRA_SAMPLER_NAMES = ("NBRW",)


def make_sampler(
    name: str,
    network: SocialNetwork,
    seed,
    jump_probability: float = 0.5,
    **mto_kwargs,
) -> RandomWalkSampler:
    """Instantiate one of the paper's four samplers over a fresh interface.

    Args:
        name: One of :data:`SAMPLER_NAMES`.
        network: The dataset to sample.
        seed: Randomness (start node and walk share it).
        jump_probability: RJ teleport probability (paper: 0.5).
        **mto_kwargs: Extra :class:`MTOSampler` options (e.g.
            ``enable_replacement=False`` for the Figure 10 ablations).

    Raises:
        ExperimentError: For unknown sampler names.
    """
    rng = ensure_rng(seed)
    api = network.interface()
    start = network.seed_node(rng)
    if name == "SRW":
        return SimpleRandomWalk(api, start=start, seed=rng)
    if name == "MTO":
        return MTOSampler(api, start=start, seed=rng, **mto_kwargs)
    if name == "MHRW":
        return MetropolisHastingsWalk(api, start=start, seed=rng)
    if name == "NBRW":
        return NonBacktrackingWalk(api, start=start, seed=rng)
    if name == "RJ":
        # The jump needs the global id space (paper footnote 5); the
        # simulation grants it the node list, as the paper's setup does.
        return RandomJumpWalk(
            api,
            start=start,
            id_space=sorted(network.graph.nodes()),
            jump_probability=jump_probability,
            seed=rng,
        )
    raise ExperimentError(f"unknown sampler {name!r}; expected one of {SAMPLER_NAMES}")


def cost_at_error(
    curve: Sequence[Tuple[int, float]], truth: float, error: float
) -> Optional[int]:
    """Query cost after which the estimate stays within ``error`` of truth.

    Scans the (query_cost, estimate) curve from the end: the returned cost
    is the first checkpoint of the final all-within-``error`` suffix —
    the paper's "maximum query cost with relative error above the value".

    Args:
        curve: Output of :func:`repro.core.estimators.estimate_curve`.
        truth: Ground-truth aggregate value (non-zero).
        error: Relative error level.

    Returns:
        The query cost, or ``None`` if the run never settles within
        ``error`` (censored).
    """
    if truth == 0:
        raise ExperimentError("ground truth is zero; relative error undefined")
    settle: Optional[int] = None
    for qc, est in reversed(curve):
        if abs(est - truth) / abs(truth) > error:
            break
        settle = qc
    return settle


def mean_cost_at_error_curve(
    network: SocialNetwork,
    query: AggregateQuery,
    truth: float,
    sampler_name: str,
    errors: Sequence[float],
    runs: int = 20,
    num_samples: int = 2000,
    seed=0,
    censor_cost: Optional[int] = None,
    **sampler_kwargs,
) -> List[float]:
    """Mean query cost per error level, averaged over ``runs`` walks.

    Args:
        network: Dataset.
        query: Aggregate to estimate.
        truth: Ground truth (or converged value, for online datasets).
        sampler_name: One of :data:`SAMPLER_NAMES`.
        errors: Relative error grid (the figure's x axis).
        runs: Independent walks per point (paper: 20).
        num_samples: Samples collected per walk (bounds the curve length).
        seed: Master seed; per-run streams are derived from it.
        censor_cost: Cost charged to runs that never settle within an
            error level; defaults to each run's final query cost.
        **sampler_kwargs: Passed to :func:`make_sampler`.

    Returns:
        One mean cost per entry of ``errors``.
    """
    if runs <= 0:
        raise ExperimentError("runs must be positive")
    rng = ensure_rng(seed)
    per_error_costs: List[List[float]] = [[] for _ in errors]
    for run_idx in range(runs):
        run_rng = spawn_rng(rng, run_idx)
        sampler = make_sampler(sampler_name, network, run_rng, **sampler_kwargs)
        result = sampler.run(num_samples=num_samples)
        curve = estimate_curve(query, result.samples, sampler.api)
        final_cost = result.query_cost
        for i, err in enumerate(errors):
            cost = cost_at_error(curve, truth, err)
            if cost is None:
                cost = censor_cost if censor_cost is not None else final_cost
            per_error_costs[i].append(float(cost))
    return [sum(costs) / len(costs) for costs in per_error_costs]


def run_to_coverage(
    sampler: RandomWalkSampler,
    node_count: int,
    max_steps: int = 2_000_000,
) -> int:
    """Walk until the sampler has queried every node at least once.

    The Figure 10 / §V-A.3 protocol: "we continuously ran our MTO-Sampler
    until it hits each node at least once — so we could actually obtain the
    topology of the overlay graph."

    Args:
        sampler: Any walk sampler.
        node_count: Total nodes in the (connected) graph.
        max_steps: Safety bound.

    Returns:
        Steps taken.

    Raises:
        ExperimentError: If coverage was not reached within ``max_steps``.
    """
    steps = 0
    while sampler.api.query_cost < node_count:
        if steps >= max_steps:
            raise ExperimentError(
                f"coverage not reached after {max_steps} steps "
                f"({sampler.api.query_cost}/{node_count} nodes)"
            )
        sampler.step()
        steps += 1
    return steps
