"""Shared experiment machinery: sampler factory and cost-at-error curves.

The paper's Figures 7 and 11(b,c) plot, per relative-error level ``e``,
"the maximum query cost for a random walk to generate an estimation with
relative error above ``e``" — i.e. how many queries a run burns before its
estimate settles within ``e`` of the truth for good.  Each point averages
20 runs.  :func:`mean_cost_at_error_curve` reproduces that pipeline from a
single sampling run per seed (the per-sample query costs recorded by the
walk make the whole curve recoverable retrospectively).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.aggregates.queries import AggregateQuery
from repro.core.estimators import estimate_curve
from repro.core.mto import MTOSampler
from repro.datasets.standins import SocialNetwork
from repro.datastore.snapshot import KeyValueBackend, SnapshotBackend
from repro.errors import ExperimentError
from repro.interface.session import SamplingSession
from repro.utils.rng import ensure_rng, spawn_rng
from repro.walks.base import RandomWalkSampler
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.nbrw import NonBacktrackingWalk
from repro.walks.rj import RandomJumpWalk
from repro.walks.srw import SimpleRandomWalk

#: The four algorithms of §V-A.3.
SAMPLER_NAMES = ("SRW", "MTO", "MHRW", "RJ")

#: Additional comparators from the paper's related work (§VI): the
#: non-backtracking walk of ref. [14].  Not part of the paper's figures,
#: available for extension studies.
EXTRA_SAMPLER_NAMES = ("NBRW",)


def make_sampler(
    name: str,
    network: SocialNetwork,
    seed,
    jump_probability: float = 0.5,
    **mto_kwargs,
) -> RandomWalkSampler:
    """Instantiate one of the paper's four samplers over a fresh interface.

    Args:
        name: One of :data:`SAMPLER_NAMES`.
        network: The dataset to sample.
        seed: Randomness (start node and walk share it).
        jump_probability: RJ teleport probability (paper: 0.5).
        **mto_kwargs: Extra :class:`MTOSampler` options (e.g.
            ``enable_replacement=False`` for the Figure 10 ablations).

    Raises:
        ExperimentError: For unknown sampler names.
    """
    rng = ensure_rng(seed)
    api = network.interface()
    start = network.seed_node(rng)
    if name == "SRW":
        return SimpleRandomWalk(api, start=start, seed=rng)
    if name == "MTO":
        return MTOSampler(api, start=start, seed=rng, **mto_kwargs)
    if name == "MHRW":
        return MetropolisHastingsWalk(api, start=start, seed=rng)
    if name == "NBRW":
        return NonBacktrackingWalk(api, start=start, seed=rng)
    if name == "RJ":
        # The jump needs the global id space (paper footnote 5); the
        # simulation grants it the node list, as the paper's setup does.
        return RandomJumpWalk(
            api,
            start=start,
            id_space=sorted(network.graph.nodes()),
            jump_probability=jump_probability,
            seed=rng,
        )
    raise ExperimentError(f"unknown sampler {name!r}; expected one of {SAMPLER_NAMES}")


def cost_at_error(
    curve: Sequence[Tuple[int, float]], truth: float, error: float
) -> Optional[int]:
    """Query cost after which the estimate stays within ``error`` of truth.

    Scans the (query_cost, estimate) curve from the end: the returned cost
    is the first checkpoint of the final all-within-``error`` suffix —
    the paper's "maximum query cost with relative error above the value".

    Args:
        curve: Output of :func:`repro.core.estimators.estimate_curve`.
        truth: Ground-truth aggregate value (non-zero).
        error: Relative error level.

    Returns:
        The query cost, or ``None`` if the run never settles within
        ``error`` (censored).
    """
    if truth == 0:
        raise ExperimentError("ground truth is zero; relative error undefined")
    settle: Optional[int] = None
    for qc, est in reversed(curve):
        if abs(est - truth) / abs(truth) > error:
            break
        settle = qc
    return settle


def mean_cost_at_error_curve(
    network: SocialNetwork,
    query: AggregateQuery,
    truth: float,
    sampler_name: str,
    errors: Sequence[float],
    runs: int = 20,
    num_samples: int = 2000,
    seed=0,
    censor_cost: Optional[int] = None,
    **sampler_kwargs,
) -> List[float]:
    """Mean query cost per error level, averaged over ``runs`` walks.

    Args:
        network: Dataset.
        query: Aggregate to estimate.
        truth: Ground truth (or converged value, for online datasets).
        sampler_name: One of :data:`SAMPLER_NAMES`.
        errors: Relative error grid (the figure's x axis).
        runs: Independent walks per point (paper: 20).
        num_samples: Samples collected per walk (bounds the curve length).
        seed: Master seed; per-run streams are derived from it.
        censor_cost: Cost charged to runs that never settle within an
            error level; defaults to each run's final query cost.
        **sampler_kwargs: Passed to :func:`make_sampler`.

    Returns:
        One mean cost per entry of ``errors``.
    """
    if runs <= 0:
        raise ExperimentError("runs must be positive")
    rng = ensure_rng(seed)
    per_error_costs: List[List[float]] = [[] for _ in errors]
    for run_idx in range(runs):
        run_rng = spawn_rng(rng, run_idx)
        sampler = make_sampler(sampler_name, network, run_rng, **sampler_kwargs)
        result = sampler.run(num_samples=num_samples)
        curve = estimate_curve(query, result.samples, sampler.api)
        final_cost = result.query_cost
        for i, err in enumerate(errors):
            cost = cost_at_error(curve, truth, err)
            if cost is None:
                cost = censor_cost if censor_cost is not None else final_cost
            per_error_costs[i].append(float(cost))
    return [sum(costs) / len(costs) for costs in per_error_costs]


@dataclasses.dataclass
class WarmStartResult:
    """Query-cost accounting of a checkpointed-and-resumed walk vs cold start.

    Attributes:
        sampler_name: Walk engine used.
        dataset: Network label.
        checkpoint_step: Step at which the first process checkpointed.
        continuation_steps: Steps walked by the resumed process.
        cost_at_checkpoint: Billed queries when the snapshot was taken.
        uninterrupted_cost: Billed queries of one uninterrupted walk over
            ``checkpoint_step + continuation_steps`` steps.
        resumed_continuation_cost: Billed queries the *resumed* process
            spent on its continuation (its final cost minus the restored
            spend).
        cold_restart_cost: What a process that lost its state would pay to
            reach the same walk position: the full uninterrupted cost.
        identical_sequence: Whether the resumed walk reproduced the
            uninterrupted walk's node sequence exactly.
        identical_cost: Whether final unique-query counts matched exactly.
    """

    sampler_name: str
    dataset: str
    checkpoint_step: int
    continuation_steps: int
    cost_at_checkpoint: int
    uninterrupted_cost: int
    resumed_continuation_cost: int
    cold_restart_cost: int
    identical_sequence: bool
    identical_cost: bool

    @property
    def savings(self) -> int:
        """Billed queries a warm start avoids vs restarting cold."""
        return self.cold_restart_cost - self.resumed_continuation_cost

    def __str__(self) -> str:
        lines = [
            f"warm start — {self.sampler_name} on {self.dataset} "
            f"(checkpoint @ step {self.checkpoint_step}, +{self.continuation_steps} steps)",
            f"  uninterrupted walk cost        : {self.uninterrupted_cost:>6} unique queries",
            f"  cost already paid at checkpoint: {self.cost_at_checkpoint:>6}",
            f"  resumed continuation cost      : {self.resumed_continuation_cost:>6}",
            f"  cold-restart cost              : {self.cold_restart_cost:>6}",
            f"  queries saved by resuming      : {self.savings:>6}",
            f"  bit-for-bit sequence match     : {self.identical_sequence}",
            f"  bit-for-bit billing match      : {self.identical_cost}",
        ]
        return "\n".join(lines)


def run_warm_start(
    network: SocialNetwork,
    sampler_name: str = "MTO",
    checkpoint_step: int = 300,
    continuation_steps: int = 300,
    seed: int = 0,
    backend: Optional[SnapshotBackend] = None,
    **sampler_kwargs,
) -> WarmStartResult:
    """The warm-start scenario: checkpoint, resume fresh, compare to cold.

    Three walks are driven over fresh interfaces of the same network:

    1. **Uninterrupted** — ``checkpoint_step + continuation_steps`` steps
       in one process; the reference node sequence and §II-B query cost.
    2. **Interrupted** — the same walk (same seed) stopped at
       ``checkpoint_step`` and snapshotted through ``backend``.
    3. **Resumed** — freshly constructed interface + sampler, state loaded
       from the snapshot, walked ``continuation_steps`` further, as a new
       process would after a crash or a deliberate shutdown.

    The resumed walk must replay the uninterrupted one bit-for-bit; the
    result quantifies what the snapshot is worth: a cold restart re-pays
    the whole budget, a warm start only pays for nodes the walk had not
    seen before the checkpoint.

    Args:
        network: Dataset to sample.
        sampler_name: One of :data:`SAMPLER_NAMES`.
        checkpoint_step: Steps before the snapshot.
        continuation_steps: Steps after the resume.
        seed: Master seed (start node + walk draws).
        backend: Snapshot persistence; an in-memory
            :class:`~repro.datastore.snapshot.KeyValueBackend` by default.
        **sampler_kwargs: Extra :func:`make_sampler` options.

    Raises:
        ExperimentError: For non-positive step counts.
    """
    if checkpoint_step <= 0 or continuation_steps <= 0:
        raise ExperimentError("checkpoint_step and continuation_steps must be positive")
    if backend is None:
        backend = KeyValueBackend()

    # 1. the uninterrupted reference
    reference = make_sampler(sampler_name, network, seed, **sampler_kwargs)
    reference_nodes = [reference.step() for _ in range(checkpoint_step + continuation_steps)]
    uninterrupted_cost = reference.api.query_cost

    # 2. the interrupted walk, checkpointed at checkpoint_step
    first = make_sampler(sampler_name, network, seed, **sampler_kwargs)
    first_nodes = [first.step() for _ in range(checkpoint_step)]
    session = SamplingSession(first.api, first, backend)
    session.save()
    cost_at_checkpoint = first.api.query_cost

    # 3. the resumed walk: fresh interface + sampler, state loaded on top
    resumed = make_sampler(sampler_name, network, seed, **sampler_kwargs)
    resumed_session = SamplingSession(resumed.api, resumed, backend)
    resumed_session.resume()
    resumed_nodes = [resumed.step() for _ in range(continuation_steps)]

    return WarmStartResult(
        sampler_name=sampler_name,
        dataset=network.name,
        checkpoint_step=checkpoint_step,
        continuation_steps=continuation_steps,
        cost_at_checkpoint=cost_at_checkpoint,
        uninterrupted_cost=uninterrupted_cost,
        resumed_continuation_cost=resumed.api.query_cost - cost_at_checkpoint,
        cold_restart_cost=uninterrupted_cost,
        identical_sequence=first_nodes + resumed_nodes == reference_nodes,
        identical_cost=resumed.api.query_cost == uninterrupted_cost,
    )


def run_to_coverage(
    sampler: RandomWalkSampler,
    node_count: int,
    max_steps: int = 2_000_000,
) -> int:
    """Walk until the sampler has queried every node at least once.

    The Figure 10 / §V-A.3 protocol: "we continuously ran our MTO-Sampler
    until it hits each node at least once — so we could actually obtain the
    topology of the overlay graph."

    Args:
        sampler: Any walk sampler.
        node_count: Total nodes in the (connected) graph.
        max_steps: Safety bound.

    Returns:
        Steps taken.

    Raises:
        ExperimentError: If coverage was not reached within ``max_steps``.
    """
    steps = 0
    while sampler.api.query_cost < node_count:
        if steps >= max_steps:
            raise ExperimentError(
                f"coverage not reached after {max_steps} steps "
                f"({sampler.api.query_cost}/{node_count} nodes)"
            )
        sampler.step()
        steps += 1
    return steps
