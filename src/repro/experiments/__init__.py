"""Experiment drivers — one per table/figure in the paper.

Every driver takes size/run-count parameters so the same code scales from
benchmark-smoke size to full figure reproduction, returns a structured
result object, and renders the same rows/series the paper reports via
``str(result)``.

| Paper artifact | Driver |
|---|---|
| Running example (§II–III) | :func:`repro.experiments.running_example.run_running_example` |
| Table I | :func:`repro.experiments.table1.run_table1` |
| Figure 7 (a–c) | :func:`repro.experiments.fig7.run_fig7` |
| Figure 8 | :func:`repro.experiments.fig8.run_fig8` |
| Figure 9 | :func:`repro.experiments.fig9.run_fig9` |
| Figure 10 | :func:`repro.experiments.fig10.run_fig10` |
| Figure 11 (a–c) | :func:`repro.experiments.fig11.run_fig11` |
"""

from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.fig11 import Fig11Result, run_fig11
from repro.experiments.fleet import (
    FleetSweepResult,
    FleetSweepRow,
    run_fleet_sweep,
)
from repro.experiments.history_sweep import (
    HistorySweepResult,
    HistorySweepRow,
    run_history_sweep,
)
from repro.experiments.latency_sweep import (
    LatencySweepResult,
    LatencySweepRow,
    run_latency_sweep,
)
from repro.experiments.obs_causality import (
    ObsCriticalPathResult,
    run_obs_critical_path,
    run_obs_tracediff,
)
from repro.experiments.obs_trace import ObsTraceResult, run_obs_trace
from repro.experiments.runner import (
    SAMPLER_NAMES,
    WarmStartResult,
    cost_at_error,
    make_sampler,
    mean_cost_at_error_curve,
    run_warm_start,
)
from repro.experiments.running_example import RunningExampleResult, run_running_example
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.tenant_sweep import (
    TenantSweepResult,
    TenantSweepRow,
    run_tenant_sweep,
)
from repro.experiments.warm_history import (
    WarmHistoryEngineRow,
    WarmHistoryResult,
    WarmStartReport,
    run_warm_history,
)

__all__ = [
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "Fig11Result",
    "run_fig11",
    "FleetSweepResult",
    "FleetSweepRow",
    "run_fleet_sweep",
    "HistorySweepResult",
    "HistorySweepRow",
    "run_history_sweep",
    "LatencySweepResult",
    "LatencySweepRow",
    "run_latency_sweep",
    "ObsTraceResult",
    "run_obs_trace",
    "ObsCriticalPathResult",
    "run_obs_critical_path",
    "run_obs_tracediff",
    "SAMPLER_NAMES",
    "WarmStartResult",
    "cost_at_error",
    "make_sampler",
    "mean_cost_at_error_curve",
    "run_warm_start",
    "RunningExampleResult",
    "run_running_example",
    "Table1Result",
    "run_table1",
    "TenantSweepResult",
    "TenantSweepRow",
    "run_tenant_sweep",
    "WarmHistoryEngineRow",
    "WarmHistoryResult",
    "WarmStartReport",
    "run_warm_history",
]
