"""Warm history: per-engine predictive planning + cross-run warm starts.

Two measurements ride one driver, both downstream of ISSUE 8's tentpole
(universal prefetch prediction + persistent history):

1. **Per-engine planned speedup at equal cost.**  Every registered walk
   engine — SRW's single-draw fast lane, MHRW's acceptance-test replay,
   NBRW's predecessor-exclusion replay, MTO's overlay-branch replay —
   now implements ``predict_next_fetch``, so the dispatch planner's
   predictive prefetch works for all of them.  For each engine the
   driver runs the same chains over the same skewed batch-coalescing
   fleet twice: planner-free (the baseline) and with a cost-neutral
   planner (``lookahead`` > 0, ``speculation=0``).  Predictions are the
   walks' real future fetches, so the planned run must bill the
   *identical* §II-B unique-query set — asserted — while the simulated
   wall-clock drops (fetches ride open bursts' spare admission slots).

2. **Warm-started second runs.**  A first crawl records its paid-for
   knowledge into a :class:`~repro.datastore.history.HistoryStore`; a
   *different* crawl (new seeds) then runs twice — cold, and warm-started
   from that artifact.  The warm run must deliver the bit-for-bit
   identical per-chain samples (history is knowledge, not behaviour:
   the walk's RNG never sees whether a hit was pre-paid) while spending
   strictly fewer §II-B queries, with the savings attributed through the
   interface's ``warm_hits`` counter.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.compose import FleetSpec, ProviderSpec, build_fleet
from repro.core.mto import MTOSampler
from repro.datasets.standins import SocialNetwork
from repro.datastore.history import HistoryStore
from repro.datastore.kv import KeyValueStore
from repro.datastore.snapshot import KeyValueBackend
from repro.errors import ExperimentError
from repro.interface.api import RestrictedSocialAPI
from repro.planning import DispatchPlanner
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.nbrw import NonBacktrackingWalk
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk

#: Engine axis: every walk engine with an RNG-replay fetch predictor.
ENGINES = {
    "srw": SimpleRandomWalk,
    "mhrw": MetropolisHastingsWalk,
    "nbrw": NonBacktrackingWalk,
    "mto": MTOSampler,
}


@dataclasses.dataclass(frozen=True)
class WarmHistoryEngineRow:
    """One engine's baseline-vs-planned cell.

    Attributes:
        engine: Registry name (``srw``/``mhrw``/``nbrw``/``mto``).
        query_cost: Billed unique queries — identical between the
            baseline and planned runs (asserted).
        baseline_wall: Planner-free simulated makespan.
        planned_wall: Cost-neutral planned simulated makespan.
        speedup: ``baseline_wall / planned_wall``.
        prefetch_issued: Predictive fetches that rode open bursts.
        prefetch_used: Prefetches later consumed by a chain's step.
        prediction_hits: Replays that resolved a concrete future fetch.
        prediction_misses: Replays that answered ``None``.
    """

    engine: str
    query_cost: int
    baseline_wall: float
    planned_wall: float
    speedup: float
    prefetch_issued: int
    prefetch_used: int
    prediction_hits: int
    prediction_misses: int


@dataclasses.dataclass(frozen=True)
class WarmStartReport:
    """The cold-vs-warm second-run comparison.

    Attributes:
        recorded_users: Neighborhoods the first crawl's artifact carries.
        cold_cost: §II-B queries of the second crawl run cold.
        warm_cost: The same crawl warm-started from the artifact.
        savings: ``cold_cost - warm_cost`` (strictly positive; asserted).
        warm_users: Users preloaded into the warm run's interface.
        warm_hits: Hits the warm run served from preloaded knowledge.
        bit_for_bit: Whether cold and warm delivered identical per-chain
            sample sequences (asserted ``True``).
    """

    recorded_users: int
    cold_cost: int
    warm_cost: int
    savings: int
    warm_users: int
    warm_hits: int
    bit_for_bit: bool


@dataclasses.dataclass
class WarmHistoryResult:
    """Everything one warm-history run produced.

    Attributes:
        dataset: Network label.
        chains: Parallel chains per run.
        num_samples: Samples collected per run.
        lookahead: Prefetch budget of the planned cells.
        rows: One :class:`WarmHistoryEngineRow` per engine.
        warm: The cross-run warm-start comparison.
    """

    dataset: str
    chains: int
    num_samples: int
    lookahead: int
    rows: List[WarmHistoryEngineRow]
    warm: WarmStartReport

    def __str__(self) -> str:
        lines = [
            f"warm history — {self.chains} chains x {self.num_samples} samples "
            f"on {self.dataset} (lookahead {self.lookahead}, speculation 0)",
            "  {:>6} {:>8} {:>12} {:>12} {:>8} {:>13} {:>13}".format(
                "engine", "queries", "base wall", "plan wall", "speedup",
                "prefetch i/u", "predict h/m",
            ),
        ]
        for row in self.rows:
            lines.append(
                "  {:>6} {:>8} {:>12.1f} {:>12.1f} {:>7.2f}x {:>13} {:>13}".format(
                    row.engine,
                    row.query_cost,
                    row.baseline_wall,
                    row.planned_wall,
                    row.speedup,
                    f"{row.prefetch_issued}/{row.prefetch_used}",
                    f"{row.prediction_hits}/{row.prediction_misses}",
                )
            )
        w = self.warm
        lines.append(
            f"  warm start: {w.recorded_users} recorded users, "
            f"cold {w.cold_cost} vs warm {w.warm_cost} queries "
            f"(saved {w.savings}; {w.warm_hits} warm hits; "
            f"bit-for-bit={w.bit_for_bit})"
        )
        return "\n".join(lines)


def _chain_nodes(run) -> List[List]:
    """Per-chain sample node sequences (warm-start's bit-for-bit probe)."""
    return [[s.node for s in chain.samples] for chain in run.per_chain]


def run_warm_history(
    network: SocialNetwork,
    engines: Sequence[str] = ("srw", "mhrw", "nbrw", "mto"),
    chains: int = 8,
    num_samples: int = 400,
    lookahead: int = 4,
    num_shards: int = 4,
    skew: float = 8.0,
    batch_cap: int = 16,
    latency_scale: float = 0.5,
    admission_interval: float = 2.0,
    latency_quantum: float = 0.5,
    seed: int = 0,
    history_store: Optional[HistoryStore] = None,
) -> WarmHistoryResult:
    """Measure per-engine planned speedups and cross-run warm-start savings.

    Args:
        network: Dataset to sample.
        engines: Engine-axis members (subset of :data:`ENGINES`).
        chains: Parallel chains (>= 2).
        num_samples: Total samples per run; rounded down to a multiple
            of ``chains``.
        lookahead: Prefetch budget of the planned cells (> 0).
        num_shards: Fleet size of every cell.
        skew: Hot-shard routing weight (1.0 = uniform).
        batch_cap: Per-shard burst size limit.
        latency_scale: Heavy-tailed latency scale of every shard stack.
        admission_interval: Seconds between round-trip admissions.
        latency_quantum: Response-latency grid of the fleet.
        seed: Master seed.
        history_store: Optional store for the warm-start phase; an
            in-memory :class:`~repro.datastore.snapshot.KeyValueBackend`
            is used when omitted (the artifact still round-trips the
            snapshot codec either way).

    Raises:
        ExperimentError: On bad parameters, an unknown engine, a planned
            run whose §II-B bill deviates from its baseline, a warm run
            that saved nothing, or a warm run that diverged from cold.
    """
    if chains < 2:
        raise ExperimentError("the scheduler needs at least two chains")
    if lookahead <= 0:
        raise ExperimentError("lookahead must be positive (0 is the baseline itself)")
    unknown = [e for e in engines if e not in ENGINES]
    if unknown:
        raise ExperimentError(f"unknown walk engines: {unknown}")
    num_samples = (num_samples // chains) * chains
    if num_samples <= 0:
        raise ExperimentError("num_samples must be at least the chain count")

    def build_cell(engine_name: str, look: int, walk_seed: int):
        weights = None
        if num_shards > 1 and skew != 1.0:
            weights = [skew] + [1.0] * (num_shards - 1)
        fleet = build_fleet(
            FleetSpec(
                num_shards=num_shards,
                seed=seed * 7 + 3,
                weights=weights,
                provider=ProviderSpec(
                    latency_distribution="heavy_tailed",
                    latency_scale=latency_scale,
                ),
                shard_latency_spread=1.0,
                admission_interval=admission_interval,
                batch_cap=batch_cap,
                latency_quantum=latency_quantum,
            ),
            network.graph,
            profiles=network.profiles,
        )
        api = RestrictedSocialAPI(fleet)
        engine = ENGINES[engine_name]
        walkers = [
            engine(api, start=network.seed_node(i), seed=walk_seed * 100_003 + i)
            for i in range(chains)
        ]
        planner = DispatchPlanner(lookahead=look, seed=seed) if look > 0 else None
        return api, planner, EventDrivenWalkers(walkers, batching=True, planner=planner)

    rows: List[WarmHistoryEngineRow] = []
    for engine_name in engines:
        _, _, baseline = build_cell(engine_name, 0, seed)
        base_run = baseline.run(num_samples=num_samples)
        _, _, planned = build_cell(engine_name, lookahead, seed)
        plan_run = planned.run(num_samples=num_samples)
        if plan_run.queries != base_run.queries:
            raise ExperimentError(
                f"{engine_name}: planning changed the §II-B bill "
                f"({plan_run.queries} vs {base_run.queries})"
            )
        planning = plan_run.planning or {}
        books: Dict[str, int] = {"hits": 0, "misses": 0}
        for engine_books in planning.get("prediction", {}).values():
            books["hits"] += engine_books.get("hits", 0)
            books["misses"] += engine_books.get("misses", 0)
        rows.append(
            WarmHistoryEngineRow(
                engine=engine_name,
                query_cost=plan_run.queries,
                baseline_wall=base_run.sim_elapsed,
                planned_wall=plan_run.sim_elapsed,
                speedup=(
                    base_run.sim_elapsed / plan_run.sim_elapsed
                    if plan_run.sim_elapsed > 0
                    else 1.0
                ),
                prefetch_issued=planning.get("prefetch_issued", 0),
                prefetch_used=planning.get("prefetch_used", 0),
                prediction_hits=books["hits"],
                prediction_misses=books["misses"],
            )
        )

    # ------------------------------------------------------------------
    # cross-run warm start: record with one crawl, warm a different one
    # ------------------------------------------------------------------
    store = history_store
    if store is None:
        store = HistoryStore(KeyValueBackend(KeyValueStore(), namespace="warm-history"))
    recorder_api, recorder_planner, recorder = build_cell("mhrw", lookahead, seed)
    recorder.run(num_samples=num_samples)
    sections = store.save(recorder_api, planner=recorder_planner)
    recorded_users = int(sections["history/meta"]["users"])

    second_seed = seed + 1  # a different crawl, not a resume
    cold_api, _, cold = build_cell("mhrw", lookahead, second_seed)
    cold_run = cold.run(num_samples=num_samples)
    warm_api, warm_planner, warm = build_cell("mhrw", lookahead, second_seed)
    warmed = store.warm(warm_api, planner=warm_planner)
    warm_run = warm.run(num_samples=num_samples)

    bit_for_bit = _chain_nodes(cold_run) == _chain_nodes(warm_run)
    if not bit_for_bit:
        raise ExperimentError(
            "warm start changed the walk: history must be knowledge, not behaviour"
        )
    savings = cold_run.queries - warm_run.queries
    if savings <= 0:
        raise ExperimentError(
            f"warm start saved nothing ({cold_run.queries} cold vs "
            f"{warm_run.queries} warm §II-B queries)"
        )
    warm_report = WarmStartReport(
        recorded_users=recorded_users,
        cold_cost=cold_run.queries,
        warm_cost=warm_run.queries,
        savings=savings,
        warm_users=warmed,
        warm_hits=warm_api.warm_hits,
        bit_for_bit=bit_for_bit,
    )
    return WarmHistoryResult(
        dataset=network.name,
        chains=chains,
        num_samples=num_samples,
        lookahead=lookahead,
        rows=rows,
        warm=warm_report,
    )
