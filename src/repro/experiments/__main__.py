"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments running_example
    python -m repro.experiments fig7  --runs 20 --scale 1.0
    python -m repro.experiments fig8  --runs 3
    python -m repro.experiments fig9
    python -m repro.experiments fig10
    python -m repro.experiments fig11
    python -m repro.experiments warmstart --scale 0.3
    python -m repro.experiments latency --scale 0.3
    python -m repro.experiments fleet --scale 0.3
    python -m repro.experiments history --scale 0.3
    python -m repro.experiments service --scale 0.3
    python -m repro.experiments warmhistory --scale 0.3
    python -m repro.experiments trace --scale 0.3
    python -m repro.experiments trace --scale 0.3 --tenant t0 --chain 1
    python -m repro.experiments causality --scale 0.3
    python -m repro.experiments tracediff --scale 0.3
    python -m repro.experiments tracediff --a base.jsonl --b cand.jsonl
    python -m repro.experiments all   --scale 0.5

Each command prints the same rows/series the paper's artifact reports.
``trace`` accepts ``--tenant`` / ``--shard`` / ``--chain`` to slice the
exported timeline to one lane; ``tracediff`` either runs the built-in
planner-on/off pair or causally diffs two previously exported JSONL
traces given ``--a`` and ``--b``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fleet_sweep,
    run_history_sweep,
    run_latency_sweep,
    run_obs_critical_path,
    run_obs_trace,
    run_obs_tracediff,
    run_running_example,
    run_table1,
    run_tenant_sweep,
    run_warm_history,
    run_warm_start,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "running_example",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "warmstart",
            "latency",
            "fleet",
            "history",
            "service",
            "warmhistory",
            "trace",
            "causality",
            "tracediff",
            "all",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset size multiplier"
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="runs per point (driver default)"
    )
    parser.add_argument(
        "--samples", type=int, default=None, help="samples per walk (driver default)"
    )
    parser.add_argument(
        "--tenant", type=str, default=None, help="trace: slice exports to one tenant"
    )
    parser.add_argument(
        "--shard", type=int, default=None, help="trace: slice exports to one shard"
    )
    parser.add_argument(
        "--chain", type=int, default=None, help="trace: slice exports to one chain"
    )
    parser.add_argument(
        "--a", type=str, default=None, help="tracediff: baseline JSONL trace"
    )
    parser.add_argument(
        "--b", type=str, default=None, help="tracediff: candidate JSONL trace"
    )
    return parser


def _load_network(seed: int, scale: float):
    from repro.datasets import load

    return load("epinions_like", seed=seed, scale=scale)


def _tracediff(args: argparse.Namespace) -> str:
    """Causal diff: two exported traces, or the built-in planner pair."""
    if (args.a is None) != (args.b is None):
        raise SystemExit("tracediff needs both --a and --b (or neither)")
    if args.a is not None:
        from repro.obs import diff_traces, read_jsonl

        events_a, _ = read_jsonl(args.a)
        events_b, _ = read_jsonl(args.b)
        diff = diff_traces(events_a, events_b, label_a=args.a, label_b=args.b)
    else:
        diff = run_obs_tracediff(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        )
    return diff.explain()


def _kw(args: argparse.Namespace, **extra) -> dict:
    kw = {"seed": args.seed, **extra}
    if args.runs is not None:
        kw["runs"] = args.runs
    if args.samples is not None:
        kw["num_samples"] = args.samples
    return kw


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the experiment(s), print the report."""
    args = _build_parser().parse_args(argv)
    jobs = {
        "table1": lambda: run_table1(seed=args.seed, scale=args.scale),
        "running_example": lambda: run_running_example(seed=args.seed),
        "fig7": lambda: run_fig7(**_kw(args, scale=args.scale)),
        "fig8": lambda: run_fig8(**_kw(args, scale=args.scale)),
        "fig9": lambda: run_fig9(**_kw(args, scale=args.scale)),
        "fig10": lambda: run_fig10(**{k: v for k, v in _kw(args).items() if k != "num_samples"}),
        "fig11": lambda: run_fig11(**_kw(args, scale=args.scale)),
        "warmstart": lambda: run_warm_start(
            _load_network(seed=args.seed, scale=args.scale), seed=args.seed
        ),
        "latency": lambda: run_latency_sweep(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "fleet": lambda: run_fleet_sweep(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "history": lambda: run_history_sweep(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "service": lambda: run_tenant_sweep(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "warmhistory": lambda: run_warm_history(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "trace": lambda: run_obs_trace(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            jsonl_path="TRACE_run.jsonl",
            chrome_path="TRACE_run.json",
            export_tenant=args.tenant,
            export_shard=args.shard,
            export_chain=args.chain,
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "causality": lambda: run_obs_critical_path(
            _load_network(seed=args.seed, scale=args.scale),
            seed=args.seed,
            jsonl_path="TRACE_causality.jsonl",
            **({"num_samples": args.samples} if args.samples is not None else {}),
        ),
        "tracediff": lambda: _tracediff(args),
    }
    names = list(jobs) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        result = jobs[name]()
        elapsed = time.time() - started
        print(result)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
