"""Figure 9: Geweke-threshold sweep on Slashdot B.

Varies the Geweke convergence threshold from 0.1 to 0.8 and reports the
sampling bias (symmetric KL) and query cost of SRW and MTO at each
setting.  Expected shape: looser thresholds cost fewer queries and yield
more bias; MTO's bias sits at or below SRW's at every threshold.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.analysis.distances import empirical_distribution, symmetric_kl
from repro.analysis.spectral import srw_stationary
from repro.convergence.geweke import GewekeDiagnostic
from repro.datasets.registry import load
from repro.experiments.runner import make_sampler
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.tables import format_series

#: The paper's threshold grid.
THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclasses.dataclass
class Fig9Result:
    """KL and query cost series over the Geweke threshold grid."""

    thresholds: Sequence[float]
    kl_srw: List[float]
    kl_mto: List[float]
    qc_srw: List[float]
    qc_mto: List[float]

    def __str__(self) -> str:
        return format_series(
            {
                "KL_SRW": self.kl_srw,
                "KL_MTO": self.kl_mto,
                "QC_SRW": self.qc_srw,
                "QC_MTO": self.qc_mto,
            },
            x_label="geweke",
            x_values=list(self.thresholds),
            title="Figure 9 — varying the Geweke threshold (Slashdot B stand-in)",
        )


def run_fig9(
    dataset: str = "slashdot_b_like",
    thresholds: Sequence[float] = THRESHOLDS,
    num_samples: int = 5000,
    runs: int = 3,
    scale: float = 1.0,
    seed: RngLike = 0,
    max_steps: int = 40_000,
) -> Fig9Result:
    """Run the Figure 9 sweep.

    Args:
        dataset: Dataset to sweep on (paper: Slashdot B).
        thresholds: Geweke thresholds (paper: 0.1–0.8).
        num_samples: Post-convergence samples per walk.
        runs: Repetitions averaged per point.
        scale: Dataset size multiplier.
        seed: Master randomness.
        max_steps: Burn-in step budget per walk.
    """
    net = load(dataset, seed=seed, scale=scale)
    ideal = srw_stationary(net.graph)
    rng = ensure_rng(seed)
    out: Dict[str, List[float]] = {"KL_SRW": [], "KL_MTO": [], "QC_SRW": [], "QC_MTO": []}
    for t_idx, threshold in enumerate(thresholds):
        for sampler_name in ("SRW", "MTO"):
            kls, costs = [], []
            for run_idx in range(runs):
                run_rng = spawn_rng(rng, t_idx * 1000 + run_idx)
                sampler = make_sampler(sampler_name, net, run_rng)
                result = sampler.run(
                    num_samples=num_samples,
                    monitor=GewekeDiagnostic(threshold=threshold),
                    max_steps=max_steps,
                )
                measured = empirical_distribution(result.nodes())
                kls.append(symmetric_kl(ideal, measured))
                costs.append(float(result.query_cost))
            out[f"KL_{sampler_name}"].append(sum(kls) / len(kls))
            out[f"QC_{sampler_name}"].append(sum(costs) / len(costs))
    return Fig9Result(
        thresholds=thresholds,
        kl_srw=out["KL_SRW"],
        kl_mto=out["KL_MTO"],
        qc_srw=out["QC_SRW"],
        qc_mto=out["QC_MTO"],
    )
