"""Figure 7: query cost vs relative error on the local datasets.

For each of the three local datasets, all four samplers (SRW, MTO, MHRW,
RJ with jump probability 0.5) estimate the average degree; each curve point
is the mean (over 20 runs) of the maximum query cost a run spends before
its estimate settles within the given relative error of the ground truth.
The paper's x axes run 0.20→0.10 (0.30→0.10 for Epinions), decreasing to
the right; we report the same grids.

Expected shape: MTO needs the fewest queries at every error level; MHRW
and RJ cost more than SRW.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.aggregates.queries import AggregateQuery, ground_truth
from repro.datasets.registry import load
from repro.experiments.runner import SAMPLER_NAMES, mean_cost_at_error_curve
from repro.utils.rng import RngLike
from repro.utils.tables import format_series

#: Error grids per dataset, mirroring the paper's axes.
ERROR_GRIDS = {
    "epinions_like": (0.30, 0.25, 0.20, 0.15, 0.10),
    "slashdot_a_like": (0.20, 0.18, 0.16, 0.14, 0.12, 0.10),
    "slashdot_b_like": (0.20, 0.18, 0.16, 0.14, 0.12, 0.10),
}


@dataclasses.dataclass
class Fig7Result:
    """Per-dataset cost-at-error series for each sampler.

    Attributes:
        datasets: Dataset name → (error grid, {sampler → mean costs}).
        truths: Dataset name → ground-truth average degree.
    """

    datasets: Dict[str, Tuple[Sequence[float], Dict[str, List[float]]]]
    truths: Dict[str, float]

    def __str__(self) -> str:
        blocks = []
        for name, (errors, series) in self.datasets.items():
            blocks.append(
                format_series(
                    series,
                    x_label="rel_error",
                    x_values=list(errors),
                    title=(
                        f"Figure 7 — {name} (avg degree truth "
                        f"{self.truths[name]:.3f}): mean query cost per error level"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_fig7(
    datasets: Sequence[str] = ("epinions_like", "slashdot_a_like", "slashdot_b_like"),
    samplers: Sequence[str] = SAMPLER_NAMES,
    runs: int = 20,
    num_samples: int = 2000,
    scale: float = 1.0,
    seed: RngLike = 0,
) -> Fig7Result:
    """Run the Figure 7 sweep.

    Args:
        datasets: Which local datasets to include.
        samplers: Which algorithms to compare.
        runs: Walks averaged per point (paper: 20).
        num_samples: Samples per walk (bounds each curve's reach).
        scale: Dataset size multiplier.
        seed: Master randomness.
    """
    out: Dict[str, Tuple[Sequence[float], Dict[str, List[float]]]] = {}
    truths: Dict[str, float] = {}
    query = AggregateQuery.average_degree()
    for ds_idx, ds_name in enumerate(datasets):
        net = load(ds_name, seed=seed, scale=scale)
        truth = ground_truth(query, net.graph)
        truths[ds_name] = truth
        errors = ERROR_GRIDS.get(ds_name, (0.20, 0.15, 0.10))
        series: Dict[str, List[float]] = {}
        for s_idx, sampler_name in enumerate(samplers):
            series[sampler_name] = mean_cost_at_error_curve(
                net,
                query,
                truth,
                sampler_name,
                errors,
                runs=runs,
                num_samples=num_samples,
                seed=(hash((ds_idx, s_idx)) & 0xFFFF) + (0 if seed is None else 1),
            )
        out[ds_name] = (errors, series)
    return Fig7Result(datasets=out, truths=truths)
