"""Figure 8: long-run KL divergence and query cost, SRW vs MTO.

For each local dataset, SRW and MTO run to Geweke convergence (threshold
0.1) and then collect a long stream of samples; the bias is the paper's
symmetric KL divergence between the empirical sampling distribution and
the ideal degree-proportional stationary distribution, and the cost is the
billed query count.

Expected shape: MTO's KL is at or below SRW's while its query cost is
lower.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.analysis.distances import empirical_distribution, symmetric_kl
from repro.analysis.spectral import srw_stationary
from repro.convergence.geweke import GewekeDiagnostic
from repro.datasets.registry import load
from repro.experiments.runner import make_sampler
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.tables import format_table


@dataclasses.dataclass
class Fig8Result:
    """KL divergence and query cost per dataset per sampler.

    Attributes:
        kl: ``(dataset, sampler) -> symmetric KL divergence``.
        query_cost: ``(dataset, sampler) -> mean billed queries``.
    """

    kl: Dict[tuple, float]
    query_cost: Dict[tuple, float]

    def __str__(self) -> str:
        datasets = sorted({d for d, _ in self.kl})
        rows = []
        for d in datasets:
            rows.append(
                (
                    d,
                    self.kl[(d, "SRW")],
                    self.kl[(d, "MTO")],
                    self.query_cost[(d, "SRW")],
                    self.query_cost[(d, "MTO")],
                )
            )
        return format_table(
            ["dataset", "KL_SRW", "KL_MTO", "QC_SRW", "QC_MTO"],
            rows,
            title="Figure 8 — long-run KL divergence and query cost (Geweke 0.1)",
        )


def run_fig8(
    datasets: Sequence[str] = ("epinions_like", "slashdot_a_like", "slashdot_b_like"),
    num_samples: int = 20_000,
    geweke_threshold: float = 0.1,
    runs: int = 3,
    scale: float = 1.0,
    seed: RngLike = 0,
    max_steps: int = 40_000,
) -> Fig8Result:
    """Run the Figure 8 comparison.

    Args:
        datasets: Local datasets to include.
        num_samples: Post-convergence samples per walk (paper: 20,000).
        geweke_threshold: Convergence threshold (paper: 0.1).
        runs: Repetitions averaged per cell.
        scale: Dataset size multiplier.
        seed: Master randomness.
        max_steps: Burn-in step budget per walk (a threshold of 0.1 on
            laptop-scale stand-ins can demand full coverage; the budget
            keeps runs bounded).
    """
    kl: Dict[tuple, float] = {}
    qc: Dict[tuple, float] = {}
    rng = ensure_rng(seed)
    for ds_name in datasets:
        net = load(ds_name, seed=seed, scale=scale)
        ideal = srw_stationary(net.graph)
        for sampler_name in ("SRW", "MTO"):
            kls, costs = [], []
            for run_idx in range(runs):
                run_rng = spawn_rng(rng, run_idx)
                sampler = make_sampler(sampler_name, net, run_rng)
                result = sampler.run(
                    num_samples=num_samples,
                    monitor=GewekeDiagnostic(threshold=geweke_threshold),
                    max_steps=max_steps,
                )
                measured = empirical_distribution(result.nodes())
                kls.append(symmetric_kl(ideal, measured))
                costs.append(float(result.query_cost))
            kl[(ds_name, sampler_name)] = sum(kls) / len(kls)
            qc[(ds_name, sampler_name)] = sum(costs) / len(costs)
    return Fig8Result(kl=kl, query_cost=qc)
