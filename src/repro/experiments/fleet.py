"""Fleet sweep: shard count × routing skew × batch cap.

The latency sweep (PR 3) quantified the win of event-driven dispatch over
lock-step rounds against *one* provider.  This driver measures the next
layer: the same chains crawling a **sharded fleet** whose shards have
their own latency models and admission limits, under the batch-coalescing
scheduler at different per-shard batch caps.  ``batch_cap=1`` is the
no-coalescing baseline — every fetch consumes its own admission slot —
so the cap axis isolates exactly what coalescing buys: same walks, same
§II-B bill (asserted), different simulated wall-clock.

The skew axis weights the first shard's share of the key space, modelling
the hot shard every real fleet has; coalescing wins the most where the
backlog is deepest, so the speedup grows with skew.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.compose import FleetSpec, ProviderSpec, build_fleet
from repro.interface.api import RestrictedSocialAPI
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk


@dataclasses.dataclass(frozen=True)
class FleetSweepRow:
    """One (shard count, skew, batch cap) cell of the sweep.

    Attributes:
        num_shards: Fleet size.
        skew: Routing weight of the hot shard (1.0 = uniform fleet).
        batch_cap: Per-shard burst size limit (1 = coalescing off).
        query_cost: Billed unique queries — identical across caps for one
            (shards, skew) pair, asserted by the driver.
        sim_wall: Simulated wall-clock makespan of the run.
        wall_per_sample: ``sim_wall`` per collected sample.
        speedup_vs_uncoalesced: Wall-clock of the ``batch_cap=1`` run over
            this run's (1.0 for the baseline row itself).
        hot_shard_share: Fraction of billed fetches the hot shard served.
        max_in_flight: Deepest burst any shard carried.
    """

    num_shards: int
    skew: float
    batch_cap: int
    query_cost: int
    sim_wall: float
    wall_per_sample: float
    speedup_vs_uncoalesced: float
    hot_shard_share: float
    max_in_flight: int


@dataclasses.dataclass
class FleetSweepResult:
    """Everything one fleet sweep produced.

    Attributes:
        dataset: Network label.
        chains: Parallel chains per run.
        num_samples: Samples collected per run (rounded to a multiple of
            ``chains`` so per-chain quotas — and therefore query costs —
            match exactly across caps).
        latency_scale: Base latency scale of the shard stacks.
        admission_interval: Per-shard seconds between round-trip
            admissions.
        rows: One :class:`FleetSweepRow` per swept cell.
    """

    dataset: str
    chains: int
    num_samples: int
    latency_scale: float
    admission_interval: float
    rows: List[FleetSweepRow]

    def __str__(self) -> str:
        lines = [
            f"fleet sweep — {self.chains} chains x {self.num_samples} samples "
            f"on {self.dataset} (scale {self.latency_scale:g}s, "
            f"admission every {self.admission_interval:g}s)",
            "  {:>6} {:>5} {:>4} {:>8} {:>13} {:>8} {:>9} {:>6}".format(
                "shards", "skew", "cap", "queries", "wall/sample", "speedup", "hot share", "depth"
            ),
        ]
        for row in self.rows:
            lines.append(
                "  {:>6} {:>5.1f} {:>4} {:>8} {:>13.4f} {:>7.2f}x {:>8.1%} {:>6}".format(
                    row.num_shards,
                    row.skew,
                    row.batch_cap,
                    row.query_cost,
                    row.wall_per_sample,
                    row.speedup_vs_uncoalesced,
                    row.hot_shard_share,
                    row.max_in_flight,
                )
            )
        return "\n".join(lines)


def run_fleet_sweep(
    network: SocialNetwork,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    skews: Sequence[float] = (1.0, 4.0),
    batch_caps: Sequence[int] = (1, 8),
    chains: int = 8,
    num_samples: int = 400,
    latency_scale: float = 0.5,
    admission_interval: float = 1.0,
    latency_quantum: float = 0.5,
    seed: int = 0,
    thinning: int = 1,
) -> FleetSweepResult:
    """Sweep fleet shapes under the batch-coalescing scheduler.

    For every (shard count, skew) pair the same chains (same seeds, same
    per-chain quotas) run once per batch cap over identically configured
    fleets, so the walks — and the billed §II-B query cost — agree
    exactly; only the simulated wall-clock differs.  Cap 1 in
    ``batch_caps`` anchors the speedup column (it is prepended when
    missing).

    Args:
        network: Dataset to sample.
        shard_counts: Fleet sizes to sweep.
        skews: Hot-shard routing weights (1.0 = uniform; ignored for
            single-shard fleets, which are always uniform).
        batch_caps: Per-shard burst size limits to sweep.
        chains: Parallel chains (>= 2).
        num_samples: Total samples per run; rounded down to a multiple of
            ``chains``.
        latency_scale: Heavy-tailed latency scale of every shard stack.
        admission_interval: Seconds between round-trip admissions at every
            shard — the contention coalescing relieves.
        latency_quantum: Response-latency grid of the fleet.
        seed: Master seed (routing, latency draws, and walk streams derive
            from it).
        thinning: Per-chain spacing between collected samples.

    Raises:
        ExperimentError: On fewer than two chains, an empty quota, or a
            query-cost mismatch between caps (which would mean the
            scheduler changed the walks, not just the timeline).
    """
    if chains < 2:
        raise ExperimentError("the scheduler needs at least two chains")
    num_samples = (num_samples // chains) * chains
    if num_samples <= 0:
        raise ExperimentError("num_samples must be at least the chain count")
    # The cap-1 run anchors every cell's speedup, so it must run first
    # regardless of where (or whether) the caller listed it.
    caps = [1] + [c for c in dict.fromkeys(batch_caps) if c != 1]

    def run_cell(num_shards: int, skew: float, cap: int):
        weights = None
        if num_shards > 1 and skew != 1.0:
            weights = [skew] + [1.0] * (num_shards - 1)
        fleet = build_fleet(
            FleetSpec(
                num_shards=num_shards,
                seed=seed * 7 + 3,
                weights=weights,
                provider=ProviderSpec(
                    latency_distribution="heavy_tailed",
                    latency_scale=latency_scale,
                ),
                shard_latency_spread=1.0,
                admission_interval=admission_interval,
                batch_cap=cap,
                latency_quantum=latency_quantum,
            ),
            network.graph,
            profiles=network.profiles,
        )
        api = RestrictedSocialAPI(fleet)
        walkers = [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=seed * 100_003 + i)
            for i in range(chains)
        ]
        return EventDrivenWalkers(walkers, batching=True).run(
            num_samples=num_samples, thinning=thinning
        )

    rows: List[FleetSweepRow] = []
    for num_shards in shard_counts:
        for skew in skews if num_shards > 1 else (1.0,):
            baseline_wall = None
            baseline_cost = None
            for cap in caps:
                run = run_cell(num_shards, skew, cap)
                if cap == 1:
                    baseline_wall = run.sim_elapsed
                    baseline_cost = run.queries
                elif run.queries != baseline_cost:
                    raise ExperimentError(
                        f"batch cap {cap} changed the §II-B bill on "
                        f"{num_shards} shards (skew {skew}): "
                        f"{run.queries} vs {baseline_cost}"
                    )
                shard_rows = run.shards or {}
                total_fetches = sum(r.queries for r in shard_rows.values()) or 1
                rows.append(
                    FleetSweepRow(
                        num_shards=num_shards,
                        skew=skew,
                        batch_cap=cap,
                        query_cost=run.queries,
                        sim_wall=run.sim_elapsed,
                        wall_per_sample=run.sim_elapsed / num_samples,
                        speedup_vs_uncoalesced=(
                            baseline_wall / run.sim_elapsed if run.sim_elapsed > 0 else 1.0
                        ),
                        hot_shard_share=shard_rows[0].queries / total_fetches
                        if shard_rows
                        else 1.0,
                        max_in_flight=max(
                            (r.max_in_flight for r in shard_rows.values()), default=0
                        ),
                    )
                )
    return FleetSweepResult(
        dataset=network.name,
        chains=chains,
        num_samples=num_samples,
        latency_scale=latency_scale,
        admission_interval=admission_interval,
        rows=rows,
    )
