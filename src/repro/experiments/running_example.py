"""The running example (§II–III): the barbell graph, step by step.

The paper threads one example through its theory sections:

* Φ(G) = 1/(C(11,2)+1) ≈ 0.018, mixing bound 14212.3·log(22.2/ε);
* after Theorem 3 removals, Φ(G*) = 0.053 (−89% mixing bound);
* after a Theorem 4 replacement, Φ(G**) = 0.105 (−97% overall).

This driver reproduces the pipeline: exact conductance of G, the removal
fixpoint G*, the replacement variant G**, a walk-built overlay (Algorithm 1
run to coverage), and the mixing-time coefficients of each.  Our strict
Theorem 3 fixpoint stalls earlier than the paper's reported Φ(G*) — removal
requires ``|N(u)∩N(v)| ≥ max(k_u,k_v) − 2``, which bounds how far the
cascade can go from any removal order — so expect Φ(G*) ≈ 0.022–0.023
rather than 0.053 (EXPERIMENTS.md discusses the gap); the *direction* of
every step (conductance never decreases, mixing bound shrinks) reproduces.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.conductance import min_conductance_exact
from repro.analysis.spectral import mixing_time_coefficient
from repro.core.mto import MTOSampler
from repro.core.overlay import build_overlay_fixpoint
from repro.experiments.runner import run_to_coverage
from repro.generators.barbell import paper_barbell
from repro.graph.traversal import is_connected, largest_connected_component
from repro.interface.api import RestrictedSocialAPI
from repro.utils.rng import RngLike
from repro.utils.tables import format_table

#: The paper's reported values, for side-by-side printing.
PAPER_VALUES = {
    "phi_g": 0.018,
    "phi_g_star": 0.053,
    "phi_g_star_star": 0.105,
    "coeff_g": 14212.3,
    "mixing_reduction_removal": 0.89,
    "mixing_reduction_overall": 0.97,
}


@dataclasses.dataclass
class RunningExampleResult:
    """Conductances and mixing coefficients along the rewiring pipeline.

    Attributes:
        phi_g: Exact Φ of the original barbell.
        phi_g_star: Φ after the Theorem 3 removal fixpoint.
        phi_g_star_star: Φ after removal + Theorem 4 replacement.
        phi_walk_overlay: Φ of the overlay an actual MTO walk built (run
            to full coverage), ``None`` if that overlay was disconnected.
        coeff_g / coeff_g_star / coeff_g_star_star: The paper's mixing
            coefficients −1/log10(1 − Φ²/2) at each stage.
    """

    phi_g: float
    phi_g_star: float
    phi_g_star_star: float
    phi_walk_overlay: Optional[float]
    coeff_g: float
    coeff_g_star: float
    coeff_g_star_star: float

    @property
    def mixing_reduction_removal(self) -> float:
        """Fractional mixing-bound cut from removals (paper: 0.89)."""
        return 1.0 - self.coeff_g_star / self.coeff_g

    @property
    def mixing_reduction_overall(self) -> float:
        """Fractional mixing-bound cut overall (paper: 0.97)."""
        return 1.0 - self.coeff_g_star_star / self.coeff_g

    def __str__(self) -> str:
        rows = [
            ("phi(G)", self.phi_g, PAPER_VALUES["phi_g"]),
            ("phi(G*) removal fixpoint", self.phi_g_star, PAPER_VALUES["phi_g_star"]),
            (
                "phi(G**) + replacement",
                self.phi_g_star_star,
                PAPER_VALUES["phi_g_star_star"],
            ),
            (
                "phi(walk overlay)",
                self.phi_walk_overlay if self.phi_walk_overlay is not None else "n/a",
                "-",
            ),
            ("mixing coeff (G)", self.coeff_g, PAPER_VALUES["coeff_g"]),
            (
                "mixing cut by removal",
                self.mixing_reduction_removal,
                PAPER_VALUES["mixing_reduction_removal"],
            ),
            (
                "mixing cut overall",
                self.mixing_reduction_overall,
                PAPER_VALUES["mixing_reduction_overall"],
            ),
        ]
        return format_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Running example — barbell graph rewiring pipeline",
        )


def run_running_example(seed: RngLike = 0, walk_overlay: bool = True) -> RunningExampleResult:
    """Reproduce the §II–III running example end to end.

    Args:
        seed: Randomness for fixpoint edge order and the coverage walk.
        walk_overlay: Also run Algorithm 1 to coverage and measure its
            overlay (adds a few seconds of exact-conductance enumeration).
    """
    g = paper_barbell()
    phi_g = min_conductance_exact(g).conductance

    g_star = build_overlay_fixpoint(g, seed=seed)
    phi_star = min_conductance_exact(g_star).conductance

    g_star_star = build_overlay_fixpoint(g, use_replacement=True, seed=seed)
    phi_star_star = min_conductance_exact(g_star_star).conductance

    phi_walk: Optional[float] = None
    if walk_overlay:
        api = RestrictedSocialAPI(g)
        mto = MTOSampler(api, start=0, seed=seed)
        run_to_coverage(mto, g.num_nodes)
        overlay = mto.overlay.known_subgraph()
        if is_connected(overlay) and overlay.num_nodes == g.num_nodes:
            phi_walk = min_conductance_exact(overlay).conductance
        else:
            lcc = largest_connected_component(overlay)
            if 2 <= lcc.num_nodes <= 22:
                phi_walk = min_conductance_exact(lcc).conductance

    return RunningExampleResult(
        phi_g=phi_g,
        phi_g_star=phi_star,
        phi_g_star_star=phi_star_star,
        phi_walk_overlay=phi_walk,
        coeff_g=mixing_time_coefficient(phi_g),
        coeff_g_star=mixing_time_coefficient(phi_star),
        coeff_g_star_star=mixing_time_coefficient(phi_star_star),
    )
