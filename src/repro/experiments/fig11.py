"""Figure 11: the Google Plus experiment (online network protocol).

The live network has no ground truth, so the paper's two-step protocol is
replicated on the Google-Plus-like stand-in:

1. run each sampler until its Geweke monitor fires and keep collecting a
   long sample stream; the final estimate is the **converged value**
   (presumptive truth);
2. replay the per-sample cost records to produce (a) the estimated average
   degree as a function of query cost, and (b, c) the mean query cost per
   relative-error level — relative to the converged value — for the
   average degree and the average self-description length.

Expected shape: MTO's estimate track stabilizes earlier with smaller
variance (11a) and costs fewer queries at every error level (11b, 11c).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.aggregates.queries import AggregateQuery
from repro.core.estimators import estimate_curve
from repro.datasets.registry import load
from repro.experiments.runner import make_sampler, mean_cost_at_error_curve
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.tables import format_series, format_table

#: Error grid of Figure 11(b)/(c).
ERRORS = (0.50, 0.40, 0.30, 0.25, 0.20, 0.15, 0.10)


@dataclasses.dataclass
class Fig11Result:
    """All three panels of Figure 11.

    Attributes:
        trace_costs: Query-cost checkpoints of panel (a).
        trace_estimates: ``sampler -> average-degree estimate per
            checkpoint`` (panel a).
        converged_degree: ``sampler -> converged average degree``.
        degree_costs: ``sampler -> mean cost per error level`` (panel b).
        desc_costs: ``sampler -> mean cost per error level`` (panel c).
        errors: The error grid of panels (b) and (c).
    """

    trace_costs: List[int]
    trace_estimates: Dict[str, List[float]]
    converged_degree: Dict[str, float]
    degree_costs: Dict[str, List[float]]
    desc_costs: Dict[str, List[float]]
    errors: Sequence[float]

    def __str__(self) -> str:
        blocks = [
            format_series(
                self.trace_estimates,
                x_label="query_cost",
                x_values=self.trace_costs,
                title="Figure 11(a) — estimated average degree vs query cost",
            ),
            format_table(
                ["sampler", "converged_avg_degree"],
                sorted(self.converged_degree.items()),
                title="Converged values (presumptive ground truth)",
            ),
            format_series(
                self.degree_costs,
                x_label="rel_error",
                x_values=list(self.errors),
                title="Figure 11(b) — mean query cost per error (average degree)",
            ),
            format_series(
                self.desc_costs,
                x_label="rel_error",
                x_values=list(self.errors),
                title=(
                    "Figure 11(c) — mean query cost per error "
                    "(average self-description length)"
                ),
            ),
        ]
        return "\n\n".join(blocks)


def run_fig11(
    runs: int = 10,
    num_samples: int = 4000,
    trace_points: int = 12,
    errors: Sequence[float] = ERRORS,
    scale: float = 1.0,
    seed: RngLike = 0,
) -> Fig11Result:
    """Run the Figure 11 protocol on the Google-Plus-like stand-in.

    Args:
        runs: Walks averaged per error point in panels (b)/(c).
        num_samples: Samples per walk.
        trace_points: Checkpoints in panel (a).
        errors: Error grid for panels (b)/(c).
        scale: Stand-in size multiplier.
        seed: Master randomness.
    """
    net = load("google_plus_like", seed=seed, scale=scale)
    rng = ensure_rng(seed)
    degree_query = AggregateQuery.average_degree()
    desc_query = AggregateQuery.average_self_description_length()

    # ---- step 1: converged values + panel (a) traces ------------------
    # The paper runs each sampler until its Geweke monitor fires and takes
    # the final estimate as the presumptive truth.  Panel (a) shows the
    # estimate's whole evolution, so the walk here collects samples from
    # step one (no burn-in discard) and the long-run tail serves as the
    # converged value; the Geweke diagnostic is evaluated on the final
    # trace as a sanity check rather than as a stopping rule.
    converged: Dict[str, float] = {}
    desc_converged: Dict[str, float] = {}
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for s_idx, sampler_name in enumerate(("SRW", "MTO")):
        sampler = make_sampler(sampler_name, net, spawn_rng(rng, 7 + s_idx))
        result = sampler.run(num_samples=num_samples)
        curves[sampler_name] = estimate_curve(degree_query, result.samples, sampler.api)
        converged[sampler_name] = curves[sampler_name][-1][1]
        desc_curve = estimate_curve(desc_query, result.samples, sampler.api)
        desc_converged[sampler_name] = desc_curve[-1][1]

    max_cost = min(curve[-1][0] for curve in curves.values())
    trace_costs = [
        max(1, int(max_cost * (i + 1) / trace_points)) for i in range(trace_points)
    ]
    trace_estimates: Dict[str, List[float]] = {}
    for sampler_name, curve in curves.items():
        values: List[float] = []
        j = 0
        current = curve[0][1]
        for target in trace_costs:
            while j < len(curve) and curve[j][0] <= target:
                current = curve[j][1]
                j += 1
            values.append(current)
        trace_estimates[sampler_name] = values

    # ---- step 2: panels (b) and (c) ------------------------------------
    degree_costs: Dict[str, List[float]] = {}
    desc_costs: Dict[str, List[float]] = {}
    for s_idx, sampler_name in enumerate(("SRW", "MTO")):
        degree_costs[sampler_name] = mean_cost_at_error_curve(
            net,
            degree_query,
            converged[sampler_name],
            sampler_name,
            errors,
            runs=runs,
            num_samples=num_samples,
            seed=spawn_rng(rng, 100 + s_idx),
        )
        desc_costs[sampler_name] = mean_cost_at_error_curve(
            net,
            desc_query,
            desc_converged[sampler_name],
            sampler_name,
            errors,
            runs=runs,
            num_samples=num_samples,
            seed=spawn_rng(rng, 200 + s_idx),
        )
    return Fig11Result(
        trace_costs=trace_costs,
        trace_estimates=trace_estimates,
        converged_degree=converged,
        degree_costs=degree_costs,
        desc_costs=desc_costs,
        errors=errors,
    )
