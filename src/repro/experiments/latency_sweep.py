"""Latency sweep: lock-step vs event-driven scheduling across distributions.

The paper's evaluation runs on a zero-latency simulator, where lock-step
parallel chains are free.  Real providers answer in time drawn from very
skewed distributions, and the follow-up work ("Walk, Not Wait") shows the
win from not blocking on slow responses.  This driver quantifies that on
our stand-ins: for each latency distribution it runs the *same* chains
(same seeds, same per-chain sample quotas) under
:class:`~repro.walks.parallel.ParallelWalkers` (every round waits for the
slowest response) and :class:`~repro.walks.scheduler.EventDrivenWalkers`
(each chain re-dispatches the moment its response lands), and reports
simulated wall-clock per collected sample at identical §II-B query cost.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.interface.providers import LATENCY_DISTRIBUTIONS
from repro.walks.parallel import ParallelWalkers
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk


@dataclasses.dataclass(frozen=True)
class LatencySweepRow:
    """One distribution's lock-step vs event-driven comparison.

    Attributes:
        distribution: Latency distribution name.
        query_cost: Billed unique queries (identical across schedulers —
            asserted, it is what makes the wall-clock numbers comparable).
        lockstep_wall: Lock-step simulated wall-clock (sum of per-round
            maximum latencies).
        event_wall: Event-driven simulated wall-clock (makespan).
        lockstep_wall_per_sample: Lock-step wall-clock per collected sample.
        event_wall_per_sample: Event-driven wall-clock per collected sample.
        speedup: ``lockstep_wall / event_wall`` (1.0 when both are 0).
    """

    distribution: str
    query_cost: int
    lockstep_wall: float
    event_wall: float
    lockstep_wall_per_sample: float
    event_wall_per_sample: float
    speedup: float


@dataclasses.dataclass
class LatencySweepResult:
    """Everything one latency sweep produced.

    Attributes:
        dataset: Network label.
        chains: Parallel chains per run.
        num_samples: Samples collected per run (rounded to a multiple of
            ``chains`` so per-chain quotas — and therefore query costs —
            match exactly between schedulers).
        latency_scale: Latency scale passed to the provider.
        rows: One :class:`LatencySweepRow` per distribution.
    """

    dataset: str
    chains: int
    num_samples: int
    latency_scale: float
    rows: List[LatencySweepRow]

    def __str__(self) -> str:
        lines = [
            f"latency sweep — {self.chains} chains x {self.num_samples} samples "
            f"on {self.dataset} (scale {self.latency_scale:g}s)",
            "  {:>13} {:>8} {:>14} {:>14} {:>9}".format(
                "distribution", "queries", "lock s/sample", "event s/sample", "speedup"
            ),
        ]
        for row in self.rows:
            lines.append(
                "  {:>13} {:>8} {:>14.4f} {:>14.4f} {:>8.2f}x".format(
                    row.distribution,
                    row.query_cost,
                    row.lockstep_wall_per_sample,
                    row.event_wall_per_sample,
                    row.speedup,
                )
            )
        return "\n".join(lines)


def run_latency_sweep(
    network: SocialNetwork,
    chains: int = 8,
    num_samples: int = 400,
    distributions: Sequence[str] = LATENCY_DISTRIBUTIONS,
    latency_scale: float = 1.0,
    seed: int = 0,
    thinning: int = 1,
) -> LatencySweepResult:
    """Compare lock-step and event-driven scheduling per latency model.

    Both schedulers drive freshly constructed chains with identical seeds
    and identical per-chain sample quotas over identical providers, so the
    walks — and the billed §II-B query cost — agree exactly; only the
    simulated wall-clock differs.

    Args:
        network: Dataset to sample.
        chains: Parallel chains (≥ 2).
        num_samples: Total samples per run; rounded down to a multiple of
            ``chains``.
        distributions: Latency distribution names to sweep.
        latency_scale: Scale passed to the latency provider.
        seed: Master seed (latency draws and walk streams derive from it).
        thinning: Per-chain spacing between collected samples.

    Raises:
        ExperimentError: On fewer than two chains or an empty quota.
    """
    if chains < 2:
        raise ExperimentError("the schedulers need at least two chains")
    num_samples = (num_samples // chains) * chains
    if num_samples <= 0:
        raise ExperimentError("num_samples must be at least the chain count")

    def build(distribution: str):
        api = network.interface(
            latency_distribution=distribution,
            latency_scale=latency_scale,
            latency_seed=seed,
        )
        walkers = [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=seed * 100_003 + i)
            for i in range(chains)
        ]
        return api, walkers

    rows: List[LatencySweepRow] = []
    for distribution in distributions:
        _, lock_chains = build(distribution)
        lock_run = ParallelWalkers(lock_chains).run(num_samples=num_samples, thinning=thinning)
        _, event_chains = build(distribution)
        event_run = EventDrivenWalkers(event_chains).run(
            num_samples=num_samples, thinning=thinning
        )
        if event_run.queries != lock_run.queries:
            raise ExperimentError(
                f"schedulers disagree on query cost under {distribution!r}: "
                f"{lock_run.queries} vs {event_run.queries}"
            )
        speedup = (
            lock_run.sim_elapsed / event_run.sim_elapsed if event_run.sim_elapsed > 0 else 1.0
        )
        rows.append(
            LatencySweepRow(
                distribution=distribution,
                query_cost=lock_run.queries,
                lockstep_wall=lock_run.sim_elapsed,
                event_wall=event_run.sim_elapsed,
                lockstep_wall_per_sample=lock_run.sim_elapsed / num_samples,
                event_wall_per_sample=event_run.sim_elapsed / num_samples,
                speedup=speedup,
            )
        )
    return LatencySweepResult(
        dataset=network.name,
        chains=chains,
        num_samples=num_samples,
        latency_scale=latency_scale,
        rows=rows,
    )
