"""History sweep: prefetch budget × chain policy × shard skew.

The fleet sweep (PR 4) quantified what batch coalescing buys over a
sharded provider; this driver measures the layer above it: the same
chains crawling the same fleet under the **history-aware dispatch
planner** (:mod:`repro.planning`) at different prefetch lookaheads and
chain-lifecycle policies.  ``lookahead=0`` with the policy off is the
planner-free PR-4 batching baseline that anchors every speedup column.

Because predictive prefetch replays each chain's own RNG, a policy-off
planning run issues *exactly* the unique queries the baseline issues —
just earlier, where they ride open bursts' spare admission slots — so
the driver asserts §II-B cost equality for every policy-off cell (the
adaptive-policy cells redistribute work across a different chain roster
and are reported, not asserted).  What planning changes is the
simulated wall-clock: chains step through prefetched territory at zero
latency instead of paying an admission slot and a round trip per fetch.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.datasets.standins import SocialNetwork
from repro.errors import ExperimentError
from repro.compose import FleetSpec, ProviderSpec, build_fleet
from repro.interface.api import RestrictedSocialAPI
from repro.planning import AdaptiveChainPolicy, DispatchPlanner
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk

#: Chain-policy axis values.
POLICY_OFF = "off"
POLICY_ADAPTIVE = "adaptive"


@dataclasses.dataclass(frozen=True)
class HistorySweepRow:
    """One (skew, lookahead, policy) cell of the sweep.

    Attributes:
        skew: Routing weight of the hot shard (1.0 = uniform fleet).
        lookahead: Predictive prefetches per chain per tick (0 = planner
            off when the policy is off too).
        policy: Chain-lifecycle policy (``off`` or ``adaptive``).
        query_cost: Billed unique queries — identical to the baseline for
            every policy-off row (asserted by the driver).
        sim_wall: Simulated wall-clock makespan of the run.
        wall_per_sample: ``sim_wall`` per collected sample.
        speedup_vs_plain: Baseline (planner-free) wall-clock over this
            run's (1.0 for the baseline row itself).
        prefetch_issued: Predictive fetches that rode open bursts.
        prefetch_used: Prefetches later consumed by a chain's step.
        prefetch_wasted: Prefetches orphaned by chain retirement, plus
            those still outstanding when the run ended.
        cache_first_rate: Fraction of steps that advanced through known
            neighborhoods at zero latency.
        retired_chains: Chains the adaptive policy retired (empty with
            the policy off).
    """

    skew: float
    lookahead: int
    policy: str
    query_cost: int
    sim_wall: float
    wall_per_sample: float
    speedup_vs_plain: float
    prefetch_issued: int
    prefetch_used: int
    prefetch_wasted: int
    cache_first_rate: float
    retired_chains: tuple


@dataclasses.dataclass
class HistorySweepResult:
    """Everything one history sweep produced.

    Attributes:
        dataset: Network label.
        chains: Parallel chains per run.
        num_samples: Samples collected per run (rounded to a multiple of
            ``chains`` so per-chain quotas — and therefore query costs —
            match exactly across cells).
        num_shards: Fleet size of every cell.
        batch_cap: Per-shard burst size limit.
        admission_interval: Per-shard seconds between round-trip
            admissions.
        rows: One :class:`HistorySweepRow` per swept cell.
    """

    dataset: str
    chains: int
    num_samples: int
    num_shards: int
    batch_cap: int
    admission_interval: float
    rows: List[HistorySweepRow]

    def __str__(self) -> str:
        lines = [
            f"history sweep — {self.chains} chains x {self.num_samples} samples "
            f"on {self.dataset} ({self.num_shards} shards, cap {self.batch_cap}, "
            f"admission every {self.admission_interval:g}s)",
            "  {:>5} {:>9} {:>8} {:>8} {:>13} {:>8} {:>16} {:>9} {:>8}".format(
                "skew",
                "lookahead",
                "policy",
                "queries",
                "wall/sample",
                "speedup",
                "prefetch i/u/w",
                "cache-1st",
                "retired",
            ),
        ]
        for row in self.rows:
            lines.append(
                "  {:>5.1f} {:>9} {:>8} {:>8} {:>13.4f} {:>7.2f}x {:>16} {:>8.1%} {:>8}".format(
                    row.skew,
                    row.lookahead,
                    row.policy,
                    row.query_cost,
                    row.wall_per_sample,
                    row.speedup_vs_plain,
                    f"{row.prefetch_issued}/{row.prefetch_used}/{row.prefetch_wasted}",
                    row.cache_first_rate,
                    len(row.retired_chains),
                )
            )
        return "\n".join(lines)


def run_history_sweep(
    network: SocialNetwork,
    skews: Sequence[float] = (1.0, 8.0),
    lookaheads: Sequence[int] = (0, 2, 4),
    policies: Sequence[str] = (POLICY_OFF, POLICY_ADAPTIVE),
    chains: int = 8,
    num_samples: int = 400,
    num_shards: int = 4,
    batch_cap: int = 16,
    latency_scale: float = 0.5,
    admission_interval: float = 2.0,
    latency_quantum: float = 0.5,
    seed: int = 0,
    thinning: int = 1,
) -> HistorySweepResult:
    """Sweep the planning layer over a skewed batch-coalescing fleet.

    For every skew the same chains (same seeds, same per-chain quotas)
    run once per (lookahead, policy) cell over identically configured
    fleets.  The ``(0, off)`` cell runs planner-free and anchors the
    speedup column; every further policy-off cell must bill the
    *identical* §II-B query cost (predictive prefetch spends the same
    queries earlier — the driver asserts it).  Adaptive-policy cells may
    shift cost (a different roster walks different nodes) and are
    reported unasserted.

    Args:
        network: Dataset to sample.
        skews: Hot-shard routing weights (1.0 = uniform).
        lookaheads: Prefetch budgets to sweep (0 included automatically
            as the baseline).
        policies: Chain policies to sweep (``"off"``/``"adaptive"``;
            ``"off"`` is prepended when missing — the planner-free cell
            anchors every speedup column).
        chains: Parallel chains (>= 2).
        num_samples: Total samples per run; rounded down to a multiple
            of ``chains``.
        num_shards: Fleet size of every cell.
        batch_cap: Per-shard burst size limit (headroom is what prefetch
            rides; small caps leave planning little room).
        latency_scale: Heavy-tailed latency scale of every shard stack.
        admission_interval: Seconds between round-trip admissions at
            every shard.
        latency_quantum: Response-latency grid of the fleet.
        seed: Master seed (routing, latency draws, and walk streams
            derive from it).
        thinning: Per-chain spacing between collected samples.

    Raises:
        ExperimentError: On fewer than two chains, an empty quota, an
            unknown policy name, or a policy-off cost mismatch (which
            would mean prediction issued queries the walk never spends).
    """
    if chains < 2:
        raise ExperimentError("the scheduler needs at least two chains")
    unknown = [p for p in policies if p not in (POLICY_OFF, POLICY_ADAPTIVE)]
    if unknown:
        raise ExperimentError(f"unknown chain policies: {unknown}")
    num_samples = (num_samples // chains) * chains
    if num_samples <= 0:
        raise ExperimentError("num_samples must be at least the chain count")
    # The planner-free (off, lookahead 0) cell anchors every speedup and
    # the cost-equality assertion, so it must run first regardless of how
    # (or whether) the caller listed its coordinates.
    lookahead_axis = [0] + [la for la in dict.fromkeys(lookaheads) if la != 0]
    policy_axis = [POLICY_OFF] + [p for p in dict.fromkeys(policies) if p != POLICY_OFF]

    def run_cell(skew: float, lookahead: int, policy_name: str):
        weights = None
        if num_shards > 1 and skew != 1.0:
            weights = [skew] + [1.0] * (num_shards - 1)
        fleet = build_fleet(
            FleetSpec(
                num_shards=num_shards,
                seed=seed * 7 + 3,
                weights=weights,
                provider=ProviderSpec(
                    latency_distribution="heavy_tailed",
                    latency_scale=latency_scale,
                ),
                shard_latency_spread=1.0,
                admission_interval=admission_interval,
                batch_cap=batch_cap,
                latency_quantum=latency_quantum,
            ),
            network.graph,
            profiles=network.profiles,
        )
        api = RestrictedSocialAPI(fleet)
        walkers = [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=seed * 100_003 + i)
            for i in range(chains)
        ]
        planner: Optional[DispatchPlanner] = None
        if lookahead > 0 or policy_name == POLICY_ADAPTIVE:
            policy = None
            if policy_name == POLICY_ADAPTIVE:
                policy = AdaptiveChainPolicy(
                    min_chains=max(2, chains // 2),
                    tail_ratio=2.0,
                    evaluate_every=8,
                    min_observations=6,
                )
            planner = DispatchPlanner(lookahead=lookahead, policy=policy, seed=seed)
        return EventDrivenWalkers(walkers, batching=True, planner=planner).run(
            num_samples=num_samples, thinning=thinning
        )

    rows: List[HistorySweepRow] = []
    for skew in skews:
        baseline_wall = None
        baseline_cost = None
        for policy_name in policy_axis:
            for lookahead in lookahead_axis:
                run = run_cell(skew, lookahead, policy_name)
                if policy_name == POLICY_OFF and lookahead == 0:
                    baseline_wall = run.sim_elapsed
                    baseline_cost = run.queries
                elif policy_name == POLICY_OFF and run.queries != baseline_cost:
                    raise ExperimentError(
                        f"lookahead {lookahead} changed the §II-B bill at skew "
                        f"{skew}: {run.queries} vs {baseline_cost}"
                    )
                planning = run.planning or {}
                rows.append(
                    HistorySweepRow(
                        skew=skew,
                        lookahead=lookahead,
                        policy=policy_name,
                        query_cost=run.queries,
                        sim_wall=run.sim_elapsed,
                        wall_per_sample=run.sim_elapsed / num_samples,
                        speedup_vs_plain=(
                            baseline_wall / run.sim_elapsed if run.sim_elapsed > 0 else 1.0
                        ),
                        prefetch_issued=planning.get("prefetch_issued", 0),
                        prefetch_used=planning.get("prefetch_used", 0),
                        prefetch_wasted=planning.get("prefetch_wasted", 0)
                        + planning.get("prefetch_outstanding", 0),
                        cache_first_rate=planning.get("cache_first_rate", 0.0),
                        retired_chains=tuple(planning.get("retired_chains", ())),
                    )
                )
    return HistorySweepResult(
        dataset=network.name,
        chains=chains,
        num_samples=num_samples,
        num_shards=num_shards,
        batch_cap=batch_cap,
        admission_interval=admission_interval,
        rows=rows,
    )
