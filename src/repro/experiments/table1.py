"""Table I: dataset statistics (#nodes, #edges, 90% effective diameter)."""

from __future__ import annotations

import dataclasses
from typing import List

from repro.datasets.registry import PAPER_TABLE1, table1_rows
from repro.graph.metrics import GraphStats
from repro.utils.rng import RngLike
from repro.utils.tables import format_table


@dataclasses.dataclass
class Table1Result:
    """Measured Table I rows, with the paper's originals for reference."""

    rows: List[GraphStats]

    def __str__(self) -> str:
        headers = [
            "dataset",
            "nodes",
            "edges",
            "diam90",
            "avg_deg",
            "clustering",
            "paper_nodes",
            "paper_edges",
            "paper_diam90",
        ]
        body = []
        for row in self.rows:
            paper = PAPER_TABLE1.get(row.name, {})
            body.append(
                (
                    *row.as_row(),
                    paper.get("nodes", "-"),
                    paper.get("edges", "-"),
                    paper.get("diameter90", "-"),
                )
            )
        return format_table(headers, body, title="Table I — dataset statistics")


def run_table1(seed: RngLike = 0, scale: float = 1.0) -> Table1Result:
    """Compute the Table I statistics for every dataset stand-in.

    Args:
        seed: Randomness for the stand-in generators (``None`` keeps each
            builder's default).
        scale: Stand-in size multiplier.
    """
    return Table1Result(rows=table1_rows(seed=seed, scale=scale))
