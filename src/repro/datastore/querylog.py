"""Append-only query log with the paper's unique-query cost accounting.

Section II-B: *"we consider the number of unique queries one has to issue
for the sampling process, as any duplicate query can be answered from local
cache without consuming the query limit."*  The log records every logical
query, distinguishes cache hits from billed (unique) queries, and exposes
the running unique-query count that all experiment drivers report as
"query cost".
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterator, List, Optional, Set


@dataclasses.dataclass(frozen=True)
class QueryRecord:
    """One logical interface query.

    Attributes:
        index: 0-based position in the log.
        user: Queried user id.
        billed: Whether this query consumed the provider's limit (first
            time the user was queried) or was served from local cache.
        timestamp: Simulated time the query was issued at.
    """

    index: int
    user: Hashable
    billed: bool
    timestamp: float


class QueryLog:
    """Record of all queries issued through a restricted interface.

    Records are held internally as plain ``(user, billed, timestamp)``
    tuples — one append per logical query is on the walk engines' hot
    path, and a frozen-dataclass construction per step costs more than
    the draw itself.  Iteration and :meth:`tail` materialize
    :class:`QueryRecord` views lazily, so readers see the same shape as
    before.
    """

    def __init__(self) -> None:
        self._records: List[tuple] = []
        self._unique: Set[Hashable] = set()

    def note(self, user: Hashable, billed: bool, timestamp: float) -> None:
        """Hot-path append with an explicit billing decision.

        Identical accounting to :meth:`record` minus the derived-billing
        branch and the record-object construction; the walk engines' fast
        cached-step lane calls this once per step.
        """
        if billed:
            self._unique.add(user)
        self._records.append((user, billed, timestamp))

    def record(
        self, user: Hashable, timestamp: float = 0.0, billed: Optional[bool] = None
    ) -> QueryRecord:
        """Append a query for ``user``; returns the created record.

        Args:
            user: The queried user.
            timestamp: Simulated time of the query.
            billed: ``None`` (default) derives the §II-B billing rule —
                first query per user is billed, repeats are free.  An
                explicit ``False`` logs a free read of knowledge this
                crawler never paid for (a shared-cache hit in the service
                layer: another tenant's spend must not enter this log's
                unique set, or a later eviction re-fetch would be billed
                wrongly free).  An explicit ``True`` force-bills.
        """
        if billed is None:
            billed = user not in self._unique
        self.note(user, billed, timestamp)
        return QueryRecord(
            index=len(self._records) - 1, user=user, billed=billed, timestamp=timestamp
        )

    @property
    def total_queries(self) -> int:
        """All logical queries, including cache hits."""
        return len(self._records)

    @property
    def unique_queries(self) -> int:
        """Billed queries — the paper's *query cost* measure."""
        return len(self._unique)

    def was_queried(self, user: Hashable) -> bool:
        """Whether ``user`` was ever queried (i.e. is locally cached)."""
        return user in self._unique

    def queried_users(self) -> frozenset:
        """Set of all users queried so far."""
        return frozenset(self._unique)

    def __iter__(self) -> Iterator[QueryRecord]:
        for i, (user, billed, ts) in enumerate(self._records):
            yield QueryRecord(index=i, user=user, billed=billed, timestamp=ts)

    def __len__(self) -> int:
        return len(self._records)

    def tail(self, n: int) -> List[QueryRecord]:
        """The most recent ``n`` records."""
        if n <= 0:
            return []
        start = max(0, len(self._records) - n)
        return [
            QueryRecord(index=start + i, user=user, billed=billed, timestamp=ts)
            for i, (user, billed, ts) in enumerate(self._records[start:])
        ]

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable state: the full record list.

        Billed flags are part of the history (§II-B unique-query
        accounting): a restored log must keep charging repeat queries to
        the cache, so the set of already-billed users travels with the
        records themselves (it is recomputed from the billed flags on
        load, not stored separately).
        """
        return {"records": [(user, billed, ts) for user, billed, ts in self._records]}

    def load_state(self, state: dict) -> None:
        """Replace this log's contents with a captured state.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._records = [
            (user, bool(billed), float(ts)) for user, billed, ts in state["records"]
        ]
        self._unique = {user for user, billed, _ in self._records if billed}

    def billed_between(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> int:
        """Billed queries with ``start <= timestamp < end`` (for rate audits)."""
        count = 0
        for _, billed, timestamp in self._records:
            if not billed:
                continue
            if start is not None and timestamp < start:
                continue
            if end is not None and timestamp >= end:
                continue
            count += 1
        return count
