"""Persistent cross-run crawl history: save paid-for knowledge, warm-start later runs.

§II-B's cost model makes the first ``q(v)`` on each user the only one
that ever bills — "any duplicate query can be answered from local cache
without consuming the query limit".  The snapshot layer already lets one
*interrupted* crawl resume bit-for-bit; what it cannot do is let a
**different** crawl (new seeds, new engine, new tenant, next week's
process) reuse the neighborhoods an earlier crawl already paid for.

:class:`HistoryStore` is that artifact.  It persists, through the same
pluggable :class:`~repro.datastore.snapshot.SnapshotBackend` codec the
session snapshots use:

* the **known-neighborhood summary** — every cached ``(user,
  neighbor_seq, attributes)`` response plus the refusals billed so far,
  derived from the interface's cache and :class:`~repro.datastore.querylog.QueryLog`;
* the **planning statistics** — a
  :class:`~repro.planning.history.HistoryIndex` ``state_dict`` (visit
  counts, cache-first/fetched step counters, per-region books) that a
  warm planner turns into a speculative-ranking prior.

Warm-starting applies the record *without billing*: neighborhoods enter
the new interface via ``cache.put`` (never ``query``), refusals rejoin
the known-private set, and the interface's ``warm_hits`` counter
attributes every hit served from that preloaded knowledge.  A
warm-started second run therefore spends strictly fewer §II-B queries
than the same run cold, while remaining deterministic — the walk's RNG
stream never sees the difference between a warm hit and a hit it paid
for itself.

Example::

    store = HistoryStore(JsonLinesBackend("crawl.history.jsonl"))
    store.save(api, planner=stack.planner)      # after the first run

    # ... later, any process, any walk configuration ...
    warmed = store.warm(fresh_api, planner=new_stack.planner)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.datastore.snapshot import SnapshotBackend
from repro.errors import SnapshotError

Node = Hashable

#: Section names used in history artifacts.
SECTION_META = "history/meta"
SECTION_NEIGHBORHOODS = "history/neighborhoods"
SECTION_STATS = "history/stats"

#: Format version written into every artifact's meta section.
HISTORY_VERSION = 1


@dataclasses.dataclass(frozen=True)
class HistoryRecord:
    """One decoded history artifact.

    Attributes:
        meta: Version, capture-time accounting, and any caller metadata.
        neighborhoods: ``{user: (neighbor_seq, attributes)}`` — the
            knowledge a prior run paid §II-B cost for.
        private: Users whose billed refusals the prior run cached.
        billed_users: The prior run's §II-B unique-query set (the
            :meth:`~repro.datastore.querylog.QueryLog.queried_users`
            summary; a superset of ``neighborhoods``' keys only when the
            prior cache evicted entries it had billed).
        stats: A :class:`~repro.planning.history.HistoryIndex`
            ``state_dict`` payload (empty dicts/zeros when the prior run
            had no planner).
    """

    meta: dict
    neighborhoods: Dict[Node, Tuple[Tuple[Node, ...], dict]]
    private: frozenset
    billed_users: frozenset
    stats: dict

    @property
    def known_count(self) -> int:
        """Number of neighborhoods the record carries."""
        return len(self.neighborhoods)


def capture_history(
    api,
    planner=None,
    metadata: Optional[dict] = None,
) -> Dict[str, dict]:
    """Assemble history sections from a live interface (no persistence).

    Args:
        api: The :class:`~repro.interface.api.RestrictedSocialAPI` whose
            cache/log hold the knowledge to persist.
        planner: Optional bound
            :class:`~repro.planning.planner.DispatchPlanner` whose
            history-index statistics ride along as the warm prior.
        metadata: Extra JSON-safe entries merged into the meta section.
    """
    cache = api.cache
    neighborhoods: Dict[Node, dict] = {}
    for user in cache.known_users():
        seq = cache.neighbor_seq(user)
        if seq is None:  # raced expiry between known_users() and the read
            continue
        neighborhoods[user] = {"seq": seq, "attrs": cache.attributes(user) or {}}
    private = frozenset(
        user for user in api.log.queried_users() if api.is_known_private(user)
    )
    stats: dict = {}
    if planner is not None and getattr(planner, "bound", False):
        stats = planner.history.state_dict()
    meta = dict(metadata or {})
    meta.update(
        {
            "version": HISTORY_VERSION,
            "users": len(neighborhoods),
            "query_cost": api.query_cost,
            "total_queries": api.total_queries,
        }
    )
    return {
        SECTION_META: meta,
        SECTION_NEIGHBORHOODS: neighborhoods,
        SECTION_STATS: {"index": stats, "billed": api.log.queried_users(), "private": private},
    }


class HistoryStore:
    """Round-trip crawl history through a snapshot backend.

    Args:
        backend: Any :class:`~repro.datastore.snapshot.SnapshotBackend`
            (:class:`~repro.datastore.snapshot.JsonLinesBackend` for a
            file artifact that survives the process,
            :class:`~repro.datastore.snapshot.KeyValueBackend` for an
            in-datastore copy).
    """

    def __init__(self, backend: SnapshotBackend) -> None:
        self._backend = backend

    @property
    def backend(self) -> SnapshotBackend:
        """The snapshot backend."""
        return self._backend

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def save(self, api, planner=None, metadata: Optional[dict] = None) -> Dict[str, dict]:
        """Capture ``api``'s paid-for knowledge and persist it.

        Returns the sections written (see :func:`capture_history`).
        """
        sections = capture_history(api, planner=planner, metadata=metadata)
        self._backend.write(sections)
        return sections

    def save_cache(
        self,
        cache,
        private: Iterable[Node] = (),
        stats: Optional[dict] = None,
        metadata: Optional[dict] = None,
    ) -> Dict[str, dict]:
        """Persist a bare shared cache (the service layer's write path).

        A multi-tenant service owns one cross-tenant cache but no single
        interface; this captures every cached neighborhood directly,
        with optional refusal and planning-statistics payloads.
        """
        neighborhoods: Dict[Node, dict] = {}
        for user in cache.known_users():
            seq = cache.neighbor_seq(user)
            if seq is None:
                continue
            neighborhoods[user] = {"seq": seq, "attrs": cache.attributes(user) or {}}
        meta = dict(metadata or {})
        meta.update({"version": HISTORY_VERSION, "users": len(neighborhoods)})
        sections = {
            SECTION_META: meta,
            SECTION_NEIGHBORHOODS: neighborhoods,
            SECTION_STATS: {
                "index": dict(stats or {}),
                "billed": frozenset(neighborhoods),
                "private": frozenset(private),
            },
        }
        self._backend.write(sections)
        return sections

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def load(self) -> Optional[HistoryRecord]:
        """Decode the stored artifact, or ``None`` when the backend is empty.

        Raises:
            SnapshotError: On a missing section or unsupported version.
        """
        sections = self._backend.read()
        if sections is None:
            return None
        meta = sections.get(SECTION_META)
        if meta is None or SECTION_NEIGHBORHOODS not in sections:
            raise SnapshotError("history artifact is missing its meta/neighborhood sections")
        if int(meta.get("version", -1)) != HISTORY_VERSION:
            raise SnapshotError(
                f"unsupported history version {meta.get('version')!r} "
                f"(this build reads version {HISTORY_VERSION})"
            )
        stats = sections.get(SECTION_STATS, {})
        neighborhoods = {
            user: (tuple(row["seq"]), dict(row["attrs"]))
            for user, row in sections[SECTION_NEIGHBORHOODS].items()
        }
        return HistoryRecord(
            meta=dict(meta),
            neighborhoods=neighborhoods,
            private=frozenset(stats.get("private", frozenset())),
            billed_users=frozenset(stats.get("billed", frozenset())),
            stats=dict(stats.get("index", {})),
        )

    def warm(self, api, planner=None) -> int:
        """Load the artifact and warm-start ``api`` (and ``planner``) from it.

        Neighborhoods preload through
        :meth:`~repro.interface.api.RestrictedSocialAPI.warm_start`
        (cache writes, never billed queries); a bound planner receives
        the record's history-index statistics as its speculative prior.

        Returns:
            Number of neighborhoods preloaded (0 when the backend holds
            no artifact).
        """
        record = self.load()
        if record is None:
            return 0
        count = api.warm_start(record.neighborhoods, private=record.private)
        if planner is not None and getattr(planner, "bound", False) and record.stats:
            planner.warm_start(record.stats)
        return count
