"""In-memory key-value store (the Redis stand-in).

Supports the subset of semantics the sampler needs: get/set/delete,
optional per-key TTL against an injectable clock (the interface layer runs
on simulated time), and an optional LRU capacity bound so memory stays
bounded during very long crawls.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterator, Optional

from repro.errors import DataStoreError


class KeyValueStore:
    """String/hashable-keyed value store with TTL and LRU eviction.

    Args:
        capacity: Maximum number of live keys; ``None`` for unbounded.  When
            full, the least-recently-used key is evicted (Redis
            ``allkeys-lru`` policy).
        clock: Zero-argument callable returning the current time in seconds;
            defaults to a logical clock that only advances via
            :meth:`advance`.  Injectable so TTL tests and the simulated
            interface control time explicitly.

    Example:
        >>> kv = KeyValueStore()
        >>> kv.set("user:1:neighbors", [2, 3])
        >>> kv.get("user:1:neighbors")
        [2, 3]
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise DataStoreError("capacity must be positive or None")
        self._capacity = capacity
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._expires: Dict[Hashable, float] = {}
        self._logical_now = 0.0
        self._clock = clock if clock is not None else self._logical_clock
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Monotonic write-version: bumped by every mutation (set, delete,
        # purge, eviction, clear, load_state).  Read-side fast lanes (the
        # neighborhood cache's hot dict) compare it to detect foreign
        # writes through a shared store and flush themselves.
        self._version = 0

    def _logical_clock(self) -> float:
        return self._logical_now

    def advance(self, seconds: float) -> None:
        """Advance the built-in logical clock (no-op for injected clocks)."""
        if seconds < 0:
            raise DataStoreError("cannot advance time backwards")
        self._logical_now += seconds

    def _expired(self, key: Hashable) -> bool:
        deadline = self._expires.get(key)
        return deadline is not None and self._clock() >= deadline

    def _purge(self, key: Hashable) -> None:
        self._data.pop(key, None)
        self._expires.pop(key, None)
        self._version += 1

    # ------------------------------------------------------------------
    def set(self, key: Hashable, value: object, ttl: Optional[float] = None) -> None:
        """Store ``value`` under ``key``.

        Args:
            key: Hashable key.
            value: Arbitrary value.
            ttl: Seconds until expiry (clock units); ``None`` for no expiry.

        Raises:
            DataStoreError: For non-positive TTLs.
        """
        if ttl is not None and ttl <= 0:
            raise DataStoreError("ttl must be positive or None")
        self._version += 1
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if ttl is None:
            self._expires.pop(key, None)
        else:
            self._expires[key] = self._clock() + ttl
        if self._capacity is not None and len(self._data) > self._capacity:
            # Dead keys make room before any live key is sacrificed: an
            # expired entry still occupying a slot must not push a live
            # LRU entry out (and its purge is not billed as an eviction).
            # Only TTL'd keys can be dead, so scan _expires, not _data —
            # the common no-TTL workload keeps O(1) inserts.
            for stale in [k for k in self._expires if self._expired(k)]:
                self._purge(stale)
            while len(self._data) > self._capacity:
                evicted, _ = self._data.popitem(last=False)
                self._expires.pop(evicted, None)
                self._evictions += 1
                self._version += 1

    def get(self, key: Hashable, default: object = None) -> object:
        """Fetch the value for ``key`` or ``default`` if absent/expired."""
        if key in self._data and not self._expired(key):
            self._data.move_to_end(key)
            self._hits += 1
            return self._data[key]
        if key in self._data:  # present but expired
            self._purge(key)
        self._misses += 1
        return default

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is live (present and unexpired). No LRU touch."""
        if key in self._data and not self._expired(key):
            return True
        if key in self._data:
            self._purge(key)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return self.contains(key)

    def delete(self, key: Hashable) -> bool:
        """Remove ``key``; returns whether it was present (and unexpired)."""
        live = self.contains(key)
        self._purge(key)
        return live

    def keys(self) -> Iterator[Hashable]:
        """Iterate over live keys (expired keys are skipped, not purged)."""
        for key in list(self._data):
            if not self._expired(key):
                yield key

    def clear(self) -> None:
        """Drop all keys and reset hit/miss counters."""
        self._version += 1
        self._data.clear()
        self._expires.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable state: live entries (LRU order) + counters.

        TTLs are captured as *remaining* seconds relative to this store's
        clock, so a restore into a store whose clock reads differently
        (e.g. a fresh process starting at t=0) re-anchors every deadline
        correctly instead of comparing absolute times across clocks.
        Entries already expired at capture time are omitted — a snapshot
        can never carry a dead key forward.
        """
        now = self._clock()
        entries = []
        for key in self._data:  # OrderedDict: LRU order, oldest first
            deadline = self._expires.get(key)
            if deadline is not None and now >= deadline:
                continue  # expired: not part of the live state
            remaining = None if deadline is None else deadline - now
            entries.append((key, self._data[key], remaining))
        return {
            "entries": entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }

    def load_state(self, state: dict) -> None:
        """Replace this store's contents with a captured state.

        Remaining TTLs are re-anchored to this store's *current* clock
        reading; entries whose remaining TTL is non-positive are dropped,
        so an expired key is never resurrected by a snapshot load (the
        capture already omits them, but a state held for a long time and
        restored late must not revive keys either).  The capacity bound of
        *this* store applies: if the state holds more live entries than
        fit, the least-recently-used prefix is discarded (counted as
        evictions, exactly as live inserts would be).

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._version += 1
        self._data.clear()
        self._expires.clear()
        now = self._clock()
        for key, value, remaining in state["entries"]:
            if remaining is not None and remaining <= 0:
                continue
            self._data[key] = value
            if remaining is not None:
                self._expires[key] = now + remaining
        self._hits = int(state.get("hits", 0))
        self._misses = int(state.get("misses", 0))
        self._evictions = int(state.get("evictions", 0))
        if self._capacity is not None:
            while len(self._data) > self._capacity:
                evicted, _ = self._data.popitem(last=False)
                self._expires.pop(evicted, None)
                self._evictions += 1

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> Optional[int]:
        """The LRU capacity bound, or ``None`` when unbounded."""
        return self._capacity

    @property
    def version(self) -> int:
        """Monotonic write-version (bumped by every mutation)."""
        return self._version

    @property
    def hits(self) -> int:
        """Number of successful :meth:`get` calls."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of :meth:`get` calls that fell through to the default."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of keys evicted by the LRU capacity bound."""
        return self._evictions
