"""In-memory document store (the MongoDB stand-in).

Stores id-keyed documents (plain dicts) — user profiles with attributes
like ``self_description`` — and supports simple field-equality and
predicate queries, which is all the aggregate-estimation pipeline needs.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Hashable, Iterator, List, Mapping, Optional

from repro.errors import DataStoreError, DocumentNotFoundError


class DocumentStore:
    """Collection of documents keyed by id.

    Documents are stored by deep copy and returned by deep copy, so callers
    can never corrupt the store through shared references (matching the
    serialization boundary a real document database imposes).
    """

    def __init__(self) -> None:
        self._docs: Dict[Hashable, dict] = {}

    def insert(self, doc_id: Hashable, document: Mapping) -> None:
        """Insert a new document.

        Raises:
            DataStoreError: If ``doc_id`` already exists (use
                :meth:`upsert` to overwrite).
        """
        if doc_id in self._docs:
            raise DataStoreError(f"document {doc_id!r} already exists")
        self._docs[doc_id] = copy.deepcopy(dict(document))

    def upsert(self, doc_id: Hashable, document: Mapping) -> None:
        """Insert or replace the document under ``doc_id``."""
        self._docs[doc_id] = copy.deepcopy(dict(document))

    def update(self, doc_id: Hashable, fields: Mapping) -> None:
        """Merge ``fields`` into an existing document.

        Raises:
            DocumentNotFoundError: If ``doc_id`` is absent.
        """
        if doc_id not in self._docs:
            raise DocumentNotFoundError(doc_id)
        self._docs[doc_id].update(copy.deepcopy(dict(fields)))

    def get(self, doc_id: Hashable) -> dict:
        """Fetch a document copy.

        Raises:
            DocumentNotFoundError: If ``doc_id`` is absent.
        """
        try:
            return copy.deepcopy(self._docs[doc_id])
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def get_or_none(self, doc_id: Hashable) -> Optional[dict]:
        """Fetch a document copy or ``None`` if absent."""
        doc = self._docs.get(doc_id)
        return copy.deepcopy(doc) if doc is not None else None

    def delete(self, doc_id: Hashable) -> bool:
        """Remove a document; returns whether it existed."""
        return self._docs.pop(doc_id, None) is not None

    def __contains__(self, doc_id: Hashable) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def ids(self) -> Iterator[Hashable]:
        """Iterate over document ids."""
        return iter(self._docs)

    def find(self, **equals: object) -> List[dict]:
        """All documents whose fields equal the given keyword values.

        Example:
            >>> store = DocumentStore()
            >>> store.insert(1, {"name": "a", "active": True})
            >>> store.insert(2, {"name": "b", "active": False})
            >>> [d["name"] for d in store.find(active=True)]
            ['a']
        """
        out = []
        for doc in self._docs.values():
            if all(doc.get(field) == value for field, value in equals.items()):
                out.append(copy.deepcopy(doc))
        return out

    def find_where(self, predicate: Callable[[dict], bool]) -> List[dict]:
        """All documents satisfying an arbitrary predicate.

        The predicate receives the *stored* document (not a copy) for speed;
        it must not mutate it.  Matches are returned as copies.
        """
        return [copy.deepcopy(d) for d in self._docs.values() if predicate(d)]

    def count(self, predicate: Optional[Callable[[dict], bool]] = None) -> int:
        """Number of documents, optionally filtered by ``predicate``."""
        if predicate is None:
            return len(self._docs)
        return sum(1 for d in self._docs.values() if predicate(d))
