"""Persistent snapshots of sampling state: codec + pluggable backends.

The paper's central artifact — the rewired overlay G* (§I-C) — is built
from *expensive* interface queries, and §II-B's cost model makes every
unique query the scarce resource: "we consider the number of unique
queries one has to issue for the sampling process, as any duplicate query
can be answered from local cache without consuming the query limit."  A
snapshot extends that local cache across process boundaries: everything a
crawl has already paid for (overlay rewirings, cached neighborhoods, the
query log, walker RNG state) is serialized so a later process resumes
bit-for-bit — same draws, same billing — instead of re-paying the budget.

Three layers live here:

* **Codec** — :func:`encode_value` / :func:`decode_value` map the sampler's
  state (arbitrary hashable user ids: ints, strings, tuples; frozensets;
  insertion-ordered dicts; exact floats) onto JSON-safe structures and
  back, type-faithfully.  A tagged representation avoids JSON's ambiguity
  (``1`` vs ``True`` vs ``1.0``; tuple vs list; no non-string dict keys).
* **Backends** — :class:`SnapshotBackend` is the pluggable persistence
  API; :class:`JsonLinesBackend` writes one atomic JSON-lines file (one
  header line + one line per state section), :class:`KeyValueBackend`
  stores sections in a :class:`~repro.datastore.kv.KeyValueStore` (the
  Redis stand-in), where several *named* snapshots can coexist under
  distinct namespaces.  The store must be a dedicated one, not the store
  backing a live :class:`~repro.interface.cache.NeighborhoodCache` — a
  snapshot of a cache whose store also held snapshots would recursively
  embed them.
* **Payload shape** — a snapshot is a flat ``{section name: state dict}``
  mapping.  Sections are produced by the ``state_dict()`` methods of the
  stateful classes (overlay, cache, query log, walkers, scheduler — the
  latter carrying the planning layer's prefetch ledger and chain roster
  when a dispatch planner is attached) and restored by their
  ``load_state()`` counterparts; this module never reaches into their
  internals.
"""

from __future__ import annotations

import abc
import json
import os
from typing import Callable, Dict, Optional, Tuple

from repro.datastore.kv import KeyValueStore
from repro.errors import SnapshotError

#: Format marker written into every snapshot header.
SNAPSHOT_FORMAT = "repro-snapshot"

#: Version of the on-disk layout; bumped on incompatible changes.
SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def _canonical(encoded: object) -> str:
    """Deterministic sort key for encoded set members."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


#: Registered extension codecs: exact type -> (tag, to-primitives function).
_EXTENSION_ENCODERS: Dict[type, Tuple[str, Callable[[object], object]]] = {}
#: Registered extension codecs: tag -> from-primitives function.
_EXTENSION_DECODERS: Dict[str, Callable[[object], object]] = {}


def register_codec(
    tag: str,
    cls: type,
    encode: Callable[[object], object],
    decode: Callable[[object], object],
    override: bool = False,
) -> None:
    """Register an extension codec for an application type.

    The base codec only knows primitives and containers; subsystems that
    snapshot richer objects (e.g. collected :class:`WalkSample` records in
    an event-driven scheduler's in-flight state) register a codec pair
    here.  ``encode`` must reduce an instance to values the base codec
    already supports; ``decode`` inverts it.  Registration is idempotent
    for an identical (tag, cls) pair, so repeated module imports are safe;
    any other duplicate is rejected — two subsystems silently fighting
    over one tag would corrupt every snapshot that crosses them.

    Args:
        tag: Snapshot tag; must start with ``"x:"`` to stay clear of the
            base codec's single-character tags.
        cls: Exact type to encode (subclasses are not matched — a snapshot
            must never silently widen a type).
        encode: Instance -> base-codec-supported value.
        decode: Inverse of ``encode``.
        override: Replace an existing registration for the same (tag, cls)
            pair instead of rejecting the conflict — a hook for tests that
            stub codecs; production registrations must never need it.

    Raises:
        SnapshotError: On malformed tags, or a duplicate tag/type
            registration without ``override``.
    """
    if not tag.startswith("x:"):
        raise SnapshotError(f"extension codec tag {tag!r} must start with 'x:'")
    existing = _EXTENSION_ENCODERS.get(cls)
    if existing is not None and existing[0] != tag:
        raise SnapshotError(
            f"type {cls.__name__} is already registered under extension codec tag "
            f"{existing[0]!r}; unregister it before rebinding to {tag!r}"
        )
    if tag in _EXTENSION_DECODERS and existing is None:
        raise SnapshotError(
            f"extension codec tag {tag!r} is already registered to another type; "
            "pick a distinct tag (or unregister_codec() the old one first)"
        )
    if existing is not None and not override:
        # Same (tag, cls): keep the first registration so repeated module
        # imports stay no-ops; an explicit override is the test hook.
        return
    _EXTENSION_ENCODERS[cls] = (tag, encode)
    _EXTENSION_DECODERS[tag] = decode


def unregister_codec(tag: str) -> bool:
    """Remove an extension codec by tag; returns whether one was removed.

    A test that registered a throwaway codec (or overrode a real one)
    uses this to restore the global registry; decoding a payload written
    under a tag after its codec is gone raises :class:`SnapshotError`
    (the unknown-tag failure), which is exactly the safety the tagged
    format is for.
    """
    if tag not in _EXTENSION_DECODERS:
        return False
    del _EXTENSION_DECODERS[tag]
    for cls, (registered_tag, _encode) in list(_EXTENSION_ENCODERS.items()):
        if registered_tag == tag:
            del _EXTENSION_ENCODERS[cls]
    return True


def codec_registered(tag: str) -> bool:
    """Whether an extension codec is currently registered under ``tag``."""
    return tag in _EXTENSION_DECODERS


def encode_value(value: object) -> object:
    """Encode ``value`` into a JSON-safe tagged structure.

    Supported types: ``None``, ``bool``, ``int``, ``float`` (exact, via
    hex — infinities and NaN included), ``str``, ``bytes``, ``tuple``,
    ``list``, ``set``/``frozenset`` (canonically ordered so identical sets
    serialize to identical bytes regardless of insertion/hash order), and
    ``dict`` with arbitrary hashable keys (insertion order preserved).

    Raises:
        SnapshotError: For unsupported types.
    """
    if value is None:
        return ["z"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        return ["f", value.hex()]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, bytes):
        return ["y", value.hex()]
    if isinstance(value, tuple):
        return ["t", [encode_value(v) for v in value]]
    if isinstance(value, list):
        return ["l", [encode_value(v) for v in value]]
    if isinstance(value, (set, frozenset)):
        members = sorted((encode_value(v) for v in value), key=_canonical)
        return ["S" if isinstance(value, set) else "F", members]
    if isinstance(value, dict):
        return ["d", [[encode_value(k), encode_value(v)] for k, v in value.items()]]
    extension = _EXTENSION_ENCODERS.get(type(value))
    if extension is not None:
        tag, to_primitives = extension
        return [tag, encode_value(to_primitives(value))]
    raise SnapshotError(f"cannot snapshot value of type {type(value).__name__}: {value!r}")


def decode_value(encoded: object) -> object:
    """Invert :func:`encode_value`.

    Raises:
        SnapshotError: On malformed input.
    """
    if not isinstance(encoded, list) or not encoded:
        raise SnapshotError(f"malformed snapshot value: {encoded!r}")
    tag = encoded[0]
    if tag == "z":
        return None
    if tag == "b":
        return bool(encoded[1])
    if tag == "i":
        return int(encoded[1])
    if tag == "f":
        return float.fromhex(encoded[1])
    if tag == "s":
        return str(encoded[1])
    if tag == "y":
        return bytes.fromhex(encoded[1])
    if tag == "t":
        return tuple(decode_value(v) for v in encoded[1])
    if tag == "l":
        return [decode_value(v) for v in encoded[1]]
    if tag == "S":
        return {decode_value(v) for v in encoded[1]}
    if tag == "F":
        return frozenset(decode_value(v) for v in encoded[1])
    if tag == "d":
        return {decode_value(k): decode_value(v) for k, v in encoded[1]}
    decoder = _EXTENSION_DECODERS.get(tag) if isinstance(tag, str) else None
    if decoder is not None:
        return decoder(decode_value(encoded[1]))
    raise SnapshotError(f"unknown snapshot tag {tag!r}")


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class SnapshotBackend(abc.ABC):
    """Pluggable persistence for snapshot payloads.

    A payload is ``{section name: state dict}``; backends store the
    codec-encoded form, so a written snapshot is isolated from later
    mutation of the live objects it was captured from.
    """

    @abc.abstractmethod
    def write(self, sections: Dict[str, object]) -> None:
        """Persist a payload, replacing any previous snapshot."""

    @abc.abstractmethod
    def read(self) -> Optional[Dict[str, object]]:
        """Load the stored payload, or ``None`` when no snapshot exists.

        Raises:
            SnapshotError: If a snapshot exists but cannot be decoded.
        """

    def exists(self) -> bool:
        """Whether a snapshot is currently stored."""
        return self.read() is not None


class JsonLinesBackend(SnapshotBackend):
    """One snapshot as an atomic JSON-lines file.

    Line 1 is a header (format marker, version, section names); each
    further line is one section: ``{"section": name, "data": <encoded>}``.
    Writes go to a sibling temp file and are published with
    :func:`os.replace`, so a crash mid-checkpoint never corrupts the
    previous snapshot.

    Args:
        path: Snapshot file location.
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self._path = os.fspath(path)

    @property
    def path(self) -> str:
        """The snapshot file path."""
        return self._path

    def write(self, sections: Dict[str, object]) -> None:
        header = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "sections": list(sections),
        }
        tmp = self._path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for name, state in sections.items():
                line = {"section": name, "data": encode_value(state)}
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        os.replace(tmp, self._path)

    def read(self) -> Optional[Dict[str, object]]:
        if not os.path.exists(self._path):
            return None
        try:
            with open(self._path) as fh:
                lines = [line for line in fh.read().splitlines() if line.strip()]
        except OSError as exc:  # pragma: no cover - filesystem failure
            raise SnapshotError(f"cannot read snapshot {self._path}: {exc}") from exc
        if not lines:
            raise SnapshotError(f"snapshot {self._path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot {self._path} has a corrupt header") from exc
        if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(f"snapshot {self._path} is not a {SNAPSHOT_FORMAT} file")
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot {self._path} has version {header.get('version')!r}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        sections: Dict[str, object] = {}
        for raw in lines[1:]:
            try:
                record = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise SnapshotError(f"snapshot {self._path} has a corrupt section line") from exc
            if not isinstance(record, dict) or "section" not in record or "data" not in record:
                raise SnapshotError(f"snapshot {self._path} has a malformed section line")
            sections[record["section"]] = decode_value(record["data"])
        missing = [name for name in header.get("sections", []) if name not in sections]
        if missing:
            raise SnapshotError(f"snapshot {self._path} is truncated; missing sections {missing}")
        return sections

    def exists(self) -> bool:
        return os.path.exists(self._path)


class KeyValueBackend(SnapshotBackend):
    """Snapshots stored inside a :class:`~repro.datastore.kv.KeyValueStore`.

    Sections live under ``("snapshot", namespace, ...)`` keys, so several
    named snapshots can share one dedicated store (do not reuse the store
    backing a live cache — snapshotting that cache would then embed prior
    snapshots).  Payloads are codec-encoded on write and decoded on read —
    a stored snapshot never aliases live sampler state.

    Args:
        store: Backing store; a fresh unbounded one by default.  Note that
            a *capacity-bounded* store may evict snapshot sections under
            LRU pressure, exactly as Redis would.
        namespace: Name distinguishing this snapshot from others in the
            same store.
    """

    def __init__(self, store: Optional[KeyValueStore] = None, namespace: str = "default") -> None:
        self._store = store if store is not None else KeyValueStore()
        self._namespace = namespace

    @property
    def store(self) -> KeyValueStore:
        """The backing key-value store."""
        return self._store

    def _header_key(self) -> tuple:
        return ("snapshot", self._namespace, "header")

    def _section_key(self, name: str) -> tuple:
        return ("snapshot", self._namespace, "section", name)

    def write(self, sections: Dict[str, object]) -> None:
        # Encode everything *before* touching the store: a codec failure
        # on a later section must not leave a mixed old/new snapshot.
        encoded = {name: encode_value(state) for name, state in sections.items()}
        previous = self._store.get(self._header_key())
        header = {"version": SNAPSHOT_VERSION, "sections": tuple(sections)}
        for name, payload in encoded.items():
            self._store.set(self._section_key(name), payload)
        self._store.set(self._header_key(), header)
        # Drop sections a previous snapshot wrote that this one did not.
        if isinstance(previous, dict):
            for name in previous.get("sections", ()):
                if name not in sections:
                    self._store.delete(self._section_key(name))

    def read(self) -> Optional[Dict[str, object]]:
        header = self._store.get(self._header_key())
        if header is None:
            return None
        if not isinstance(header, dict) or header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(f"snapshot namespace {self._namespace!r} has a corrupt header")
        sections: Dict[str, object] = {}
        for name in header.get("sections", ()):
            encoded = self._store.get(self._section_key(name))
            if encoded is None:
                raise SnapshotError(
                    f"snapshot namespace {self._namespace!r} lost section {name!r} "
                    "(evicted or expired from the backing store)"
                )
            sections[name] = decode_value(encoded)
        return sections

    def exists(self) -> bool:
        return self._store.contains(self._header_key())
