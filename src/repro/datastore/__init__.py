"""Local storage substrate.

The paper's implementation cached crawled data "in the in-memory Redis
database and the MongoDB database" (§V-A.1).  This subpackage provides the
equivalent roles in pure Python:

* :class:`~repro.datastore.kv.KeyValueStore` — Redis stand-in: string-keyed
  store with optional TTL expiry and LRU capacity, used to cache queried
  neighborhoods so duplicate queries are free.
* :class:`~repro.datastore.documents.DocumentStore` — MongoDB stand-in:
  id-keyed JSON-like documents with field queries, used for user profiles.
* :class:`~repro.datastore.querylog.QueryLog` — append-only log of interface
  queries with unique-query accounting (the paper's query-cost measure).
* :mod:`~repro.datastore.snapshot` — persistent snapshots of sampling
  state (overlay, cache, log, walker RNG) through pluggable backends, so
  the query budget already spent (§II-B) survives process exit.
* :class:`~repro.datastore.history.HistoryStore` — cross-run history
  artifacts: the known-neighborhood summary plus planning statistics,
  persisted so a *different* crawl can warm-start from knowledge an
  earlier one already paid for.
"""

from repro.datastore.documents import DocumentStore
from repro.datastore.history import HistoryRecord, HistoryStore, capture_history
from repro.datastore.kv import KeyValueStore
from repro.datastore.querylog import QueryLog, QueryRecord
from repro.datastore.snapshot import (
    JsonLinesBackend,
    KeyValueBackend,
    SnapshotBackend,
    decode_value,
    encode_value,
)

__all__ = [
    "DocumentStore",
    "HistoryRecord",
    "HistoryStore",
    "capture_history",
    "KeyValueStore",
    "QueryLog",
    "QueryRecord",
    "SnapshotBackend",
    "JsonLinesBackend",
    "KeyValueBackend",
    "encode_value",
    "decode_value",
]
