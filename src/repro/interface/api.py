"""The restrictive individual-user-query interface ``q(v)``.

This is the only door between a sampler and the social network, exactly as
in §II-A of the paper::

    q(v): SELECT * FROM D WHERE USER-ID = v

The response carries user ``v``'s profile attributes and the full neighbor
list.  The interface:

* bills one unit of query cost the *first* time each user is queried
  (repeats are served from the sampler-side cache for free — §II-B);
* enforces an optional provider rate limit on simulated time, advancing the
  clock automatically when throttled (so experiments measure query cost,
  not wall-clock);
* enforces an optional hard unique-query budget, letting experiments stop a
  sampler after a fixed spend;
* never exposes anything global: no node list, no edge count, no topology.

Samplers receive a :class:`RestrictedSocialAPI` and must work through it;
nothing in :mod:`repro.walks` or :mod:`repro.core` touches the underlying
graph directly.

The data source itself is pluggable: the API sits on any
:class:`~repro.interface.providers.SocialProvider` (in-memory graph,
seeded latency models, flaky backends with retries) and keeps the §II-B
billing semantics identical across all of them — a provider decides *what*
a fetch returns and *how long* it takes; the interface decides what it
*costs*.  Provider response latency is added to the simulated clock on
each billed fetch and tallied in :attr:`RestrictedSocialAPI.latency_spent`
for latency-aware schedulers.

:meth:`RestrictedSocialAPI.query_many` is the batched entry point: it keeps
the per-user billing semantics of ``q(v)`` bit-for-bit (cache hits free,
refusals billed once, one limiter token per billed fetch — so simulated
time is identical to a loop of singles) and degrades gracefully where a
loop would abort: private members are reported rather than raised, unknown
ids are reported, and budget exhaustion returns the partial prefix.
Follow-up work on the paper ("Walk, Not Wait"; history-reuse sampling)
shows batched neighborhood fetches are where multi-chain crawlers win;
this is the substrate for that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.datastore.documents import DocumentStore
from repro.datastore.querylog import QueryLog
from repro.errors import (
    PrivateUserError,
    QueryBudgetExhaustedError,
    SnapshotError,
    UnknownUserError,
)
from repro.graph.adjacency import Graph
from repro.interface.cache import NeighborhoodCache
from repro.interface.providers import InMemoryGraphProvider, SocialProvider
from repro.interface.ratelimit import RateLimiter, SimulatedClock, UnlimitedRateLimiter
from repro.obs.trace import (
    EVENT_LIMITER_WAIT,
    EVENT_QUERY,
    EVENT_REFUSAL,
    TraceRecorder,
)

Node = Hashable


@dataclasses.dataclass(frozen=True)
class QueryResponse:
    """What ``q(v)`` returns: the user, their attributes, their neighbors.

    Attributes:
        user: The queried user id.
        neighbors: All users connected to ``user`` (the full list, as OSN
            interfaces return it).
        attributes: Profile fields (e.g. ``self_description``); empty dict
            when the network has no attribute payload.
        from_cache: Whether this response was served locally (not billed).
        neighbor_seq: The same neighbors in a stable order, for O(1)
            uniform draws without sorting.  Optional at construction only:
            derived from ``neighbors`` in ``__post_init__`` when not
            supplied (hand-built responses in tests), so readers always
            see a tuple.
        latency: Simulated seconds the provider took to serve this
            response (0.0 for cache hits and zero-latency providers).
    """

    user: Node
    neighbors: FrozenSet[Node]
    attributes: Dict
    from_cache: bool
    neighbor_seq: Optional[Tuple[Node, ...]] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.neighbor_seq is None:
            object.__setattr__(self, "neighbor_seq", tuple(self.neighbors))

    @property
    def degree(self) -> int:
        """``k_user`` — the size of the returned neighbor list."""
        return len(self.neighbors)


@dataclasses.dataclass(frozen=True)
class BatchQueryResult:
    """Outcome of one :meth:`RestrictedSocialAPI.query_many` call.

    Attributes:
        responses: Successful responses keyed by user, in request order.
        private: Users that refused the query (each billed once on first
            contact, exactly as the single-query path bills refusals).
        unknown: Requested ids that do not exist in the network (free — the
            provider rejects them before any billable work).
        budget_exhausted: ``True`` when the unique-query budget ran out
            mid-batch; ``responses`` then holds the partial prefix and all
            accounting remains consistent with the work actually done.
    """

    responses: Dict[Node, QueryResponse]
    private: Tuple[Node, ...]
    unknown: Tuple[Node, ...]
    budget_exhausted: bool


class RestrictedSocialAPI:
    """The §II-B billing interface over a pluggable social provider.

    Args:
        graph: The data source — either a :class:`SocialProvider`
            implementation, or a bare :class:`Graph` which is wrapped in a
            zero-latency :class:`InMemoryGraphProvider` (the historical
            behavior, bit-for-bit).  The API holds a reference (not a
            copy); experiments must not mutate the topology while
            sampling.
        profiles: Optional document store of user attributes served with
            each query response.  Only valid with a bare graph — a
            provider owns its own attribute payloads.
        rate_limiter: Provider throttle; default unlimited.
        clock: Simulated clock; a fresh one is created if omitted.
        seconds_per_query: How much simulated time one billed query takes
            on top of the provider's response latency.
        query_budget: Optional hard cap on billed queries, after which
            :class:`QueryBudgetExhaustedError` is raised.
        inaccessible: Optional set of user ids whose profiles are private:
            they appear in neighbor lists but ``q(v)`` on them raises
            :class:`PrivateUserError`.  The refusal itself is billed once
            (real interfaces charge the request) and cached thereafter.
            Only valid with a bare graph — providers model their own
            refusals (see :class:`InMemoryGraphProvider`).
        cache: Sampler-side response cache; a fresh unbounded
            :class:`NeighborhoodCache` by default.  Injectable so
            bounded-memory crawls can run over an LRU-capped store —
            evicted users are re-fetched (and re-billed in *time*, never
            in unique-query cost, which the log owns).

    Raises:
        ValueError: On invalid numeric parameters, or when ``profiles`` /
            ``inaccessible`` are combined with a provider instance.

    Example:
        >>> g = Graph([(1, 2), (2, 3)])
        >>> api = RestrictedSocialAPI(g)
        >>> sorted(api.query(2).neighbors)
        [1, 3]
        >>> api.query_cost
        1
        >>> _ = api.query(2)  # cache hit, still 1 billed query
        >>> api.query_cost
        1
    """

    def __init__(
        self,
        graph: "Graph | SocialProvider",
        profiles: Optional[DocumentStore] = None,
        rate_limiter: Optional[RateLimiter] = None,
        clock: Optional[SimulatedClock] = None,
        seconds_per_query: float = 1.0,
        query_budget: Optional[int] = None,
        inaccessible: Optional[frozenset] = None,
        cache: Optional[NeighborhoodCache] = None,
    ) -> None:
        if seconds_per_query < 0:
            raise ValueError("seconds_per_query must be non-negative")
        if query_budget is not None and query_budget <= 0:
            raise ValueError("query_budget must be positive or None")
        if isinstance(graph, SocialProvider):
            if profiles is not None or inaccessible:
                raise ValueError(
                    "profiles/inaccessible belong to the provider; "
                    "configure them on the provider instance instead"
                )
            self._provider: SocialProvider = graph
        else:
            self._provider = InMemoryGraphProvider(
                graph, profiles=profiles, inaccessible=inaccessible
            )
        self._known_private: set = set()
        self._limiter = rate_limiter if rate_limiter is not None else UnlimitedRateLimiter()
        self._clock = clock if clock is not None else SimulatedClock()
        self._seconds_per_query = seconds_per_query
        self._budget = query_budget
        self._cache = cache if cache is not None else NeighborhoodCache()
        self._log = QueryLog()
        self._latency_spent = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._warm_users: FrozenSet[Node] = frozenset()
        self._warm_hits = 0
        self._recorder: Optional[TraceRecorder] = None
        self._obs_attrs: dict = {}
        self._obs_hits = "interface.cache_hits"
        self._obs_misses = "interface.cache_misses"
        self._obs_hit_rate = "interface.cache_hit_rate"
        self._obs_hit_counter = None
        self._obs_miss_counter = None
        self._obs_rate_series = None

    # ------------------------------------------------------------------
    # the public queries
    # ------------------------------------------------------------------
    def query(self, user: Node) -> QueryResponse:
        """Issue ``q(user)``.

        Served from the local cache when possible (free); otherwise billed
        against the rate limit and budget.

        Raises:
            UnknownUserError: If ``user`` is not in the network.
            PrivateUserError: If ``user`` refuses queries (billed once,
                cached thereafter).
            QueryBudgetExhaustedError: If the configured budget is spent.
        """
        if user in self._known_private:
            raise PrivateUserError(user)  # cached refusal — free
        cached = self._serve_cached(user)
        if cached is not None:
            return cached

        if not self._provider.has_user(user):
            raise UnknownUserError(user)
        if self._budget is not None and self._log.unique_queries >= self._budget:
            raise QueryBudgetExhaustedError(self._budget)
        try:
            return self._billed_fetch(user)
        except PrivateUserError:
            # The refusal consumes one billed request, then is cached.
            self._log.record(user, timestamp=self._clock.now())
            self._known_private.add(user)
            if self._recorder is not None:
                self._recorder.record(
                    EVENT_REFUSAL, self._clock.now(), user=user, **self._obs_attrs
                )
            raise

    def fetch_seq(self, user: Node) -> Tuple[Node, ...]:
        """Hot-path ``q(user)``: the stable neighbor sequence only.

        Billing, budget, refusal, and clock semantics are identical to
        :meth:`query` — every call logs one logical query, cache hits are
        free, the first contact with an uncached user is billed — but a
        cache hit skips the response rebuild entirely (no frozenset, no
        attribute copy, no :class:`QueryResponse`): one hot-lane dict
        read plus one log append.  This is what the walk engines' fast
        cached-step lane runs on; everything that needs attributes or a
        full response keeps using :meth:`query`.

        The hot lane only serves unbounded, non-TTL caches; bounded or
        TTL'd caches (and any miss) fall back to the full :meth:`query`
        path, so eviction/expiry semantics are untouched.

        Raises:
            Exactly what :meth:`query` raises, under the same conditions.
        """
        if user not in self._known_private:
            seq = self._cache.hot_seq(user)
            if seq is not None:
                self._cache_hits += 1
                if user in self._warm_users:
                    self._warm_hits += 1
                counter = self._obs_hit_counter
                if counter is not None:
                    # Counter-only on the hot lane: no event allocation,
                    # so recorder-on overhead stays within the CI budget.
                    counter.value += 1
                self._log.note(user, False, self._clock.now())
                return seq
        return self.query(user).neighbor_seq

    def query_many(self, users: Iterable[Node]) -> BatchQueryResult:
        """Issue ``q(u)`` for a batch of users.

        Per-user billing semantics are identical to :meth:`query` — cached
        users are free, each uncached user (including refusals) is billed
        exactly once and acquires one rate-limiter token, duplicates
        collapse to one bill, and total simulated time matches a loop of
        single queries.  What the batch changes is failure behaviour:

        * private members are *reported* in the result instead of raising,
          so one refusal cannot abort the batch;
        * ids unknown to the provider are reported, not raised;
        * when the unique-query budget runs out mid-batch, the partial
          results gathered so far are returned with ``budget_exhausted``
          set and the accounting (cost, cache, clock) reflects exactly the
          users actually fetched.

        Args:
            users: User ids to fetch; duplicates are collapsed (first
                occurrence wins the request-order slot).

        Returns:
            A :class:`BatchQueryResult`; never raises for per-user
            failures.
        """
        responses: Dict[Node, QueryResponse] = {}
        private = []
        unknown = []
        billable = []
        for user in dict.fromkeys(users):
            if user in self._known_private:
                private.append(user)
                continue
            cached = self._serve_cached(user)
            if cached is not None:
                responses[user] = cached
                continue
            if not self._provider.has_user(user):
                unknown.append(user)
                continue
            billable.append(user)

        exhausted = False
        for user in billable:
            if self._budget is not None and self._log.unique_queries >= self._budget:
                exhausted = True
                break
            try:
                responses[user] = self._billed_fetch(user)
            except PrivateUserError:
                self._log.record(user, timestamp=self._clock.now())
                self._known_private.add(user)
                if self._recorder is not None:
                    self._recorder.record(
                        EVENT_REFUSAL, self._clock.now(), user=user, **self._obs_attrs
                    )
                private.append(user)
        return BatchQueryResult(
            responses=responses,
            private=tuple(private),
            unknown=tuple(unknown),
            budget_exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    # shared query machinery
    # ------------------------------------------------------------------
    def _serve_cached(self, user: Node) -> Optional[QueryResponse]:
        """Build a free response from the cache, or ``None`` on a miss.

        Logged with an explicit ``billed=False``: under a *shared* cache
        (the service layer hands many tenant interfaces one
        ``NeighborhoodCache``) the hit may serve knowledge another
        tenant's budget paid for, and auto-derived billing would charge
        this tenant's unique set for a fetch it never issued.  For a
        private cache the explicit flag is identical to the derived one —
        a cached user is always already in this log's unique set.
        """
        cached = self._cache.neighbors(user)
        if cached is None:
            return None
        seq = self._cache.neighbor_seq(user)
        attrs = self._cache.attributes(user) or {}
        self._cache_hits += 1
        if user in self._warm_users:
            self._warm_hits += 1
        if self._obs_hit_counter is not None:
            self._obs_hit_counter.value += 1
        self._log.record(user, timestamp=self._clock.now(), billed=False)
        return QueryResponse(
            user=user,
            neighbors=cached,
            attributes=attrs,
            from_cache=True,
            neighbor_seq=seq,
        )

    def _billed_fetch(self, user: Node) -> QueryResponse:
        """Bill one fetch: read the provider, wait out the limiter, cache, log.

        The provider is consulted *before* any clock/limiter work so a
        refusal (which real providers return instantly and which this
        interface bills without consuming a limiter token) never advances
        simulated time — exactly the pre-provider semantics.
        """
        self._cache_misses += 1
        recorder = self._recorder
        started = 0.0
        if recorder is not None:
            self._obs_miss_counter.value += 1
            started = self._clock.now()
            # Stamp the issue time for the clockless fleet layer, whose
            # shard_fetch/retry events land at this simulated instant.
            recorder.hint_clock(started)
        fetched = self._provider.fetch(user)  # may raise PrivateUserError

        wait = self._limiter.try_acquire(self._clock.now())
        while wait > 0:
            self._clock.advance(wait)
            wait = self._limiter.try_acquire(self._clock.now())
        if recorder is not None:
            throttled = self._clock.now() - started
            if throttled > 0.0:
                recorder.record(
                    EVENT_LIMITER_WAIT, started, throttled, user=user, **self._obs_attrs
                )
        self._clock.advance(self._seconds_per_query + fetched.latency)
        self._latency_spent += fetched.latency
        if recorder is not None:
            now = self._clock.now()
            recorder.record(
                EVENT_QUERY,
                started,
                now - started,
                user=user,
                latency=fetched.latency,
                **self._obs_attrs,
            )
            hits, misses = self._cache_hits, self._cache_misses
            self._obs_rate_series.observe(now, hits / (hits + misses))

        seq = fetched.neighbor_seq
        neighbors = frozenset(seq)
        attrs = fetched.attributes
        self._cache.put(user, neighbors, attrs, seq=seq)
        self._log.record(user, timestamp=self._clock.now())
        return QueryResponse(
            user=user,
            neighbors=neighbors,
            attributes=attrs,
            from_cache=False,
            neighbor_seq=seq,
            latency=fetched.latency,
        )

    # ------------------------------------------------------------------
    # cost accounting and cached knowledge (all local, never billed)
    # ------------------------------------------------------------------
    @property
    def query_cost(self) -> int:
        """Billed (unique) queries so far — the paper's cost measure."""
        return self._log.unique_queries

    @property
    def total_queries(self) -> int:
        """All logical queries including cache hits."""
        return self._log.total_queries

    @property
    def log(self) -> QueryLog:
        """The underlying query log (read-only use)."""
        return self._log

    @property
    def clock(self) -> SimulatedClock:
        """The simulated clock (shared with the rate limiter)."""
        return self._clock

    @property
    def cache(self) -> NeighborhoodCache:
        """The sampler-side cache; exposes free degree lookups (Thm 5)."""
        return self._cache

    @property
    def provider(self) -> SocialProvider:
        """The raw data source this interface bills queries against."""
        return self._provider

    @property
    def latency_spent(self) -> float:
        """Total provider response latency billed so far (simulated s).

        This is the *serial* sum over billed fetches; multi-chain
        schedulers (:mod:`repro.walks.scheduler`) diff it around a chain's
        step to attribute each response's latency to the chain that
        triggered it, then redistribute those durations onto concurrent
        timelines.
        """
        return self._latency_spent

    @property
    def cache_hits(self) -> int:
        """Logical queries served from the local cache (free)."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Logical queries that had to consult the provider (billed).

        Counts every billed fetch attempt, refusals included — on an
        unbounded cache this equals ``query_cost``; under LRU/TTL caches
        it also counts re-fetches of evicted or expired users (billed in
        *time*, never again in unique-query cost, which the log owns).
        """
        return self._cache_misses

    # ------------------------------------------------------------------
    # observability (zero-cost when no recorder is attached)
    # ------------------------------------------------------------------
    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, or ``None`` (the default)."""
        return self._recorder

    def set_recorder(
        self, recorder: Optional[TraceRecorder], tenant: Optional[str] = None
    ) -> None:
        """Attach (or with ``None`` detach) a trace recorder.

        Attaching only affects *this* interface's hooks; use
        :func:`repro.obs.attach_stack` to instrument a whole
        provider → interface → walkers → planner stack with one call.

        Args:
            recorder: The sink, or ``None`` to detach.
            tenant: Optional tenant label.  When set, every interface
                event carries a ``tenant`` attribute and the cache
                counters/series move from the ``interface.*`` namespace
                to ``tenant.<label>.*`` — a shared service recorder can
                then reconcile each tenant's bill separately.  The names
                are precomputed here so the hot cache-hit lane stays
                allocation-free.
        """
        self._recorder = recorder
        if tenant is None:
            self._obs_attrs = {}
            prefix = "interface"
        else:
            self._obs_attrs = {"tenant": str(tenant)}
            prefix = f"tenant.{tenant}"
        self._obs_hits = prefix + ".cache_hits"
        self._obs_misses = prefix + ".cache_misses"
        self._obs_hit_rate = prefix + ".cache_hit_rate"
        # Pre-bound counter objects: the cached-step lane bumps `.value`
        # directly instead of paying a registry lookup per step, which is
        # what keeps recorder-on overhead inside the CI-gated 10% budget.
        if recorder is None:
            self._obs_hit_counter = None
            self._obs_miss_counter = None
            self._obs_rate_series = None
        else:
            self._obs_hit_counter = recorder.metrics.counter(self._obs_hits)
            self._obs_miss_counter = recorder.metrics.counter(self._obs_misses)
            self._obs_rate_series = recorder.metrics.series(self._obs_hit_rate)

    @property
    def may_have_private(self) -> bool:
        """Whether any user of this network can refuse queries.

        ``False`` lets walk engines skip accessibility filtering entirely —
        the common case for pure-algorithm experiments.
        """
        return self._provider.may_refuse

    # ------------------------------------------------------------------
    # cross-run warm starts (history preloaded, never billed)
    # ------------------------------------------------------------------
    def warm_start(self, neighborhoods: Dict, private: Iterable[Node] = ()) -> int:
        """Preload a prior run's paid-for knowledge into this interface.

        Every entry goes straight into the sampler-side cache via
        ``cache.put`` — never through :meth:`query` — so nothing is
        billed, no limiter token is consumed, and the simulated clock
        does not move: §II-B already charged these fetches in the run
        that recorded them.  Known refusals are replayed into the
        private set the same way, so a warm walk never re-bills a
        refusal the prior run paid for.

        Args:
            neighborhoods: ``{user: (neighbor_seq, attributes)}`` as a
                :class:`~repro.datastore.history.HistoryStore` records
                them.  Users already cached here are skipped (the live
                entry is fresher).
            private: Users a prior run's billed refusals identified.

        Returns:
            Number of neighborhoods actually preloaded.
        """
        count = 0
        for user, (seq, attrs) in neighborhoods.items():
            if not self._cache.has(user):
                seq = tuple(seq)
                self._cache.put(user, frozenset(seq), dict(attrs), seq=seq)
                count += 1
        self._known_private.update(private)
        self.note_warm_start(list(neighborhoods) + list(private))
        return count

    def note_warm_start(self, users: Iterable[Node]) -> None:
        """Mark ``users`` as warm-started for hit attribution.

        The service layer warms its *shared* cache once and then calls
        this on every tenant interface — the entries are already in
        place, but each tenant's :attr:`warm_hits` must still attribute
        the free hits to the warm start rather than to live sharing.
        """
        self._warm_users = self._warm_users | frozenset(users)

    @property
    def warm_user_count(self) -> int:
        """Users this interface was warm-started with (0 when cold)."""
        return len(self._warm_users)

    @property
    def warm_hits(self) -> int:
        """Cache hits served from warm-started (prior-run) knowledge."""
        return self._warm_hits

    def cached_degree(self, user: Node) -> Optional[int]:
        """Degree of ``user`` if previously queried, else ``None``. Free."""
        return self._cache.degree(user)

    def remaining_budget(self) -> Optional[int]:
        """Billed queries left under the budget, or ``None`` if unbounded."""
        if self._budget is None:
            return None
        return max(0, self._budget - self._log.unique_queries)

    # ------------------------------------------------------------------
    # provider-published metadata (the paper allows the total user count,
    # which providers publish for advertising — footnote 4)
    # ------------------------------------------------------------------
    def published_user_count(self) -> int:
        """Total user count, as providers publish it (footnote 4).

        This is the one piece of global information the paper permits; it
        enables COUNT/SUM estimation on top of AVG.
        """
        return self._provider.user_count()

    def is_known_private(self, user: Node) -> bool:
        """Whether a previous query already revealed ``user`` as private."""
        return user in self._known_private

    def reset_accounting(self) -> None:
        """Clear the cache, log, and budget spend (fresh experiment run)."""
        self._cache.clear()
        self._log = QueryLog()
        self._known_private = set()
        self._cache_hits = 0
        self._cache_misses = 0
        self._warm_users = frozenset()
        self._warm_hits = 0

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self, include_shared: bool = True) -> dict:
        """Serializable sampler-side interface state.

        Captures everything the crawl has *paid for* — the response cache,
        the query log (whose billed flags are §II-B's unique-query
        accounting), the set of users known to be private, the simulated
        clock, and the rate-limiter position.  The network itself, the
        profile store, and the budget/limit *configuration* are provider
        side: a restoring process reconstructs those and loads this state
        on top, after which billing continues exactly where it left off
        (cached users stay free, the budget remembers its spend, the rate
        limiter its window).

        Args:
            include_shared: When ``False``, omit the ``cache`` and
                ``provider`` sections.  The service layer hands many
                tenant interfaces one shared cache and one shared fleet;
                a *tenant-scoped* snapshot must carry only what this
                tenant owns (log, clock, limiter, private set, counters)
                — the shared layers live in the service's own sections.
        """
        state = {
            "clock_now": self._clock.now(),
            "known_private": set(self._known_private),
            "log": self._log.state_dict(),
            "limiter": self._limiter.state_dict(),
            "latency_spent": self._latency_spent,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "warm_users": frozenset(self._warm_users),
            "warm_hits": self._warm_hits,
        }
        if include_shared:
            state["cache"] = self._cache.state_dict()
            state["provider"] = self._provider.state_dict()
            if self._recorder is not None:
                # An in-flight trace rides full snapshots so a resumed
                # session keeps recording where it left off.  Tenant-scoped
                # snapshots skip it: a service-wide recorder is shared
                # state, and hibernation must not fork it per tenant.
                state["obs"] = self._recorder.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        """Replace cache/log/clock/limiter state with a captured one.

        Args:
            state: Output of :meth:`state_dict`.

        Raises:
            SnapshotError: If the captured clock reads earlier than this
                interface's clock (simulated time cannot run backwards).
        """
        delta = float(state["clock_now"]) - self._clock.now()
        if delta < 0:
            raise SnapshotError(
                "snapshot clock reads earlier than this interface's clock; "
                "restore into a freshly constructed interface"
            )
        self._clock.advance(delta)
        self._known_private = set(state["known_private"])
        # Tenant-scoped snapshots (``state_dict(include_shared=False)``)
        # omit the shared cache/provider sections — the service restores
        # those once from its own sections, never per tenant.
        if "cache" in state:
            self._cache.load_state(state["cache"])
        self._log.load_state(state["log"])
        self._limiter.load_state(state["limiter"])
        # Keys below joined the payload with the provider refactor; absent
        # in snapshots written before it (both default to "nothing spent").
        self._latency_spent = float(state.get("latency_spent", 0.0))
        self._cache_hits = int(state.get("cache_hits", 0))
        self._cache_misses = int(state.get("cache_misses", 0))
        self._warm_users = frozenset(state.get("warm_users", frozenset()))
        self._warm_hits = int(state.get("warm_hits", 0))
        if "provider" in state:
            self._provider.load_state(state["provider"])
        obs = state.get("obs")
        if obs is not None:
            recorder = self._recorder if self._recorder is not None else TraceRecorder()
            recorder.load_state(obs)
            self._recorder = recorder
            # load_state rebuilt every instrument, so the pre-bound hot-lane
            # counters point at dead objects until re-bound here.
            self._obs_hit_counter = recorder.metrics.counter(self._obs_hits)
            self._obs_miss_counter = recorder.metrics.counter(self._obs_misses)
            self._obs_rate_series = recorder.metrics.series(self._obs_hit_rate)
