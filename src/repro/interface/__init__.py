"""Restrictive web-interface simulation.

Models the paper's access model (§II-A): the only way to read the social
network is the individual-user query ``q(v)``, which returns user ``v``'s
profile attributes and the list of users connected to ``v``.  Providers
additionally rate-limit requests (the paper cites Facebook's 600 queries /
600 s and Twitter's 350 / hour); :mod:`repro.interface.ratelimit` implements
both fixed-window and token-bucket policies on simulated time, and
:class:`repro.interface.api.RestrictedSocialAPI` wires the graph, the rate
limiter, the local cache, and the unique-query cost accounting together.
"""

from repro.interface.api import BatchQueryResult, QueryResponse, RestrictedSocialAPI
from repro.interface.cache import NeighborhoodCache
from repro.interface.providers import (
    FlakyProvider,
    InMemoryGraphProvider,
    LatencyModelProvider,
    ProviderFetch,
    RetryStats,
    SocialProvider,
)
from repro.interface.session import SamplingSession
from repro.interface.telemetry import (
    InterfaceTelemetry,
    ShardTelemetry,
    collect_telemetry,
)
from repro.interface.ratelimit import (
    FixedWindowRateLimiter,
    RateLimiter,
    SimulatedClock,
    TokenBucketRateLimiter,
    UnlimitedRateLimiter,
)

__all__ = [
    "BatchQueryResult",
    "QueryResponse",
    "RestrictedSocialAPI",
    "NeighborhoodCache",
    "SocialProvider",
    "ProviderFetch",
    "InMemoryGraphProvider",
    "LatencyModelProvider",
    "FlakyProvider",
    "RetryStats",
    "SamplingSession",
    "InterfaceTelemetry",
    "ShardTelemetry",
    "collect_telemetry",
    "FixedWindowRateLimiter",
    "RateLimiter",
    "SimulatedClock",
    "TokenBucketRateLimiter",
    "UnlimitedRateLimiter",
]
