"""Persistent sampling sessions: checkpoint a walk, resume it bit-for-bit.

§II-B makes unique queries the cost of sampling — "any duplicate query can
be answered from local cache without consuming the query limit" — yet a
cache that dies with the process forces every experiment to re-pay the
full budget.  A :class:`SamplingSession` binds a sampler, its interface,
and (for MTO) its overlay to a snapshot backend so the paid-for state
survives:

* ``save()`` captures interface state (cache, query log, clock, rate
  limiter), overlay rewirings, and walker position/RNG into one snapshot;
* ``resume()`` loads that snapshot into freshly constructed objects in a
  new process, after which the walk produces the *identical* node
  sequence, estimator values, and unique-query count as an uninterrupted
  run — resumed steps over already-known nodes bill nothing;
* ``checkpoint_every=N`` installs a step hook so long crawls persist
  themselves periodically without driver cooperation.

Resuming requires reconstructing the provider side first (the hidden
graph, budget, and limiter *configuration* are not snapshotted — they are
the environment, not the sampler's knowledge), then building the same
sampler type with the same constructor arguments, then calling
``resume()``.  Construction costs one start-node query against the fresh
interface; ``resume()`` replaces the interface state wholesale, so that
bootstrap query leaves no trace in the restored accounting.

Example::

    backend = JsonLinesBackend("crawl.snapshot.jsonl")
    session = SamplingSession(api, sampler, backend, checkpoint_every=500)
    sampler.run(num_samples=2_000)          # checkpoints every 500 steps

    # ... later, in a fresh process ...
    api = network.interface()               # same provider configuration
    sampler = MTOSampler(api, start=s, seed=seed)   # same constructor args
    session = SamplingSession(api, sampler, JsonLinesBackend("crawl.snapshot.jsonl"))
    session.resume()                        # walk continues mid-stride
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.datastore.snapshot import SnapshotBackend
from repro.errors import SnapshotError
from repro.interface.api import RestrictedSocialAPI
from repro.interface.telemetry import collect_telemetry

#: Section names used in session snapshots.
SECTION_META = "meta"
SECTION_API = "api"
SECTION_OVERLAY = "overlay"
SECTION_SAMPLER = "sampler"


class SamplingSession:
    """Checkpoint/resume orchestration for one sampler over one interface.

    Args:
        api: The restrictive interface the sampler spends queries through.
        sampler: Any object exposing ``state_dict()``/``load_state()`` —
            a :class:`~repro.walks.base.RandomWalkSampler` subclass or a
            :class:`~repro.walks.parallel.ParallelWalkers` group.
        backend: Snapshot persistence
            (:class:`~repro.datastore.snapshot.JsonLinesBackend`,
            :class:`~repro.datastore.snapshot.KeyValueBackend`, or any
            :class:`~repro.datastore.snapshot.SnapshotBackend`).
        overlay: Overlay to snapshot alongside; auto-detected from
            ``sampler.overlay`` when omitted (MTO).  For parallel MTO
            chains pass the *shared* overlay explicitly — per-chain
            private overlays are not supported by one session.
        checkpoint_every: When given, installs ``sampler.set_checkpoint``
            so ``save()`` runs automatically every N committed steps
            (walk samplers) or lock-step rounds (parallel groups).
        metadata: Extra JSON-safe entries merged into the snapshot's meta
            section (experiment labels, dataset seeds, ...).
        history: Optional :class:`~repro.datastore.history.HistoryStore`
            to warm-start from: any artifact it holds preloads the
            interface's cache (never billed — §II-B was charged by the
            run that recorded it) and, when the sampler carries a bound
            dispatch planner, its history statistics.  Unlike
            ``resume()``, a warm start does not constrain the sampler
            type or seeds — history is knowledge, not position.  Call
            :meth:`save_history` after the run to write this run's
            (strictly larger) knowledge back.

    Raises:
        ValueError: If ``checkpoint_every`` is requested but the sampler
            has no ``set_checkpoint`` hook.
    """

    def __init__(
        self,
        api: RestrictedSocialAPI,
        sampler,
        backend: SnapshotBackend,
        overlay=None,
        checkpoint_every: Optional[int] = None,
        metadata: Optional[dict] = None,
        history=None,
    ) -> None:
        self._api = api
        self._sampler = sampler
        self._backend = backend
        self._overlay = overlay if overlay is not None else getattr(sampler, "overlay", None)
        self._metadata = dict(metadata or {})
        self._saves = 0
        self._history = history
        self._warmed_users = 0
        if history is not None:
            self._warmed_users = history.warm(api, planner=getattr(sampler, "planner", None))
        if checkpoint_every is not None:
            set_hook = getattr(sampler, "set_checkpoint", None)
            if set_hook is None:
                raise ValueError(
                    f"{type(sampler).__name__} has no set_checkpoint hook; "
                    "call save() explicitly instead"
                )
            set_hook(self._on_checkpoint, checkpoint_every)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> SnapshotBackend:
        """The snapshot backend."""
        return self._backend

    @property
    def saves(self) -> int:
        """Number of snapshots written by this session."""
        return self._saves

    @property
    def warmed_users(self) -> int:
        """Neighborhoods the ``history`` store preloaded (0 when cold)."""
        return self._warmed_users

    def save_history(self, metadata: Optional[dict] = None) -> Dict[str, dict]:
        """Write this run's paid-for knowledge to the attached history store.

        Raises:
            SnapshotError: When the session was constructed without a
                ``history`` store.
        """
        if self._history is None:
            raise SnapshotError(
                "this session has no history store; pass history=... at construction"
            )
        return self._history.save(
            self._api,
            planner=getattr(self._sampler, "planner", None),
            metadata=metadata,
        )

    def _on_checkpoint(self, _sampler) -> None:
        self.save()

    # ------------------------------------------------------------------
    def capture(self) -> Dict[str, dict]:
        """Assemble the full snapshot payload (without persisting it)."""
        steps = getattr(self._sampler, "steps", None)
        meta = dict(self._metadata)
        meta.update(
            {
                "sampler_type": type(self._sampler).__name__,
                "steps": steps,
                "query_cost": self._api.query_cost,
                "total_queries": self._api.total_queries,
            }
        )
        sections: Dict[str, dict] = {
            SECTION_META: meta,
            SECTION_API: self._api.state_dict(),
            SECTION_SAMPLER: self._sampler.state_dict(),
        }
        if self._overlay is not None:
            sections[SECTION_OVERLAY] = self._overlay.state_dict()
        return sections

    def save(self) -> Dict[str, dict]:
        """Capture and persist a snapshot; returns the payload written."""
        sections = self.capture()
        self._backend.write(sections)
        self._saves += 1
        return sections

    def resume(self) -> bool:
        """Load the backend's snapshot into the attached objects.

        Restore order matters: interface first (so the cache/log/clock are
        authoritative before anything reads them), then overlay, then
        sampler.  Returns ``False`` when the backend holds no snapshot —
        callers can use one code path for cold and warm starts.

        Returns:
            Whether a snapshot was found and applied.

        Raises:
            SnapshotError: If the snapshot is corrupt, was captured from a
                different sampler type, or carries an overlay this session
                has nowhere to restore to.
        """
        sections = self._backend.read()
        if sections is None:
            return False
        meta = sections.get(SECTION_META, {})
        expected = type(self._sampler).__name__
        found = meta.get("sampler_type")
        if found != expected:
            raise SnapshotError(f"snapshot was captured from {found!r}, not {expected!r}")
        if SECTION_API not in sections or SECTION_SAMPLER not in sections:
            raise SnapshotError("snapshot is missing the api/sampler sections")
        if SECTION_OVERLAY in sections and self._overlay is None:
            raise SnapshotError(
                "snapshot carries an overlay but this session has none to restore into"
            )
        self._api.load_state(sections[SECTION_API])
        if SECTION_OVERLAY in sections:
            self._overlay.load_state(sections[SECTION_OVERLAY])
        self._sampler.load_state(sections[SECTION_SAMPLER])
        return True

    def peek_meta(self) -> Optional[dict]:
        """The stored snapshot's meta section, or ``None`` when absent."""
        sections = self._backend.read()
        if sections is None:
            return None
        return dict(sections.get(SECTION_META, {}))

    def summary(self) -> Dict[str, object]:
        """Everything this run has spent, in one JSON-safe record.

        Callers used to poke ``api``/provider internals for latency and
        retry accounting; this gathers the whole picture — §II-B cost,
        simulated clock, provider latency, retry counts, cache hit/miss
        counts, and (over a fleet) per-shard breakdowns — via
        :func:`~repro.interface.telemetry.collect_telemetry` and its
        record's canonical ``to_dict()`` layout, plus the
        sampler's step count and this session's save count.  Samplers
        that plan (an :class:`~repro.walks.scheduler.EventDrivenWalkers`
        with a dispatch planner) additionally contribute per-chain step
        counts and the planning/prefetch accounting.
        """
        telemetry = collect_telemetry(self._api)
        summary: Dict[str, object] = telemetry.to_dict()
        summary.update(
            {
                "sampler_type": type(self._sampler).__name__,
                "steps": getattr(self._sampler, "steps", None),
                "saves": self._saves,
            }
        )
        chain_steps = getattr(self._sampler, "chain_steps", None)
        if chain_steps is not None:
            summary["chain_steps"] = tuple(chain_steps)
        planning_summary = getattr(self._sampler, "planning_summary", None)
        if callable(planning_summary):
            summary["planning"] = planning_summary()
        return summary
