"""Provider rate-limit policies on simulated time.

Real OSN providers throttle third parties; the paper cites Facebook
(600 open-graph queries per 600 seconds) and Twitter (350 requests per
hour).  Samplers in this library run on *simulated* time — a
:class:`SimulatedClock` that only advances when the interface charges a
query — so experiments are deterministic and instantaneous while still
exercising the limit logic.

Two standard policies are provided:

* :class:`FixedWindowRateLimiter` — at most N admissions per aligned window
  (Facebook/Twitter publish their limits in this form).
* :class:`TokenBucketRateLimiter` — burst-tolerant refill policy.
"""

from __future__ import annotations

import abc

from repro.errors import RateLimitExceededError


class SimulatedClock:
    """Monotonic logical clock shared by interface components."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward.

        Raises:
            ValueError: If ``seconds`` is negative.
        """
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds

    def __call__(self) -> float:
        return self._now


class RateLimiter(abc.ABC):
    """Admission-control policy for billed interface queries."""

    @abc.abstractmethod
    def try_acquire(self, now: float) -> float:
        """Attempt to admit one request at simulated time ``now``.

        Returns:
            0.0 if admitted; otherwise the number of seconds until the
            request *would* be admitted (the caller may sleep-and-retry on
            simulated time).
        """

    def acquire_or_raise(self, now: float) -> None:
        """Admit one request or raise.

        Raises:
            RateLimitExceededError: With ``retry_after`` set, if throttled.
        """
        wait = self.try_acquire(now)
        if wait > 0:
            raise RateLimitExceededError(wait)

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable limiter state; stateless policies return ``{}``."""
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a captured state (no-op for stateless policies)."""


class UnlimitedRateLimiter(RateLimiter):
    """No-op policy (the default for pure-algorithm experiments)."""

    def try_acquire(self, now: float) -> float:
        return 0.0


class FixedWindowRateLimiter(RateLimiter):
    """At most ``limit`` admissions per aligned window of ``window`` seconds.

    Facebook's published policy is ``FixedWindowRateLimiter(600, 600.0)``;
    Twitter's is ``FixedWindowRateLimiter(350, 3600.0)``.

    Args:
        limit: Admissions allowed per window.
        window: Window length in seconds.

    Raises:
        ValueError: For non-positive parameters.
    """

    def __init__(self, limit: int, window: float) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.limit = limit
        self.window = window
        self._window_start = 0.0
        self._count = 0

    def try_acquire(self, now: float) -> float:
        window_index = int(now // self.window)
        window_start = window_index * self.window
        if window_start != self._window_start:
            self._window_start = window_start
            self._count = 0
        if self._count < self.limit:
            self._count += 1
            return 0.0
        return (self._window_start + self.window) - now

    def state_dict(self) -> dict:
        """Current window anchor and admission count."""
        return {"window_start": self._window_start, "count": self._count}

    def load_state(self, state: dict) -> None:
        """Restore the window anchor/count captured by :meth:`state_dict`."""
        self._window_start = float(state["window_start"])
        self._count = int(state["count"])

    @classmethod
    def facebook(cls) -> "FixedWindowRateLimiter":
        """The Facebook policy the paper cites: 600 queries / 600 s."""
        return cls(600, 600.0)

    @classmethod
    def twitter(cls) -> "FixedWindowRateLimiter":
        """The Twitter policy the paper cites: 350 requests / hour."""
        return cls(350, 3600.0)


class TokenBucketRateLimiter(RateLimiter):
    """Token bucket: ``rate`` tokens/second refill up to ``burst`` capacity.

    Args:
        rate: Sustained admissions per second.
        burst: Bucket capacity (maximum burst size); defaults to ``rate``.

    Raises:
        ValueError: For non-positive parameters.
    """

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValueError("burst must be positive")
        self._tokens = self.burst
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def try_acquire(self, now: float) -> float:
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate

    def state_dict(self) -> dict:
        """Current token level and last-refill time."""
        return {"tokens": self._tokens, "last": self._last}

    def load_state(self, state: dict) -> None:
        """Restore the token level/refill time captured by :meth:`state_dict`."""
        self._tokens = float(state["tokens"])
        self._last = float(state["last"])
