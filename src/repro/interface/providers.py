"""Pluggable social-network providers: the raw data source under ``q(v)``.

The paper's interface model (§II-A) has two distinct responsibilities that
were historically welded together inside :class:`RestrictedSocialAPI`:

* the **provider** — whoever actually owns the data and answers a fetch
  for one user's neighbor list and profile, with whatever latency and
  reliability a real OSN backend exhibits;
* the **interface** — the §II-B economics on top: unique-query billing,
  the sampler-side cache, rate limits, budgets.

This module is the provider half.  :class:`SocialProvider` is the
protocol; the interface keeps all billing semantics unchanged over any
implementation:

* :class:`InMemoryGraphProvider` — the historical behavior: an in-memory
  graph plus optional profile documents, zero latency, optional private
  (query-refusing) users;
* :class:`LatencyModelProvider` — wraps another provider and attaches a
  deterministic, seeded per-user response latency drawn from a constant,
  uniform, or heavy-tailed distribution.  The latency a user's fetch
  incurs is a stable function of (seed, user), independent of fetch
  order, so multi-chain schedules stay reproducible;
* :class:`FlakyProvider` — wraps another provider with seeded transient
  timeouts.  Failed attempts are retried internally up to a bound, each
  timed-out attempt contributing its timeout latency to the response;
  retry accounting (attempts / timeouts / abandoned fetches) is exposed
  for robustness experiments.

The follow-up papers "Walk, Not Wait" (async, non-blocking queries) and
"Leveraging History" (reusing responses across chains) both start from
exactly this split: once latency and flakiness are provider properties,
an event-driven scheduler (:mod:`repro.walks.scheduler`) can overlap many
chains' in-flight queries instead of stalling every chain on the slowest
response.
"""

from __future__ import annotations

import abc
import dataclasses
import random
import zlib
from typing import Dict, Hashable, Optional, Tuple

from repro.datastore.documents import DocumentStore
from repro.datastore.snapshot import _canonical, encode_value
from repro.errors import PrivateUserError, ProviderTimeoutError, UnknownUserError
from repro.graph.adjacency import Graph

Node = Hashable

#: Latency distributions understood by :class:`LatencyModelProvider`.
LATENCY_DISTRIBUTIONS = ("constant", "uniform", "heavy_tailed")


@dataclasses.dataclass(frozen=True)
class ProviderFetch:
    """One raw provider response, before any interface-side accounting.

    Attributes:
        user: The fetched user id.
        neighbor_seq: The user's neighbors in the provider's stable order.
        attributes: Profile attribute payload (may be empty).
        latency: Simulated seconds this response took to arrive, including
            any retried/timed-out attempts.  Zero for in-memory providers.
        attempts: Fetch attempts consumed (1 unless a flaky layer retried).
        wasted_latency: The share of ``latency`` burnt on failed attempts
            (retry backoff); zero unless a flaky layer retried.  The
            causal profiler splits ``latency`` into useful shard time and
            retry backoff with this.
    """

    user: Node
    neighbor_seq: Tuple[Node, ...]
    attributes: Dict
    latency: float = 0.0
    attempts: int = 1
    wasted_latency: float = 0.0


class SocialProvider(abc.ABC):
    """Protocol for the raw data source behind the restrictive interface.

    A provider answers existence checks and per-user fetches, and (as real
    OSNs do — paper footnote 4) publishes its total user count.  It knows
    nothing about billing, caching, budgets, or rate limits: those are the
    interface's (§II-B) and remain in
    :class:`~repro.interface.api.RestrictedSocialAPI` unchanged.
    """

    @abc.abstractmethod
    def has_user(self, user: Node) -> bool:
        """Whether ``user`` exists in the network."""

    @abc.abstractmethod
    def fetch(self, user: Node) -> ProviderFetch:
        """Fetch ``user``'s neighbor list and attributes.

        Raises:
            UnknownUserError: If the user does not exist.
            PrivateUserError: If the user refuses individual queries.
            ProviderTimeoutError: If a flaky layer exhausted its retries.
        """

    @abc.abstractmethod
    def user_count(self) -> int:
        """Published total user count (the one global the paper permits)."""

    @property
    def may_refuse(self) -> bool:
        """Whether any user of this provider can refuse queries."""
        return False

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable mutable provider state; stateless providers: ``{}``.

        The *configuration* (graph, distributions, rates) is environment
        and is rebuilt by the restoring process; only state that evolves
        with the crawl (e.g. a flaky layer's RNG position) belongs here,
        so a resumed run replays the same failures bit-for-bit.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore a captured state (no-op for stateless providers)."""


class InMemoryGraphProvider(SocialProvider):
    """The historical data source: an in-memory graph, zero latency.

    Args:
        graph: The hidden social-network topology (held by reference).
        profiles: Optional document store of user attributes.
        inaccessible: Optional set of user ids whose profiles are private:
            they appear in neighbor lists but fetching them raises
            :class:`PrivateUserError` — the failure-injection surface the
            interface bills once and caches (§II-B refusal semantics).
    """

    def __init__(
        self,
        graph: Graph,
        profiles: Optional[DocumentStore] = None,
        inaccessible: Optional[frozenset] = None,
    ) -> None:
        self._graph = graph
        self._profiles = profiles
        self._inaccessible = frozenset(inaccessible) if inaccessible else frozenset()

    @property
    def graph(self) -> Graph:
        """The backing topology (experiments must not mutate it mid-run)."""
        return self._graph

    def has_user(self, user: Node) -> bool:
        return self._graph.has_node(user)

    def fetch(self, user: Node) -> ProviderFetch:
        if not self._graph.has_node(user):
            raise UnknownUserError(user)
        if user in self._inaccessible:
            raise PrivateUserError(user)
        attrs: Dict = {}
        if self._profiles is not None:
            doc = self._profiles.get_or_none(user)
            if doc is not None:
                attrs = doc
        return ProviderFetch(
            user=user,
            neighbor_seq=self._graph.neighbors_seq(user),
            attributes=attrs,
        )

    def user_count(self) -> int:
        return self._graph.num_nodes

    @property
    def may_refuse(self) -> bool:
        return bool(self._inaccessible)


def _stable_user_seed(seed: int, user: Node) -> int:
    """A process-stable 32-bit seed mixing ``seed`` with ``user``.

    Python's ``hash`` is salted per process for strings, so the per-user
    latency stream is anchored on the snapshot codec's canonical encoding
    instead — identical across runs and machines for any snapshotable id.
    """
    key = f"{seed}:{_canonical(encode_value(user))}"
    return zlib.crc32(key.encode("utf-8"))


class LatencyModelProvider(SocialProvider):
    """Attach deterministic seeded per-user latency to another provider.

    Each user's response latency is drawn once from the configured
    distribution using a stream seeded by (seed, user id) — stable across
    processes and independent of fetch order — then reused for every fetch
    of that user.  Per-user (rather than per-call) latency models the real
    dominant effect: response time tracks the user's data size and shard
    placement, so some users are consistently slow.

    Args:
        inner: The wrapped provider, or a bare :class:`Graph` (wrapped in
            a zero-latency :class:`InMemoryGraphProvider`).
        distribution: One of :data:`LATENCY_DISTRIBUTIONS` —
            ``"constant"`` (every user takes ``scale`` seconds),
            ``"uniform"`` (U(0, 2·scale), mean ``scale``), or
            ``"heavy_tailed"`` (Pareto with shape ``alpha``, scaled by
            ``scale`` — a few users are pathologically slow, the regime
            where event-driven scheduling wins).
        scale: Latency scale in simulated seconds.
        seed: Master seed for the per-user draws.
        alpha: Pareto shape for ``"heavy_tailed"`` (smaller = heavier).

    Raises:
        ValueError: On unknown distributions or non-positive parameters.
    """

    def __init__(
        self,
        inner: "SocialProvider | Graph",
        distribution: str = "heavy_tailed",
        scale: float = 1.0,
        seed: int = 0,
        alpha: float = 1.5,
    ) -> None:
        if distribution not in LATENCY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown latency distribution {distribution!r}; "
                f"expected one of {LATENCY_DISTRIBUTIONS}"
            )
        if scale < 0:
            raise ValueError("scale must be non-negative")
        if alpha <= 1.0:
            raise ValueError("alpha must exceed 1.0 (finite-mean Pareto)")
        self._inner = inner if isinstance(inner, SocialProvider) else InMemoryGraphProvider(inner)
        self._distribution = distribution
        self._scale = float(scale)
        self._seed = int(seed)
        self._alpha = float(alpha)
        # user -> drawn latency; pure function of (seed, user), memoized.
        self._drawn: Dict[Node, float] = {}

    @property
    def inner(self) -> SocialProvider:
        """The wrapped provider."""
        return self._inner

    @property
    def distribution(self) -> str:
        """The configured latency distribution name."""
        return self._distribution

    def latency_of(self, user: Node) -> float:
        """The deterministic latency every fetch of ``user`` incurs."""
        latency = self._drawn.get(user)
        if latency is None:
            rng = random.Random(_stable_user_seed(self._seed, user))
            if self._distribution == "constant":
                latency = self._scale
            elif self._distribution == "uniform":
                latency = rng.uniform(0.0, 2.0 * self._scale)
            else:  # heavy_tailed
                latency = self._scale * rng.paretovariate(self._alpha)
            self._drawn[user] = latency
        return latency

    def has_user(self, user: Node) -> bool:
        return self._inner.has_user(user)

    def fetch(self, user: Node) -> ProviderFetch:
        fetched = self._inner.fetch(user)
        return dataclasses.replace(fetched, latency=fetched.latency + self.latency_of(user))

    def user_count(self) -> int:
        return self._inner.user_count()

    @property
    def may_refuse(self) -> bool:
        return self._inner.may_refuse

    def state_dict(self) -> dict:
        """Delegates to the wrapped provider (the draws are re-derivable)."""
        return {"inner": self._inner.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore the wrapped provider's state."""
        self._inner.load_state(state.get("inner", {}))


@dataclasses.dataclass(frozen=True)
class RetryStats:
    """Accounting of a :class:`FlakyProvider`'s fetch attempts.

    Attributes:
        fetches: Logical fetches requested by the interface.
        attempts: Physical attempts issued (>= fetches when retries fired).
        timeouts: Attempts that timed out and were retried or abandoned.
        abandoned: Fetches that exhausted every attempt and raised
            :class:`ProviderTimeoutError`.
    """

    fetches: int
    attempts: int
    timeouts: int
    abandoned: int


class FlakyProvider(SocialProvider):
    """Seeded transient timeouts with bounded in-provider retries.

    Real crawls see dropped connections and 5xx responses constantly; the
    standard client behavior is to retry with a timeout.  This layer
    simulates that: each attempt times out with probability
    ``failure_rate`` (drawn from a seeded stream, so runs are
    reproducible); timed-out attempts cost ``timeout_latency`` simulated
    seconds each and are retried up to ``max_attempts`` in total before
    the fetch is abandoned with :class:`ProviderTimeoutError`.  Retry
    latency reaches the simulated clock only through a *completed*
    response; an abandoned fetch bills neither cost nor time (the wasted
    seconds ride on the raised error's ``wasted_latency`` for callers
    that catch and keep their own books).

    Permanent refusals (private users) are the wrapped provider's business
    and propagate immediately on the first non-timed-out attempt.

    Args:
        inner: The wrapped provider, or a bare :class:`Graph`.
        failure_rate: Per-attempt timeout probability in [0, 1).
        seed: Seed for the failure stream.
        max_attempts: Attempts per fetch before abandoning.
        timeout_latency: Simulated seconds one timed-out attempt costs.

    Raises:
        ValueError: On out-of-range parameters.
    """

    def __init__(
        self,
        inner: "SocialProvider | Graph",
        failure_rate: float = 0.1,
        seed: int = 0,
        max_attempts: int = 8,
        timeout_latency: float = 5.0,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if timeout_latency < 0:
            raise ValueError("timeout_latency must be non-negative")
        self._inner = inner if isinstance(inner, SocialProvider) else InMemoryGraphProvider(inner)
        self._failure_rate = float(failure_rate)
        self._max_attempts = int(max_attempts)
        self._timeout_latency = float(timeout_latency)
        self._rng = random.Random(seed)
        self._fetches = 0
        self._attempts = 0
        self._timeouts = 0
        self._abandoned = 0

    @property
    def inner(self) -> SocialProvider:
        """The wrapped provider."""
        return self._inner

    @property
    def retry_stats(self) -> RetryStats:
        """Retry accounting so far."""
        return RetryStats(
            fetches=self._fetches,
            attempts=self._attempts,
            timeouts=self._timeouts,
            abandoned=self._abandoned,
        )

    def has_user(self, user: Node) -> bool:
        return self._inner.has_user(user)

    def fetch(self, user: Node) -> ProviderFetch:
        self._fetches += 1
        wasted = 0.0
        for attempt in range(1, self._max_attempts + 1):
            self._attempts += 1
            if self._rng.random() < self._failure_rate:
                self._timeouts += 1
                wasted += self._timeout_latency
                continue
            fetched = self._inner.fetch(user)  # refusals propagate un-retried
            return dataclasses.replace(
                fetched,
                latency=fetched.latency + wasted,
                attempts=attempt,
                wasted_latency=fetched.wasted_latency + wasted,
            )
        self._abandoned += 1
        raise ProviderTimeoutError(user, self._max_attempts, wasted_latency=wasted)

    def user_count(self) -> int:
        return self._inner.user_count()

    @property
    def may_refuse(self) -> bool:
        return self._inner.may_refuse

    def state_dict(self) -> dict:
        """RNG position + counters: a resumed run replays the same failures."""
        return {
            "rng": self._rng.getstate(),
            "fetches": self._fetches,
            "attempts": self._attempts,
            "timeouts": self._timeouts,
            "abandoned": self._abandoned,
            "inner": self._inner.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore the failure stream and counters captured by ``state_dict``."""
        self._rng.setstate(state["rng"])
        self._fetches = int(state["fetches"])
        self._attempts = int(state["attempts"])
        self._timeouts = int(state["timeouts"])
        self._abandoned = int(state["abandoned"])
        self._inner.load_state(state.get("inner", {}))
