"""Sampler-side neighborhood cache backed by the key-value store.

Every billed ``q(v)`` response — the neighbor list plus profile attributes
— is written here, so repeat queries are served locally for free (the
paper's query-cost model) and the MTO extension criterion (Theorem 5) can
look up *previously seen degrees* without spending queries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Sequence, Tuple

from repro.datastore.kv import KeyValueStore
from repro.errors import DataStoreError

Node = Hashable


class NeighborhoodCache:
    """Caches neighbor sets and profile attributes per queried user.

    Args:
        store: Backing key-value store (a fresh unbounded store by
            default).  Pass a capacity-bounded store for bounded-memory
            crawls — evicted users simply read as unknown again.
        ttl: Optional freshness bound in store-clock seconds applied to
            every entry: a neighborhood older than ``ttl`` expires and
            the user reads as unknown (real crawls re-fetch stale
            neighborhoods; §II-B unique-query cost is unaffected — the
            query log, not the cache, owns billing).

    Raises:
        DataStoreError: On a non-positive ``ttl``.
    """

    def __init__(
        self, store: Optional[KeyValueStore] = None, ttl: Optional[float] = None
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise DataStoreError("cache ttl must be positive or None")
        self._store = store if store is not None else KeyValueStore()
        self._ttl = ttl
        # Hot lane: user -> stable neighbor tuple, a plain-dict mirror of
        # the store's "seq" entries for the walk engines' cached-step fast
        # path.  Only coherent when nothing can silently drop entries —
        # no TTL and an unbounded store — so it is disabled otherwise.
        # Foreign writes through a *shared* store (a second cache object
        # over the same KeyValueStore) are detected via the store's write
        # version and flush the lane.
        self._hot: Dict[Node, Tuple[Node, ...]] = {}
        self._hot_enabled = ttl is None and self._store.capacity is None
        self._hot_version = self._store.version

    @staticmethod
    def _nbr_key(user: Node) -> tuple:
        return ("nbrs", user)

    @staticmethod
    def _seq_key(user: Node) -> tuple:
        return ("seq", user)

    @staticmethod
    def _attr_key(user: Node) -> tuple:
        return ("attrs", user)

    def put(
        self,
        user: Node,
        neighbors: FrozenSet[Node],
        attributes: Dict,
        seq: Optional[Sequence[Node]] = None,
    ) -> None:
        """Store one query response.

        Args:
            user: The queried user id.
            neighbors: The neighbor set.
            seq: Stable ordering of ``neighbors`` for O(1) uniform draws;
                derived from the set when omitted (legacy callers).
            attributes: Profile attributes.
        """
        seq_tuple = tuple(seq) if seq is not None else tuple(neighbors)
        version_before = self._store.version
        self._store.set(self._nbr_key(user), frozenset(neighbors), ttl=self._ttl)
        self._store.set(self._seq_key(user), seq_tuple, ttl=self._ttl)
        self._store.set(self._attr_key(user), dict(attributes), ttl=self._ttl)
        if self._hot_enabled:
            if version_before != self._hot_version:
                # A foreign writer touched the shared store since the lane
                # last synced; drop everything it might have invalidated.
                self._hot.clear()
            self._hot[user] = seq_tuple
            self._hot_version = self._store.version

    def hot_seq(self, user: Node) -> Optional[Tuple[Node, ...]]:
        """Hot-lane read: the stable neighbor tuple, or ``None``.

        The walk engines' cached-step fast path — one plain-dict lookup
        instead of three store reads plus a response rebuild.  Answers
        ``None`` (callers then take the full :meth:`neighbor_seq` /
        interface path) whenever the lane cannot guarantee coherence:
        TTL'd or capacity-bounded stores, a foreign write through a
        shared store since the last sync, or simply a user this cache
        object has not mirrored yet.  A miss for a user the *store* does
        hold repopulates the lane from the store.
        """
        if not self._hot_enabled:
            return None
        if self._store.version != self._hot_version:
            self._hot.clear()
            self._hot_version = self._store.version
        seq = self._hot.get(user)
        if seq is not None:
            return seq
        # Shared-store entries written by another cache object (or lane
        # flushes) land here: re-mirror from the store once, then serve
        # from the lane.
        stored = self.neighbor_seq(user)
        if stored is not None:
            self._hot[user] = stored
        return stored

    def has(self, user: Node) -> bool:
        """Whether ``user``'s response is cached."""
        return self._store.contains(self._nbr_key(user))

    def neighbors(self, user: Node) -> Optional[FrozenSet[Node]]:
        """Cached neighbor set, or ``None`` if not cached."""
        value = self._store.get(self._nbr_key(user))
        return value if isinstance(value, frozenset) else None

    def neighbor_seq(self, user: Node) -> Optional[Tuple[Node, ...]]:
        """Cached stable neighbor ordering, or ``None`` if not cached."""
        value = self._store.get(self._seq_key(user))
        return value if isinstance(value, tuple) else None

    def attributes(self, user: Node) -> Optional[Dict]:
        """Cached attribute dict (copy), or ``None`` if not cached."""
        value = self._store.get(self._attr_key(user))
        return dict(value) if isinstance(value, dict) else None

    def degree(self, user: Node) -> Optional[int]:
        """Cached degree of ``user`` — the Theorem 5 side channel.

        Returns ``None`` when the user has never been queried; never issues
        a query itself.
        """
        nbrs = self.neighbors(user)
        return len(nbrs) if nbrs is not None else None

    def known_users(self) -> frozenset:
        """All user ids with cached responses."""
        return frozenset(
            key[1] for key in self._store.keys() if isinstance(key, tuple) and key[0] == "nbrs"
        )

    def known_count(self) -> int:
        """Number of users with live cached responses (expired excluded)."""
        return sum(
            1 for key in self._store.keys() if isinstance(key, tuple) and key[0] == "nbrs"
        )

    def clear(self) -> None:
        """Drop everything."""
        self._store.clear()
        self._hot.clear()
        self._hot_version = self._store.version

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable state (delegates to the backing store)."""
        return {"store": self._store.state_dict()}

    def load_state(self, state: dict) -> None:
        """Replace cached responses with a captured state.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._store.load_state(state["store"])
        self._hot.clear()
        self._hot_version = self._store.version
