"""One-stop telemetry over an interface and its provider stack.

Callers used to poke provider internals to answer "what did this run
cost?": ``api.latency_spent`` here, a ``FlakyProvider.retry_stats``
somewhere inside the stack there, per-shard books on the fleet.
:func:`collect_telemetry` walks the whole stack once — ``inner`` links
and fleet shards included — and returns a single
:class:`InterfaceTelemetry` record that experiment drivers, run results
(:class:`~repro.walks.scheduler.EventDrivenRun`), and
:meth:`~repro.interface.session.SamplingSession.summary` all share.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional

from repro.interface.api import RestrictedSocialAPI
from repro.interface.providers import SocialProvider


@dataclasses.dataclass(frozen=True)
class ShardTelemetry:
    """Read-only per-shard breakdown (one row per fleet shard).

    Attributes:
        queries: Fetch requests the shard served (refusals included).
        latency_spent: Total simulated response latency at the shard.
        retries: Flaky-layer retry attempts beyond the first.
        disrupted: Requests served inside degraded/outage windows.
        bursts: Coalesced round trips dispatched to the shard.
        max_in_flight: Largest burst depth the shard has carried.
        prefetched: Planner-issued predictive fetches the shard served.
        tenants: Per-tenant books (``label -> {"queries", "latency_spent"}``)
            when a service layer attributed fetches, else empty.
    """

    queries: int
    latency_spent: float
    retries: int
    disrupted: int
    bursts: int
    max_in_flight: int
    prefetched: int = 0
    tenants: Optional[dict] = None

    def to_dict(self) -> dict:
        """This row as a plain dict — the canonical JSON/report shape."""
        data = dataclasses.asdict(self)
        if self.tenants is not None:
            data["tenants"] = {label: dict(books) for label, books in self.tenants.items()}
        return data


@dataclasses.dataclass(frozen=True)
class InterfaceTelemetry:
    """Everything one run spent, in one record.

    Attributes:
        query_cost: Billed unique queries (§II-B's cost measure).
        total_queries: All logical queries including cache hits.
        latency_spent: Total provider response latency billed (serial sum
            over billed fetches, in simulated seconds).
        clock_now: The interface's simulated-clock reading.
        fetch_attempts: Physical fetch attempts across every flaky layer
            in the stack (0 when no flaky layer exists).
        retries: Attempts beyond the first — timed-out-and-retried fetches.
        abandoned: Fetches that exhausted every attempt.
        shards: Per-shard breakdowns keyed by shard index, or ``None``
            when the stack has no fleet.
        cache_hits: Logical queries the local cache served for free.
        cache_misses: Logical queries that consulted the provider
            (billed fetches, refusals and LRU/TTL re-fetches included).
        prefetched: Planner-issued predictive fetches across the fleet
            (0 without a planning layer).
        warm_users: Neighborhoods preloaded from a prior run's
            :class:`~repro.datastore.history.HistoryStore` (0 when the
            run started cold).
        warm_hits: Cache hits served from that warm-started knowledge —
            queries a cold run would have billed.
    """

    query_cost: int
    total_queries: int
    latency_spent: float
    clock_now: float
    fetch_attempts: int
    retries: int
    abandoned: int
    shards: Optional[Dict[int, ShardTelemetry]]
    cache_hits: int = 0
    cache_misses: int = 0
    prefetched: int = 0
    warm_users: int = 0
    warm_hits: int = 0

    def to_dict(self) -> dict:
        """The whole record as plain dicts — one canonical JSON shape.

        Experiment drivers, benchmark reports, and session summaries all
        serialize telemetry through this method instead of hand-rolling
        ``dataclasses.asdict`` calls, so every JSON report shares one
        field layout.  Shard rows are emitted in ascending shard order.
        """
        data = dataclasses.asdict(self)
        if self.shards is not None:
            data["shards"] = {
                shard: row.to_dict() for shard, row in sorted(self.shards.items())
            }
        return data

    def format_summary(self) -> str:
        """A compact human-readable multi-line summary."""
        lines = [
            "telemetry: {} unique queries ({} total), {:.1f}s provider latency, "
            "clock at {:.1f}s".format(
                self.query_cost, self.total_queries, self.latency_spent, self.clock_now
            )
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                "  cache: {} hits / {} misses ({:.1%} hit rate){}".format(
                    self.cache_hits,
                    self.cache_misses,
                    self.cache_hits / (self.cache_hits + self.cache_misses),
                    f", {self.prefetched} prefetched" if self.prefetched else "",
                )
            )
        if self.warm_users:
            lines.append(
                "  warm start: {} preloaded neighborhoods, {} hits served "
                "from history".format(self.warm_users, self.warm_hits)
            )
        if self.fetch_attempts:
            lines.append(
                "  retries: {} extra attempts over {} fetch attempts "
                "({} abandoned)".format(self.retries, self.fetch_attempts, self.abandoned)
            )
        if self.shards is not None:
            for shard, row in sorted(self.shards.items()):
                lines.append(
                    "  shard {:>2}: {:>6} queries  {:>10.1f}s latency  "
                    "{:>4} retries  {:>4} disrupted  {:>4} bursts (depth <= {})"
                    "  {:>4} prefetched".format(
                        shard,
                        row.queries,
                        row.latency_spent,
                        row.retries,
                        row.disrupted,
                        row.bursts,
                        row.max_in_flight,
                        row.prefetched,
                    )
                )
        return "\n".join(lines)


def iter_provider_stack(provider: SocialProvider) -> Iterator[SocialProvider]:
    """Yield every provider in a stack: the root, ``inner`` links, shards.

    Each distinct provider is yielded exactly once, depth-first from the
    root (shards before ``inner`` links), so a provider *shared* between
    two branches — one latency layer mounted under several shards, a
    fleet-of-fleets reusing a stack — contributes to aggregate telemetry
    once instead of once per path.  A true cycle (a provider that is its
    own transitive ``inner``/shard) raises instead of silently truncating
    the walk and under-reporting totals.

    Raises:
        RuntimeError: If the stack contains a cycle.
    """
    yielded = set()

    def _walk(current: SocialProvider, path: frozenset) -> Iterator[SocialProvider]:
        ident = id(current)
        if ident in path:
            raise RuntimeError(
                "provider stack contains a cycle through "
                f"{type(current).__name__}; telemetry totals would be wrong"
            )
        if ident in yielded:
            return
        yielded.add(ident)
        yield current
        deeper = path | {ident}
        shards = getattr(current, "shards", None)
        if shards is not None:
            for shard in shards:
                yield from _walk(shard, deeper)
        inner = getattr(current, "inner", None)
        if inner is not None:
            yield from _walk(inner, deeper)

    yield from _walk(provider, frozenset())


def collect_telemetry(api: RestrictedSocialAPI) -> InterfaceTelemetry:
    """Gather the full cost/latency/retry/shard picture for one interface."""
    attempts = retries = abandoned = 0
    shards: Optional[Dict[int, ShardTelemetry]] = None
    for provider in iter_provider_stack(api.provider):
        retry_stats = getattr(provider, "retry_stats", None)
        if retry_stats is not None:
            attempts += retry_stats.attempts
            retries += retry_stats.attempts - retry_stats.fetches
            abandoned += retry_stats.abandoned
        stats = getattr(provider, "stats", None)
        if (
            shards is None
            and stats is not None
            and getattr(provider, "router", None) is not None
        ):
            # First fleet wins: in a fleet-of-fleets stack the outermost
            # ShardedProvider (the one the walk actually routes through,
            # matching find_fleet) owns the per-shard breakdown.
            shards = {
                shard: ShardTelemetry(
                    queries=row.queries,
                    latency_spent=row.latency_spent,
                    retries=row.retries,
                    disrupted=row.disrupted,
                    bursts=row.bursts,
                    max_in_flight=row.max_in_flight,
                    prefetched=row.prefetched,
                    tenants={k: dict(v) for k, v in row.tenants.items()} or None,
                )
                for shard, row in enumerate(stats)
            }
    return InterfaceTelemetry(
        query_cost=api.query_cost,
        total_queries=api.total_queries,
        latency_spent=api.latency_spent,
        clock_now=api.clock.now(),
        fetch_attempts=attempts,
        retries=retries,
        abandoned=abandoned,
        shards=shards,
        cache_hits=api.cache_hits,
        cache_misses=api.cache_misses,
        prefetched=sum(row.prefetched for row in shards.values()) if shards else 0,
        warm_users=api.warm_user_count,
        warm_hits=api.warm_hits,
    )


def shard_breakdown_dict(telemetry: InterfaceTelemetry) -> Optional[Dict[int, dict]]:
    """The per-shard breakdown as plain dicts (JSON/report-friendly)."""
    if telemetry.shards is None:
        return None
    return {shard: row.to_dict() for shard, row in sorted(telemetry.shards.items())}
