"""Reproduction of *Faster Random Walks By Rewiring Online Social Networks
On-The-Fly* (Zhou, Zhang, Gong, Das — ICDE 2013).

The package implements the paper's **MTO-Sampler** — a random-walk sampler
for online social networks that builds a virtual overlay topology on-the-fly
(removing provably non-cross-cutting edges, replacing edges around degree-3
nodes) to raise graph conductance and cut the query cost of convergence —
together with every substrate the paper's evaluation needs: the restrictive
``q(v)`` web-interface model with rate limits and caching, SRW / MHRW /
Random-Jump baselines, importance-sampling aggregate estimation, the Geweke
convergence diagnostic, spectral mixing-time and conductance analysis,
synthetic graph models (latent space, barbell, community models), dataset
stand-ins, and one experiment driver per table/figure in the paper.

Quickstart::

    from repro import AggregateQuery, MTOSampler, estimate
    from repro.datasets import load

    net = load("epinions_like", seed=0)
    api = net.interface()
    sampler = MTOSampler(api, start=net.seed_node(), seed=1)
    run = sampler.run(num_samples=500)
    result = estimate(AggregateQuery.average_degree(), run.samples, api)
    print(result.estimate, "for", result.query_cost, "queries")
"""

from repro.aggregates.queries import AggregateQuery, ground_truth
from repro.compose import (
    FleetSpec,
    PlannerSpec,
    ProviderSpec,
    RateLimitSpec,
    StackConfig,
    WalkSpec,
    build_fleet,
    build_stack,
)
from repro.convergence.geweke import GewekeDiagnostic
from repro.core.estimators import EstimationResult, Estimator, estimate
from repro.core.mto import MTOSampler
from repro.core.overlay import OverlayGraph, build_overlay_fixpoint
from repro.datastore.snapshot import JsonLinesBackend, KeyValueBackend, SnapshotBackend
from repro.graph.adjacency import Graph
from repro.interface.api import RestrictedSocialAPI
from repro.fleet import ShardRouter, ShardedProvider, sharded_fleet
from repro.interface.providers import (
    FlakyProvider,
    InMemoryGraphProvider,
    LatencyModelProvider,
    SocialProvider,
)
from repro.interface.session import SamplingSession
from repro.interface.telemetry import collect_telemetry
from repro.obs import (
    SLO,
    MetricsRegistry,
    SLOWatcher,
    TraceDiff,
    TraceRecorder,
    attach_stack,
    attribute_run,
    attribute_service,
    build_dag,
    diff_traces,
    export_chrome_trace,
    export_jsonl,
    filter_events,
    read_jsonl,
    reconcile_attribution,
    reconcile_run,
    reconcile_service,
)
from repro.service import SamplingService, TenantSession
from repro.walks.executor import MultiprocessChainExecutor
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.parallel import ParallelWalkers
from repro.walks.rj import RandomJumpWalk
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk

__version__ = "1.0.0"

__all__ = [
    "AggregateQuery",
    "ground_truth",
    "GewekeDiagnostic",
    "EstimationResult",
    "Estimator",
    "estimate",
    "MTOSampler",
    "OverlayGraph",
    "build_overlay_fixpoint",
    "Graph",
    "RestrictedSocialAPI",
    "SocialProvider",
    "InMemoryGraphProvider",
    "LatencyModelProvider",
    "FlakyProvider",
    "ShardRouter",
    "ShardedProvider",
    "sharded_fleet",
    "FleetSpec",
    "ProviderSpec",
    "PlannerSpec",
    "RateLimitSpec",
    "StackConfig",
    "WalkSpec",
    "build_fleet",
    "build_stack",
    "SamplingService",
    "TenantSession",
    "collect_telemetry",
    "TraceRecorder",
    "MetricsRegistry",
    "attach_stack",
    "export_jsonl",
    "read_jsonl",
    "export_chrome_trace",
    "filter_events",
    "reconcile_run",
    "attribute_run",
    "attribute_service",
    "reconcile_attribution",
    "reconcile_service",
    "build_dag",
    "diff_traces",
    "TraceDiff",
    "SLO",
    "SLOWatcher",
    "ParallelWalkers",
    "EventDrivenWalkers",
    "MultiprocessChainExecutor",
    "SamplingSession",
    "SnapshotBackend",
    "JsonLinesBackend",
    "KeyValueBackend",
    "MetropolisHastingsWalk",
    "RandomJumpWalk",
    "SimpleRandomWalk",
    "__version__",
]
