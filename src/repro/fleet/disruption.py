"""Seeded shard-outage and degradation schedules.

Real fleet shards do not fail uniformly at random per request the way a
:class:`~repro.interface.providers.FlakyProvider` times out — they degrade
and recover in *windows*: a bad deploy, a hot replica, a saturated cache
tier.  :class:`DisruptionSchedule` models that as contiguous windows over
a shard's **request index** (its 1st, 2nd, ... fetch): the request axis
advances with the crawl on any scheduler, needs no clock plumbed into the
provider layer, and — because window membership is a pure seeded hash of
the window number — is deterministic across processes and snapshot
round-trips with *no mutable state at all*.  The only thing a snapshot
must carry is the shard's request counter, which the per-shard accounting
already owns.

A request classifies as one of three modes:

* ``ok`` — the shard answers at its modelled latency;
* ``degraded`` — latency is multiplied by ``degraded_multiplier``
  (a slow replica / saturated tier);
* ``outage`` — the request additionally pays ``outage_penalty`` seconds
  (failover + retry against a dead shard) on top of the degraded rate.
"""

from __future__ import annotations

import zlib

#: Request classification modes, in increasing severity.
MODES = ("ok", "degraded", "outage")


class DisruptionSchedule:
    """Stateless seeded degradation/outage windows over request indices.

    Requests are grouped into windows of ``window`` consecutive fetches;
    each window's mode is a pure hash of ``(seed, window number)``, drawn
    as ``outage`` with probability ``outage_rate``, else ``degraded`` with
    probability ``degraded_rate``, else ``ok``.

    Args:
        seed: Master seed for the window draws.
        window: Requests per window (>= 1).
        degraded_rate: Probability a window is degraded, in [0, 1].
        outage_rate: Probability a window is a full outage, in [0, 1];
            ``degraded_rate + outage_rate`` must not exceed 1.
        degraded_multiplier: Latency multiplier inside degraded and outage
            windows (>= 1).
        outage_penalty: Extra simulated seconds every request in an outage
            window pays (>= 0).

    Raises:
        ValueError: On out-of-range parameters.
    """

    def __init__(
        self,
        seed: int = 0,
        window: int = 64,
        degraded_rate: float = 0.15,
        outage_rate: float = 0.05,
        degraded_multiplier: float = 3.0,
        outage_penalty: float = 30.0,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 <= degraded_rate <= 1.0 or not 0.0 <= outage_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        if degraded_rate + outage_rate > 1.0:
            raise ValueError("degraded_rate + outage_rate must not exceed 1")
        if degraded_multiplier < 1.0:
            raise ValueError("degraded_multiplier must be at least 1")
        if outage_penalty < 0.0:
            raise ValueError("outage_penalty must be non-negative")
        self._seed = int(seed)
        self._window = int(window)
        self._degraded_rate = float(degraded_rate)
        self._outage_rate = float(outage_rate)
        self._multiplier = float(degraded_multiplier)
        self._penalty = float(outage_penalty)

    @property
    def window(self) -> int:
        """Requests per schedule window."""
        return self._window

    def mode_of(self, request_index: int) -> str:
        """Classify the ``request_index``-th fetch (0-based): one of MODES."""
        block = request_index // self._window
        h = zlib.crc32(f"{self._seed}:window:{block}".encode("utf-8"))
        u = h / 0xFFFFFFFF  # uniform in [0, 1], pure function of (seed, block)
        if u < self._outage_rate:
            return "outage"
        if u < self._outage_rate + self._degraded_rate:
            return "degraded"
        return "ok"

    def disrupted_latency(self, request_index: int, base_latency: float) -> float:
        """The latency a request pays once the schedule is applied."""
        mode = self.mode_of(request_index)
        if mode == "ok":
            return base_latency
        latency = base_latency * self._multiplier
        if mode == "outage":
            latency += self._penalty
        return latency

    def state_dict(self) -> dict:
        """The schedule's defining configuration (it has no mutable state)."""
        return {
            "seed": self._seed,
            "window": self._window,
            "degraded_rate": self._degraded_rate,
            "outage_rate": self._outage_rate,
            "degraded_multiplier": self._multiplier,
            "outage_penalty": self._penalty,
        }
