"""A provider fleet: per-shard stacks behind one ``SocialProvider`` face.

:class:`ShardedProvider` routes each user's fetch — via a deterministic
:class:`~repro.fleet.router.ShardRouter` — to that user's owning shard,
where a private provider stack (composed from the existing PR-3 layers:
in-memory graph → seeded latency model → flaky retries) answers it.  Each
shard keeps its own books (:class:`ShardStats`: queries, latency spent,
retries, burst depth) and optionally runs a seeded
:class:`~repro.fleet.disruption.DisruptionSchedule` that degrades whole
windows of its requests, so experiments can ask what a walk costs when
one shard of the fleet is having a bad day.

The interface layer needs no change: a fleet *is* a
:class:`~repro.interface.providers.SocialProvider`, so all §II-B billing,
caching, budget, and rate-limit semantics hold bit-for-bit over it.  What
the fleet adds beyond routing is **dispatch structure** for the
batch-aware scheduler: per-shard batch caps and admission intervals
(how many fetches one ``query_many`` round trip may carry, and how
closely a shard admits round trips), plus a dispatch trace the scheduler
drains to learn which shard each in-flight fetch went to.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.datastore.documents import DocumentStore
from repro.errors import PrivateUserError
from repro.fleet.disruption import DisruptionSchedule
from repro.fleet.router import ShardRouter
from repro.graph.adjacency import Graph
from repro.interface.providers import (
    SocialProvider,
)
from repro.obs.trace import EVENT_FETCH, EVENT_RETRY, TraceRecorder

Node = Hashable


@dataclasses.dataclass(frozen=True)
class FetchDispatch:
    """One completed fetch, as the batch-aware scheduler sees it.

    Attributes:
        shard: Index of the shard that served the fetch.
        user: The fetched user id.
        latency: Simulated seconds the shard took (disruption included).
    """

    shard: int
    user: Node
    latency: float


@dataclasses.dataclass
class ShardStats:
    """Mutable per-shard accounting.

    Attributes:
        queries: Fetch requests routed to the shard (refusals included —
            a refusal consumes a shard request like any other).
        latency_spent: Total simulated response latency the shard served.
        retries: Extra attempts flaky layers consumed beyond the first.
        disrupted: Requests that landed in a degraded or outage window.
        bursts: Coalesced round trips the scheduler dispatched here.
        max_in_flight: Largest burst depth the shard has carried.
        prefetched: Fetches a dispatch planner issued predictively into
            this shard's open bursts (a subset of ``queries``).
        tenants: Per-tenant books — ``label -> {"queries", "latency_spent"}``
            — filled only while a service layer names an active tenant
            (see :meth:`ShardedProvider.set_active_tenant`); empty for
            single-tenant use.
    """

    queries: int = 0
    latency_spent: float = 0.0
    retries: int = 0
    disrupted: int = 0
    bursts: int = 0
    max_in_flight: int = 0
    prefetched: int = 0
    tenants: Dict[str, Dict[str, float]] = dataclasses.field(default_factory=dict)

    def book_tenant(self, tenant: str, latency: float) -> None:
        """Attribute one served fetch (and its latency) to ``tenant``."""
        book = self.tenants.setdefault(tenant, {"queries": 0, "latency_spent": 0.0})
        book["queries"] += 1
        book["latency_spent"] += latency

    def state_dict(self) -> dict:
        return dataclasses.asdict(self)

    def load_state(self, state: dict) -> None:
        self.queries = int(state["queries"])
        self.latency_spent = float(state["latency_spent"])
        self.retries = int(state["retries"])
        self.disrupted = int(state["disrupted"])
        self.bursts = int(state["bursts"])
        self.max_in_flight = int(state["max_in_flight"])
        # Absent from snapshots written before the planning layer.
        self.prefetched = int(state.get("prefetched", 0))
        # Absent from snapshots written before the service layer.
        self.tenants = {
            str(label): {
                "queries": int(book.get("queries", 0)),
                "latency_spent": float(book.get("latency_spent", 0.0)),
            }
            for label, book in state.get("tenants", {}).items()
        }


def _per_shard(value: Union[float, int, Sequence], num_shards: int, name: str) -> tuple:
    """Broadcast a scalar (or validate a sequence) into per-shard values."""
    if isinstance(value, (int, float)):
        return (value,) * num_shards
    values = tuple(value)
    if len(values) != num_shards:
        raise ValueError(f"got {len(values)} {name} values for {num_shards} shards")
    return values


class ShardedProvider(SocialProvider):
    """Route each user to its owning shard's provider stack.

    Args:
        shards: One provider stack per shard, all answering over the same
            hidden network (the fleet is a partition of *serving*, not of
            *data* — any shard can answer an existence check).
        router: The user→shard map; its shard count must match.
        disruptions: Optional per-shard
            :class:`~repro.fleet.disruption.DisruptionSchedule` (entries
            may be ``None`` for always-healthy shards).
        batch_cap: Per-shard maximum fetches one coalesced round trip may
            carry (scalar broadcasts; each cap >= 1).
        admission_interval: Per-shard minimum simulated seconds between
            round-trip admissions — the shard-side rate limit the
            batch-aware scheduler honours (scalar broadcasts; >= 0).
        latency_quantum: When positive, every non-zero response latency is
            rounded *up* to a multiple of this many simulated seconds.
            Real backends answer on an RTT/polling grid rather than a
            continuum; on the simulated side the grid is what lets
            independent chains' completions land on the same tick, which
            is where batch coalescing finds its bursts.  Use a
            binary-exact value (0.5, 0.25, ...) so grid arithmetic stays
            exact in floating point.

    Raises:
        ValueError: On shard-count mismatches or invalid caps/intervals.
    """

    def __init__(
        self,
        shards: Sequence[SocialProvider],
        router: ShardRouter,
        disruptions: Optional[Sequence[Optional[DisruptionSchedule]]] = None,
        batch_cap: Union[int, Sequence[int]] = 8,
        admission_interval: Union[float, Sequence[float]] = 0.0,
        latency_quantum: float = 0.0,
    ) -> None:
        if len(shards) < 1:
            raise ValueError("a fleet needs at least one shard")
        if router.num_shards != len(shards):
            raise ValueError(
                f"router addresses {router.num_shards} shards, got {len(shards)} stacks"
            )
        if disruptions is not None and len(disruptions) != len(shards):
            raise ValueError(
                f"got {len(disruptions)} disruption schedules for {len(shards)} shards"
            )
        self._shards = list(shards)
        self._router = router
        self._disruptions: Tuple[Optional[DisruptionSchedule], ...] = (
            tuple(disruptions) if disruptions is not None else (None,) * len(shards)
        )
        self._batch_caps = tuple(
            int(c) for c in _per_shard(batch_cap, len(shards), "batch_cap")
        )
        if any(c < 1 for c in self._batch_caps):
            raise ValueError("batch caps must be positive")
        self._intervals = tuple(
            float(i) for i in _per_shard(admission_interval, len(shards), "admission_interval")
        )
        if any(i < 0 for i in self._intervals):
            raise ValueError("admission intervals must be non-negative")
        if latency_quantum < 0:
            raise ValueError("latency_quantum must be non-negative")
        self._quantum = float(latency_quantum)
        self._stats = [ShardStats() for _ in shards]
        self._trace_dispatches = False
        self._dispatch_log: List[FetchDispatch] = []
        self._active_tenant: Optional[str] = None
        self._recorder: Optional[TraceRecorder] = None

    # ------------------------------------------------------------------
    # fleet introspection
    # ------------------------------------------------------------------
    @property
    def router(self) -> ShardRouter:
        """The user→shard map."""
        return self._router

    @property
    def num_shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self._shards)

    @property
    def shards(self) -> Sequence[SocialProvider]:
        """The per-shard provider stacks."""
        return tuple(self._shards)

    @property
    def stats(self) -> Sequence[ShardStats]:
        """Per-shard accounting (live objects; read-only use)."""
        return tuple(self._stats)

    def batch_cap(self, shard: int) -> int:
        """Max fetches one coalesced round trip to ``shard`` may carry."""
        return self._batch_caps[shard]

    def admission_interval(self, shard: int) -> float:
        """Min simulated seconds between round-trip admissions at ``shard``."""
        return self._intervals[shard]

    @property
    def latency_quantum(self) -> float:
        """The response-latency grid (0.0 = continuous latencies)."""
        return self._quantum

    def shard_of(self, user: Node) -> int:
        """The shard that serves ``user`` (delegates to the router)."""
        return self._router.shard_of(user)

    # ------------------------------------------------------------------
    # dispatch tracing (consumed by the batch-aware scheduler)
    # ------------------------------------------------------------------
    def trace_dispatches(self, enabled: bool = True) -> None:
        """Start (or stop) recording per-fetch dispatch events."""
        self._trace_dispatches = bool(enabled)
        if not enabled:
            self._dispatch_log.clear()

    def drain_dispatches(self) -> Tuple[FetchDispatch, ...]:
        """Return and clear the dispatch events recorded since last drain."""
        events = tuple(self._dispatch_log)
        self._dispatch_log.clear()
        return events

    def record_burst(self, shard: int, depth: int = 1) -> None:
        """Account one new coalesced round trip of ``depth`` fetches."""
        stats = self._stats[shard]
        stats.bursts += 1
        if depth > stats.max_in_flight:
            stats.max_in_flight = depth

    def record_burst_depth(self, shard: int, depth: int) -> None:
        """Update the in-flight depth of the shard's open round trip."""
        stats = self._stats[shard]
        if depth > stats.max_in_flight:
            stats.max_in_flight = depth

    def record_prefetch(self, shard: int) -> None:
        """Account one planner-issued predictive fetch riding ``shard``."""
        self._stats[shard].prefetched += 1

    # ------------------------------------------------------------------
    # observability (zero-cost when no recorder is attached)
    # ------------------------------------------------------------------
    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, or ``None`` (the default)."""
        return self._recorder

    def set_recorder(self, recorder: Optional[TraceRecorder]) -> None:
        """Attach (or with ``None`` detach) a trace recorder.

        The fleet owns no simulated clock, so its ``shard_fetch``/``retry``
        events are stamped with the time the interface hinted just before
        delegating the fetch (see ``TraceRecorder.hint_clock``).
        """
        self._recorder = recorder

    # ------------------------------------------------------------------
    # per-tenant attribution (set by the service layer around each tick)
    # ------------------------------------------------------------------
    @property
    def active_tenant(self) -> Optional[str]:
        """The tenant label fetches are currently booked under, or ``None``."""
        return self._active_tenant

    def set_active_tenant(self, label: Optional[str]) -> None:
        """Attribute subsequent fetches to ``label`` in the shard books.

        The service layer brackets each tenant's scheduler tick with
        ``set_active_tenant(tenant_id)`` / ``set_active_tenant(None)`` so
        :attr:`ShardStats.tenants` splits the fleet's load by who caused
        it.  Transient runtime state: not part of :meth:`state_dict` — a
        restored service re-asserts it before every tick.
        """
        self._active_tenant = None if label is None else str(label)

    # ------------------------------------------------------------------
    # SocialProvider contract
    # ------------------------------------------------------------------
    def has_user(self, user: Node) -> bool:
        return self._shards[self._router.shard_of(user)].has_user(user)

    def fetch(self, user: Node):
        shard = self._router.shard_of(user)
        stats = self._stats[shard]
        request_index = stats.queries
        stats.queries += 1
        try:
            fetched = self._shards[shard].fetch(user)  # refusals propagate billed
        except PrivateUserError:
            if self._recorder is not None:
                # A refusal consumed a shard request (stats.queries above)
                # but no latency/retry books — the audit replays it from
                # this zero-latency mark.
                self._recorder.record(
                    EVENT_FETCH,
                    self._recorder.hinted_clock,
                    shard=shard,
                    user=user,
                    refused=True,
                )
            raise
        latency = fetched.latency
        disrupted = False
        schedule = self._disruptions[shard]
        if schedule is not None:
            latency = schedule.disrupted_latency(request_index, latency)
            if schedule.mode_of(request_index) != "ok":
                stats.disrupted += 1
                disrupted = True
        if self._quantum > 0.0 and latency > 0.0:
            latency = self._quantum * math.ceil(latency / self._quantum)
        stats.latency_spent += latency
        stats.retries += max(0, fetched.attempts - 1)
        if self._active_tenant is not None:
            stats.book_tenant(self._active_tenant, latency)
        if self._trace_dispatches:
            self._dispatch_log.append(
                FetchDispatch(shard=shard, user=user, latency=latency)
            )
        recorder = self._recorder
        if recorder is not None:
            issued = recorder.hinted_clock
            attrs = {
                "shard": shard,
                "user": user,
                "latency": latency,
                "attempts": fetched.attempts,
            }
            if disrupted:
                attrs["disrupted"] = True
            if self._active_tenant is not None:
                attrs["tenant"] = self._active_tenant
            recorder.record(EVENT_FETCH, issued, latency, **attrs)
            recorder.count("fleet.fetches")
            if fetched.attempts > 1:
                # Disruption/quantum transforms apply to the whole response,
                # so the pre-transform wasted share is clamped to the billed
                # latency: the profiler's backoff split stays a partition.
                backoff = min(fetched.wasted_latency, latency)
                recorder.record(
                    EVENT_RETRY,
                    issued,
                    shard=shard,
                    user=user,
                    attempts=fetched.attempts,
                    backoff=backoff,
                )
                recorder.count("fleet.retries", fetched.attempts - 1)
        if latency != fetched.latency:
            fetched = dataclasses.replace(fetched, latency=latency)
        return fetched

    def user_count(self) -> int:
        return self._shards[0].user_count()

    @property
    def may_refuse(self) -> bool:
        return any(s.may_refuse for s in self._shards)

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Router fingerprint, per-shard stack states, and accounting.

        The per-shard request counters (inside the stats) are what anchor
        the disruption schedules, and the stacks' own states carry any
        flaky RNG positions — restoring all of it means a resumed crawl
        replays the same shard behaviour bit-for-bit.
        """
        return {
            "router": self._router.state_dict(),
            "shards": [s.state_dict() for s in self._shards],
            "stats": [s.state_dict() for s in self._stats],
        }

    def load_state(self, state: dict) -> None:
        """Restore a captured fleet state.

        Raises:
            SnapshotError: If the captured router configuration differs
                from this fleet's.
        """
        self._router.load_state(state["router"])
        for stack, stack_state in zip(self._shards, state["shards"]):
            stack.load_state(stack_state)
        for stats, stats_state in zip(self._stats, state["stats"]):
            stats.load_state(stats_state)
        self._dispatch_log.clear()


def find_fleet(provider: SocialProvider) -> Optional[ShardedProvider]:
    """The :class:`ShardedProvider` inside a provider stack, or ``None``.

    Walks ``inner`` links so a fleet wrapped in e.g. a
    :class:`~repro.interface.providers.FlakyProvider` is still found.
    """
    seen = 0
    while provider is not None and seen < 32:  # stacks are shallow
        if isinstance(provider, ShardedProvider):
            return provider
        provider = getattr(provider, "inner", None)
        seen += 1
    return None


def sharded_fleet(
    graph: Graph,
    num_shards: int,
    seed: int = 0,
    weights: Optional[Sequence[float]] = None,
    profiles: Optional[DocumentStore] = None,
    latency_distribution: Optional[str] = None,
    latency_scale: float = 1.0,
    latency_alpha: float = 1.5,
    shard_latency_spread: float = 0.0,
    failure_rate: float = 0.0,
    max_attempts: int = 8,
    timeout_latency: float = 5.0,
    disruption: Optional[dict] = None,
    batch_cap: Union[int, Sequence[int]] = 8,
    admission_interval: Union[float, Sequence[float]] = 0.0,
    latency_quantum: float = 0.0,
) -> ShardedProvider:
    """Compose a homogeneous-data, heterogeneous-serving fleet.

    Every shard serves the same hidden ``graph`` (the fleet partitions
    *traffic*, not data) through its own stack of the PR-3 provider
    layers::

        InMemoryGraphProvider          # the data
          └─ LatencyModelProvider      # per-shard seeded latency (optional)
               └─ FlakyProvider        # per-shard seeded retries (optional)

    Args:
        graph: The hidden social-network topology.
        num_shards: Fleet size (>= 1).
        seed: Master seed; every shard's latency/flaky/disruption streams
            derive from it (and the shard index), so the whole fleet is a
            pure function of its configuration.
        weights: Optional routing weights (skew axis): heavier shards own
            proportionally more of the key space.
        profiles: Optional per-user attribute documents.
        latency_distribution: When given, each shard serves through a
            seeded :class:`~repro.interface.providers.LatencyModelProvider`
            of this distribution.
        latency_scale: Base latency scale in simulated seconds.
        latency_alpha: Pareto shape for heavy-tailed latencies.
        shard_latency_spread: Heterogeneity axis: shard ``s`` scales its
            latency by ``1 + spread * s / (num_shards - 1)`` — shard 0 is
            the fastest replica, the last shard the slowest.
        failure_rate: When positive, each shard wraps its stack in a
            seeded :class:`~repro.interface.providers.FlakyProvider`.
        max_attempts: Flaky retry bound per fetch.
        timeout_latency: Simulated seconds one timed-out attempt costs.
        disruption: When given, keyword arguments for per-shard
            :class:`~repro.fleet.disruption.DisruptionSchedule` instances
            (each seeded from ``seed`` and the shard index); ``{}`` uses
            the schedule defaults.
        batch_cap: Per-shard batch caps (see :class:`ShardedProvider`).
        admission_interval: Per-shard admission intervals.
        latency_quantum: Response-latency grid (see
            :class:`ShardedProvider`; 0.0 keeps latencies continuous).

    Raises:
        ValueError: On invalid shard counts or parameters (propagated from
            the underlying layers).

    .. deprecated::
        Build fleets declaratively through
        :class:`repro.compose.FleetSpec` — specs persist through the
        snapshot codec and compose into full stacks via
        :func:`repro.compose.build_stack`.  This shim keeps old call
        sites working and emits a :class:`DeprecationWarning`.
    """
    # Imported lazily: repro.compose builds on this module's classes.
    from repro.compose import FleetSpec, ProviderSpec

    warnings.warn(
        "sharded_fleet() is deprecated; use repro.compose.FleetSpec("
        "num_shards=..., provider=ProviderSpec(...)).build(graph, profiles=...) "
        "(see repro.compose)",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = FleetSpec(
        num_shards=num_shards,
        seed=seed,
        weights=None if weights is None else tuple(weights),
        provider=ProviderSpec(
            latency_distribution=latency_distribution,
            latency_scale=latency_scale,
            latency_alpha=latency_alpha,
            failure_rate=failure_rate,
            max_attempts=max_attempts,
            timeout_latency=timeout_latency,
        ),
        shard_latency_spread=shard_latency_spread,
        disruption=disruption,
        batch_cap=batch_cap if isinstance(batch_cap, int) else tuple(batch_cap),
        admission_interval=(
            admission_interval
            if isinstance(admission_interval, (int, float))
            else tuple(admission_interval)
        ),
        latency_quantum=latency_quantum,
    )
    return spec.build(graph, profiles=profiles)
