"""Sharded social-backend simulation: the provider *fleet* layer.

The paper's query model (§II-A/§II-B) treats the OSN as one endpoint with
one latency behaviour, and PR 3's :class:`~repro.interface.providers`
split kept that shape: a single provider stack answers every fetch.  Real
crawls talk to a *fleet* of API shards with independent latency tails,
rate limits, and outages — exactly the regime where the follow-up papers
("Walk, Not Wait"; "Leveraging History for Faster Sampling") get their
wins, because a scheduler that understands fleet structure can overlap
and coalesce work per shard instead of paying one latency draw per fetch.

Three pieces live here:

* :class:`~repro.fleet.router.ShardRouter` — a deterministic, seeded
  consistent-hash ring mapping user ids to shards.  The map is a pure
  function of (seed, shard count, weights), stable across processes and
  snapshot round-trips, and rebalancing to a different shard count moves
  only the expected fraction of keys;
* :class:`~repro.fleet.provider.ShardedProvider` — a
  :class:`~repro.interface.providers.SocialProvider` that routes each
  user's fetch to a per-shard provider stack (its own latency model /
  flaky retries, composed from the existing PR-3 providers), applies
  seeded per-shard outage/degradation schedules, and keeps per-shard
  accounting (queries, latency spent, retries, burst depth);
* :func:`~repro.fleet.provider.sharded_fleet` — a builder that composes
  the standard in-memory → latency → flaky stack for every shard.

On top of the fleet, :class:`~repro.walks.scheduler.EventDrivenWalkers`
grows batch-aware dispatch (``batching=True``): same-tick dispatches
headed to the same shard coalesce into one ``query_many``-style burst
billed as a single provider round-trip — the max latency of the burst,
bounded by the shard's batch cap — while §II-B unique-query billing stays
bit-for-bit identical to unbatched runs.
"""

from repro.fleet.provider import (
    FetchDispatch,
    ShardStats,
    ShardedProvider,
    find_fleet,
    sharded_fleet,
)
from repro.fleet.router import ShardRouter
from repro.fleet.disruption import DisruptionSchedule

__all__ = [
    "DisruptionSchedule",
    "FetchDispatch",
    "ShardRouter",
    "ShardStats",
    "ShardedProvider",
    "find_fleet",
    "sharded_fleet",
]
