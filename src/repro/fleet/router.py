"""Deterministic consistent-hash routing of users onto fleet shards.

Real OSN backends partition users across API shards; which shard owns a
user is sticky (it tracks the user id, not the request), and adding
capacity moves only a small fraction of users.  :class:`ShardRouter`
reproduces both properties with a classic consistent-hash ring:

* every shard owns a set of seeded virtual points on a 32-bit ring;
* a user maps to the shard owning the first point at or after the user's
  own hash (wrapping around);
* shard *weights* scale the number of virtual points, so a "hot" shard
  can own a configurable share of the key space — the skew axis the
  fleet experiments sweep.

Hashes are anchored on :func:`zlib.crc32` over the snapshot codec's
canonical encoding of the user id (never Python's per-process salted
``hash``), so the user→shard map is a pure function of
``(seed, num_shards, weights, points_per_shard)`` — identical across
processes, machines, and snapshot round-trips.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.datastore.snapshot import _canonical, encode_value
from repro.errors import SnapshotError

Node = Hashable

#: Default virtual points per unit of shard weight.  Enough that a ring of
#: a few shards balances to within a few percent of its weights.
DEFAULT_POINTS_PER_SHARD = 96


def _stable_hash(text: str) -> int:
    """Process-stable 32-bit hash of ``text``."""
    return zlib.crc32(text.encode("utf-8"))


class ShardRouter:
    """Seeded consistent-hash map from user ids to shard indices.

    Args:
        num_shards: Number of shards (>= 1).
        seed: Master seed; the entire ring derives from it.
        weights: Optional per-shard weights (positive).  A shard of weight
            ``w`` owns ``round(w * points_per_shard)`` ring points and
            therefore roughly ``w / sum(weights)`` of the key space.
            Defaults to uniform.
        points_per_shard: Virtual ring points per unit weight.

    Raises:
        ValueError: On non-positive shard counts, weights, or point counts,
            or a weights sequence of the wrong length.

    Example:
        >>> router = ShardRouter(4, seed=7)
        >>> router.shard_of("alice") == router.shard_of("alice")
        True
        >>> 0 <= router.shard_of(12345) < 4
        True
    """

    def __init__(
        self,
        num_shards: int,
        seed: int = 0,
        weights: Optional[Sequence[float]] = None,
        points_per_shard: int = DEFAULT_POINTS_PER_SHARD,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if points_per_shard < 1:
            raise ValueError("points_per_shard must be positive")
        if weights is None:
            weights = (1.0,) * num_shards
        else:
            weights = tuple(float(w) for w in weights)
            if len(weights) != num_shards:
                raise ValueError(
                    f"got {len(weights)} weights for {num_shards} shards"
                )
            if any(w <= 0 for w in weights):
                raise ValueError("shard weights must be positive")
        self._num_shards = int(num_shards)
        self._seed = int(seed)
        self._weights: Tuple[float, ...] = weights
        self._points_per_shard = int(points_per_shard)

        ring: List[Tuple[int, int]] = []
        for shard in range(self._num_shards):
            points = max(1, round(self._weights[shard] * self._points_per_shard))
            for v in range(points):
                ring.append((_stable_hash(f"{self._seed}:shard:{shard}:{v}"), shard))
        # Sorting on (point, shard) makes hash ties deterministic too.
        ring.sort()
        self._ring = ring
        self._points = [p for p, _ in ring]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, user: Node) -> int:
        """The shard index owning ``user`` (stable across processes)."""
        h = _stable_hash(f"{self._seed}:user:{_canonical(encode_value(user))}")
        idx = bisect.bisect_left(self._points, h)
        if idx == len(self._points):  # wrap past the last ring point
            idx = 0
        return self._ring[idx][1]

    @property
    def num_shards(self) -> int:
        """Number of shards the ring routes onto."""
        return self._num_shards

    @property
    def seed(self) -> int:
        """The master seed the ring derives from."""
        return self._seed

    @property
    def weights(self) -> Tuple[float, ...]:
        """Per-shard weights (uniform by default)."""
        return self._weights

    def with_shards(
        self, num_shards: int, weights: Optional[Sequence[float]] = None
    ) -> "ShardRouter":
        """A rebalanced router: same seed and point density, new shard set.

        Consistent hashing keeps the surviving shards' ring points in
        place, so only keys whose owning point belongs to an added or
        removed shard move — roughly the added/removed share of the key
        space, never a full reshuffle.
        """
        return ShardRouter(
            num_shards,
            seed=self._seed,
            weights=weights,
            points_per_shard=self._points_per_shard,
        )

    def load_share(self, users: Sequence[Node]) -> List[float]:
        """Fraction of ``users`` routed to each shard (diagnostics)."""
        counts = [0] * self._num_shards
        for user in users:
            counts[self.shard_of(user)] += 1
        total = max(1, len(users))
        return [c / total for c in counts]

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The ring's defining configuration (the map itself is derived).

        The router is a pure function of this configuration, so a snapshot
        carries the configuration rather than the expanded map; restoring
        verifies the resuming process rebuilt an identical ring.
        """
        return {
            "num_shards": self._num_shards,
            "seed": self._seed,
            "weights": self._weights,
            "points_per_shard": self._points_per_shard,
        }

    def load_state(self, state: dict) -> None:
        """Verify this router matches a captured configuration.

        Raises:
            SnapshotError: If any ring parameter differs — a resumed crawl
                over a differently routed fleet would silently re-route
                users mid-run.
        """
        mine = self.state_dict()
        theirs = {
            "num_shards": int(state["num_shards"]),
            "seed": int(state["seed"]),
            "weights": tuple(float(w) for w in state["weights"]),
            "points_per_shard": int(state["points_per_shard"]),
        }
        if mine != theirs:
            raise SnapshotError(
                f"snapshot was routed by {theirs}, but this fleet routes by {mine}; "
                "rebuild the fleet with the captured router configuration"
            )
