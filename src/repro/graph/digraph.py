"""Directed graph substrate and the paper's mutual-edge conversion.

The SNAP snapshots the paper evaluates on (Epinions, Slashdot) are directed.
Section V-A.2 converts them to undirected graphs *by keeping only edges that
appear in both directions*, which guarantees any walk on the undirected
graph is realizable on the directed original.  :func:`mutual_undirected`
implements exactly that conversion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

from repro.errors import NodeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph

Node = Hashable
Arc = Tuple[Node, Node]


class DiGraph:
    """Mutable directed simple graph (no self-loops, no parallel arcs)."""

    def __init__(self, arcs: Iterable[Arc] | None = None) -> None:
        """Create a digraph, optionally from an iterable of ``(u, v)`` arcs."""
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._num_arcs = 0
        if arcs is not None:
            self.add_arcs(arcs)

    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op if present)."""
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_arc(self, u: Node, v: Node) -> bool:
        """Insert the arc ``u -> v``.

        Returns:
            ``True`` if the arc was new.

        Raises:
            SelfLoopError: If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        if v in self._succ[u]:
            return False
        self._succ[u].add(v)
        self._pred[v].add(u)
        self._num_arcs += 1
        return True

    def add_arcs(self, arcs: Iterable[Arc]) -> int:
        """Insert many arcs; returns how many were new."""
        added = 0
        for u, v in arcs:
            if self.add_arc(u, v):
                added += 1
        return added

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return self._num_arcs

    def nodes(self) -> Iterator[Node]:
        """Iterate over node ids."""
        return iter(self._succ)

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs as ``(u, v)``."""
        for u, vs in self._succ.items():
            for v in vs:
                yield (u, v)

    def has_arc(self, u: Node, v: Node) -> bool:
        """Whether arc ``u -> v`` exists."""
        s = self._succ.get(u)
        return s is not None and v in s

    def successors(self, node: Node) -> FrozenSet[Node]:
        """Out-neighborhood of ``node``.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        """In-neighborhood of ``node``.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: Node) -> int:
        """Number of successors."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of predecessors."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFoundError(node) from None


def mutual_undirected(digraph: DiGraph, keep_isolated: bool = False) -> Graph:
    """Undirected graph of *mutual* arcs, per the paper's §V-A.2 conversion.

    An undirected edge ``{u, v}`` is kept iff both ``u -> v`` and ``v -> u``
    exist in ``digraph``.  This guarantees a random walk on the result can be
    replayed on the directed original (the sampler verifies the inverse arc
    before committing to a hop).

    Args:
        digraph: Source directed graph.
        keep_isolated: If ``True``, nodes with no mutual edges are kept as
            isolated nodes; the paper drops them (walks cannot reach them),
            which is the default.

    Returns:
        The mutual-edge undirected graph.
    """
    g = Graph()
    if keep_isolated:
        for node in digraph.nodes():
            g.add_node(node)
    for u, v in digraph.arcs():
        if u < v if _comparable(u, v) else repr(u) < repr(v):
            if digraph.has_arc(v, u):
                g.add_edge(u, v)
    return g


def _comparable(u: Node, v: Node) -> bool:
    try:
        u < v  # type: ignore[operator]
        return True
    except TypeError:
        return False
