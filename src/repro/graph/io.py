"""Graph serialization: SNAP-style edge lists and a JSON document form.

The paper's local datasets come from the SNAP collection, whose native
format is a whitespace-separated edge list with ``#`` comments.  We read and
write that format (both directed and undirected), so real SNAP snapshots can
be dropped in for the synthetic stand-ins when available.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    directed: bool = False,
    int_ids: bool = True,
) -> Union[Graph, DiGraph]:
    """Parse a SNAP-style edge list.

    Lines starting with ``#`` are comments; other lines hold two whitespace
    separated node ids.  Self-loops are skipped (SNAP snapshots contain a
    few); duplicate edges collapse.

    Args:
        path: File to read.
        directed: Parse as a :class:`DiGraph` instead of a :class:`Graph`.
        int_ids: Convert ids to ``int`` (SNAP convention); otherwise keep
            them as strings.

    Returns:
        The parsed graph.

    Raises:
        GraphFormatError: On malformed lines or non-integer ids when
            ``int_ids`` is set.
    """
    graph: Union[Graph, DiGraph] = DiGraph() if directed else Graph()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected two ids, got {line!r}")
            raw_u, raw_v = parts[0], parts[1]
            if int_ids:
                try:
                    u: object = int(raw_u)
                    v: object = int(raw_v)
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{path}:{lineno}: non-integer node id in {line!r}"
                    ) from exc
            else:
                u, v = raw_u, raw_v
            if u == v:
                continue  # skip self-loops, matching SNAP cleaning
            if directed:
                graph.add_arc(u, v)  # type: ignore[union-attr]
            else:
                graph.add_edge(u, v)  # type: ignore[union-attr]
    return graph


def write_edge_list(graph: Union[Graph, DiGraph], path: PathLike) -> None:
    """Write a graph as a SNAP-style edge list (one pair per line)."""
    with open(path, "w", encoding="utf-8") as fh:
        if isinstance(graph, DiGraph):
            fh.write(f"# Directed graph: {graph.num_nodes} nodes, {graph.num_arcs} arcs\n")
            for u, v in graph.arcs():
                fh.write(f"{u}\t{v}\n")
        else:
            fh.write(
                f"# Undirected graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n"
            )
            for u, v in graph.edges():
                fh.write(f"{u}\t{v}\n")


def write_graph_json(graph: Graph, path: PathLike) -> None:
    """Write an undirected graph as ``{"nodes": [...], "edges": [[u,v],...]}``.

    The JSON form round-trips isolated nodes, which edge lists cannot.
    """
    payload = {
        "nodes": list(graph.nodes()),
        "edges": [[u, v] for u, v in graph.edges()],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


def read_graph_json(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_graph_json`.

    Raises:
        GraphFormatError: If the document is missing keys or malformed.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"{path}: invalid JSON") from exc
    if not isinstance(payload, dict) or "nodes" not in payload or "edges" not in payload:
        raise GraphFormatError(f"{path}: expected object with 'nodes' and 'edges'")
    graph = Graph()
    for node in payload["nodes"]:
        graph.add_node(node)
    for pair in payload["edges"]:
        if not isinstance(pair, list) or len(pair) != 2:
            raise GraphFormatError(f"{path}: malformed edge entry {pair!r}")
        graph.add_edge(pair[0], pair[1])
    return graph
