"""Graph substrate: adjacency storage, directed graphs, traversal, metrics, IO.

This subpackage is a from-scratch implementation of everything the paper
needs from a graph library: an undirected simple graph with O(1) degree and
neighborhood access (the object a simulated social network serves queries
from), a directed graph with the mutual-edge undirected conversion used for
Epinions/Slashdot, BFS-based traversal utilities, the topology statistics of
Table I (node/edge counts, 90% effective diameter), and edge-list / JSON
serialization.
"""

from repro.graph.adjacency import Graph, normalize_edge
from repro.graph.digraph import DiGraph, mutual_undirected
from repro.graph.io import (
    read_edge_list,
    read_graph_json,
    write_edge_list,
    write_graph_json,
)
from repro.graph.metrics import (
    GraphStats,
    average_clustering,
    average_degree,
    degree_histogram,
    effective_diameter,
    graph_stats,
    local_clustering,
)
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    connected_components,
    dfs_order,
    is_connected,
    largest_connected_component,
    shortest_path,
)

__all__ = [
    "Graph",
    "normalize_edge",
    "DiGraph",
    "mutual_undirected",
    "read_edge_list",
    "write_edge_list",
    "read_graph_json",
    "write_graph_json",
    "GraphStats",
    "average_clustering",
    "average_degree",
    "degree_histogram",
    "effective_diameter",
    "graph_stats",
    "local_clustering",
    "bfs_distances",
    "bfs_order",
    "connected_components",
    "dfs_order",
    "is_connected",
    "largest_connected_component",
    "shortest_path",
]
