"""Breadth/depth-first traversal, components, and shortest paths.

These routines operate on the undirected :class:`~repro.graph.adjacency.Graph`
substrate and back the Table I statistics (effective diameter needs BFS
distance profiles) as well as dataset sanity checks (walk-based samplers
require a connected graph).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterator, List, Optional, Set

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph

Node = Hashable


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node.

    Args:
        graph: Graph to traverse.
        source: Start node.

    Returns:
        Mapping ``node -> distance`` including ``source -> 0``; unreachable
        nodes are absent.

    Raises:
        NodeNotFoundError: If ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    dist: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors_view(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_order(graph: Graph, source: Node) -> Iterator[Node]:
    """Yield nodes in BFS discovery order from ``source``.

    Raises:
        NodeNotFoundError: If ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    seen: Set[Node] = {source}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        yield u
        for v in graph.neighbors_view(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)


def dfs_order(graph: Graph, source: Node) -> Iterator[Node]:
    """Yield nodes in iterative DFS pre-order from ``source``.

    Raises:
        NodeNotFoundError: If ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    seen: Set[Node] = set()
    stack: List[Node] = [source]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        yield u
        # Reverse-sorted-by-insertion push so discovery order is stable for
        # a given graph construction order.
        stack.extend(v for v in graph.neighbors_view(u) if v not in seen)


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[List[Node]]:
    """One shortest path from ``source`` to ``target`` (BFS), or ``None``.

    Raises:
        NodeNotFoundError: If either endpoint is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {source: source}
    queue: deque[Node] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors_view(u):
            if v not in parent:
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def connected_components(graph: Graph) -> List[Set[Node]]:
    """All connected components, largest first."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        comp = set(bfs_order(graph, node))
        seen |= comp
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.num_nodes == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_distances(graph, first)) == graph.num_nodes


def largest_connected_component(graph: Graph) -> Graph:
    """Induced subgraph on the largest connected component.

    Dataset stand-ins restrict to the LCC because every walk-based sampler
    in the paper can only see the component containing its seed node.
    """
    if graph.num_nodes == 0:
        return Graph()
    components = connected_components(graph)
    return graph.subgraph(components[0])
