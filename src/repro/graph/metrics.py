"""Topology statistics: the Table I columns and supporting measures.

Table I of the paper reports, per dataset, the node count, edge count, and
the *90% effective diameter* — the smallest hop distance ``d`` such that at
least 90% of connected node pairs are within ``d`` hops, linearly
interpolated between integer distances (the SNAP convention, which the
paper's numbers follow, e.g. 4.8 for Epinions).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Sequence

from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_distances
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable


def average_degree(graph: Graph) -> float:
    """Mean degree ``2|E| / |V|`` — the paper's headline AVG aggregate.

    Raises:
        ValueError: If the graph has no nodes.
    """
    if graph.num_nodes == 0:
        raise ValueError("average degree undefined for empty graph")
    return graph.total_degree() / graph.num_nodes


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Mapping ``degree -> number of nodes with that degree``."""
    hist: Dict[int, int] = {}
    for node in graph.nodes():
        k = graph.degree(node)
        hist[k] = hist.get(k, 0) + 1
    return hist


def local_clustering(graph: Graph, node: Node) -> float:
    """Local clustering coefficient of ``node``.

    Fraction of pairs of neighbors that are themselves connected; 0.0 for
    degree < 2.

    Raises:
        NodeNotFoundError: If the node does not exist.
    """
    nbrs = list(graph.neighbors(node))
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        ni = graph.neighbors_view(nbrs[i])
        for j in range(i + 1, k):
            if nbrs[j] in ni:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes.

    Raises:
        ValueError: If the graph has no nodes.
    """
    if graph.num_nodes == 0:
        raise ValueError("clustering undefined for empty graph")
    return sum(local_clustering(graph, n) for n in graph.nodes()) / graph.num_nodes


def _distance_cdf(graph: Graph, sources: Sequence[Node]) -> List[int]:
    """Counts of pair distances from ``sources``: index d -> #pairs at hop d."""
    counts: List[int] = []
    for s in sources:
        for node, d in bfs_distances(graph, s).items():
            if node == s:
                continue
            while len(counts) <= d:
                counts.append(0)
            counts[d] += 1
    return counts


def effective_diameter(
    graph: Graph,
    fraction: float = 0.9,
    sample_size: int | None = None,
    seed: RngLike = None,
) -> float:
    """SNAP-style interpolated effective diameter.

    The smallest (interpolated) distance ``d`` such that ``fraction`` of
    reachable node pairs are within ``d`` hops.

    Args:
        graph: Graph to measure; must have at least 2 nodes.
        fraction: Pair-coverage target, 0.9 for the paper's "90% diameter".
        sample_size: If given and smaller than ``|V|``, BFS from a uniform
            sample of that many sources instead of all nodes (the standard
            approximation for large graphs).
        seed: Randomness for source sampling.

    Returns:
        The interpolated effective diameter, e.g. ``4.8``.

    Raises:
        ValueError: If ``fraction`` is not in (0, 1] or the graph has no
            reachable pairs.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("effective diameter needs at least two nodes")
    if sample_size is not None and sample_size < len(nodes):
        rng = ensure_rng(seed)
        nodes = rng.sample(nodes, sample_size)
    counts = _distance_cdf(graph, nodes)
    total = sum(counts)
    if total == 0:
        raise ValueError("graph has no connected node pairs")
    target = fraction * total
    cumulative = 0
    for d, c in enumerate(counts):
        prev = cumulative
        cumulative += c
        if cumulative >= target:
            if c == 0:
                return float(d)
            # Linear interpolation between d-1 and d, SNAP convention.
            return (d - 1) + (target - prev) / c
    return float(len(counts) - 1)  # pragma: no cover - fraction <= 1 guards


@dataclasses.dataclass(frozen=True)
class GraphStats:
    """One Table I row."""

    name: str
    num_nodes: int
    num_edges: int
    effective_diameter_90: float
    average_degree: float
    average_clustering: float

    def as_row(self) -> tuple:
        """Row tuple for :func:`repro.utils.tables.format_table`."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            round(self.effective_diameter_90, 1),
            round(self.average_degree, 2),
            round(self.average_clustering, 3),
        )


def graph_stats(
    graph: Graph,
    name: str = "graph",
    diameter_sample: int | None = 200,
    seed: RngLike = 0,
) -> GraphStats:
    """Compute one Table I row for ``graph``.

    Args:
        graph: Graph to summarize.
        name: Dataset label.
        diameter_sample: BFS-source sample size for the effective diameter
            (``None`` for exact).
        seed: Randomness for the diameter sampling.
    """
    return GraphStats(
        name=name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        effective_diameter_90=effective_diameter(
            graph, 0.9, sample_size=diameter_sample, seed=seed
        ),
        average_degree=average_degree(graph),
        average_clustering=average_clustering(graph),
    )
