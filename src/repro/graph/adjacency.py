"""Undirected simple graph stored as adjacency sets.

This is the substrate every other subsystem builds on: the simulated social
network serves ``q(v)`` queries from it, the walk engines traverse it, and
the spectral/conductance analyses read it.  Design points:

* **Simple and undirected.**  The paper studies undirected relationships
  (its footnote 1) and the overlay construction needs simple-graph
  semantics, so self-loops are rejected and parallel edges collapse.
* **Adjacency sets.**  Neighborhood membership tests (``v in N(u)``) are the
  hot operation in the MTO removal criterion (common-neighbor counting);
  sets give O(min(ku, kv)) intersection.
* **Hashable node ids.**  Nodes can be ints, strings, or any hashable;
  generators use dense ints, dataset stand-ins use opaque user ids.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Set, Tuple

from repro.errors import NodeNotFoundError, SelfLoopError

Node = Hashable
Edge = Tuple[Node, Node]


def normalize_edge(u: Node, v: Node) -> Edge:
    """Return a canonical (order-independent) key for the edge ``{u, v}``.

    Node ids of mixed types are ordered by ``(type name, repr)`` so the
    canonical form is deterministic even when ids are not mutually
    comparable.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        ku = (type(u).__name__, repr(u))
        kv = (type(v).__name__, repr(v))
        return (u, v) if ku <= kv else (v, u)


class Graph:
    """Mutable undirected simple graph.

    Example:
        >>> g = Graph()
        >>> g.add_edge(1, 2)
        >>> g.add_edge(2, 3)
        >>> sorted(g.neighbors(2))
        [1, 3]
        >>> g.degree(2)
        2
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        """Create a graph, optionally from an iterable of ``(u, v)`` pairs."""
        self._adj: Dict[Node, Set[Node]] = {}
        self._num_edges = 0
        if edges is not None:
            self.add_edges(edges)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op if it already exists)."""
        self._adj.setdefault(node, set())

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert many nodes."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> bool:
        """Insert the undirected edge ``{u, v}``, creating endpoints as needed.

        Returns:
            ``True`` if the edge was new, ``False`` if it already existed.

        Raises:
            SelfLoopError: If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        nu = self._adj.setdefault(u, set())
        if v in nu:
            return False
        nu.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert many edges; returns how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: Node, v: Node) -> bool:
        """Delete the edge ``{u, v}`` if present.

        Returns:
            ``True`` if an edge was removed, ``False`` if it did not exist.

        Raises:
            NodeNotFoundError: If either endpoint is not a node.
        """
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v not in self._adj[u]:
            return False
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        return True

    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident edges.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for nbr in list(self._adj[node]):
            self.remove_edge(node, nbr)
        del self._adj[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all node ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once (canonical order)."""
        seen: Set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = normalize_edge(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighborhood ``N(node)`` as an immutable set.

        This is exactly what the paper's ``q(v)`` interface returns for a
        user, which is why it is frozen: callers must not mutate the graph
        through a query result.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_view(self, node: Node) -> Set[Node]:
        """Internal mutable neighborhood set — for hot loops only.

        Callers must not mutate the returned set; use :meth:`add_edge` /
        :meth:`remove_edge`.  Exposed because copying neighborhoods on every
        random-walk step dominates runtime on large graphs.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """``k_node = |N(node)|``.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def common_neighbors(self, u: Node, v: Node) -> FrozenSet[Node]:
        """``N(u) ∩ N(v)`` — the quantity at the heart of Theorem 3.

        Raises:
            NodeNotFoundError: If either node does not exist.
        """
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        a, b = self._adj[u], self._adj[v]
        if len(b) < len(a):
            a, b = b, a
        return frozenset(x for x in a if x in b)

    def total_degree(self) -> int:
        """Sum of all degrees, i.e. ``2|E|`` — the SRW stationary normalizer."""
        return 2 * self._num_edges

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of the topology (node ids are shared, sets are not)."""
        g = Graph()
        g._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (missing ids are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        g = Graph()
        for n in keep:
            g.add_node(n)
        for n in keep:
            for m in self._adj[n]:
                if m in keep:
                    g.add_edge(n, m)
        return g

    def relabeled(self) -> tuple["Graph", Dict[Node, int]]:
        """Copy with nodes relabeled to ``0..n-1`` in iteration order.

        Returns:
            ``(graph, mapping)`` where ``mapping[original_id] = new_int_id``.
            Used by the spectral analysis to index matrices.
        """
        mapping = {node: i for i, node in enumerate(self._adj)}
        g = Graph()
        for node in self._adj:
            g.add_node(mapping[node])
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g, mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
