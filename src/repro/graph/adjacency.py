"""Undirected simple graph stored as indexed adjacency maps.

This is the substrate every other subsystem builds on: the simulated social
network serves ``q(v)`` queries from it, the walk engines traverse it, and
the spectral/conductance analyses read it.  Design points:

* **Simple and undirected.**  The paper studies undirected relationships
  (its footnote 1) and the overlay construction needs simple-graph
  semantics, so self-loops are rejected and parallel edges collapse.
* **Indexed neighborhoods.**  Each node keeps its neighbors in an
  insertion-ordered mapping, which gives O(1) membership tests (the hot
  operation in the MTO removal criterion) *and* a stable deterministic
  ordering.
* **Compact mirror.**  A :class:`~repro.core.adjacency.CompactAdjacency`
  shadows the dict rows in lockstep: interned int32 ids, arena-backed
  rows in identical insertion order, cached id-tuples.  The dicts stay
  authoritative for membership and set-view intersections; the mirror
  serves ``neighbors_seq``, uniform draws, and the batched lanes
  (``draw_many`` / ``degrees_many`` / ``known_mask`` / ``csr``) without
  per-step Python object traffic.
* **Hashable node ids.**  Nodes can be ints, strings, or any hashable;
  generators use dense ints, dataset stand-ins use opaque user ids.
"""

from __future__ import annotations

import random
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.adjacency import CompactAdjacency
from repro.errors import NodeNotFoundError, SelfLoopError

Node = Hashable
Edge = Tuple[Node, Node]


def normalize_edge(u: Node, v: Node) -> Edge:
    """Return a canonical (order-independent) key for the edge ``{u, v}``.

    Node ids of mixed types are ordered by ``(type name, repr)`` so the
    canonical form is deterministic even when ids are not mutually
    comparable.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        ku = (type(u).__name__, repr(u))
        kv = (type(v).__name__, repr(v))
        return (u, v) if ku <= kv else (v, u)


class Graph:
    """Mutable undirected simple graph with indexed neighborhoods.

    Example:
        >>> g = Graph()
        >>> g.add_edge(1, 2)
        True
        >>> g.add_edge(2, 3)
        True
        >>> sorted(g.neighbors(2))
        [1, 3]
        >>> g.degree(2)
        2
    """

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        """Create a graph, optionally from an iterable of ``(u, v)`` pairs."""
        # Per-node insertion-ordered neighbor index (dict keys double as an
        # ordered set: O(1) membership, deterministic iteration).
        self._adj: Dict[Node, Dict[Node, None]] = {}
        # Int-interned arena mirror, mutated in lockstep with _adj: serves
        # neighbor tuples, seeded draws, and the batched numpy lanes.
        self._compact = CompactAdjacency()
        self._num_edges = 0
        if edges is not None:
            self.add_edges(edges)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op if it already exists)."""
        self._adj.setdefault(node, {})
        self._compact.ensure_row(node)

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert many nodes."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> bool:
        """Insert the undirected edge ``{u, v}``, creating endpoints as needed.

        Returns:
            ``True`` if the edge was new, ``False`` if it already existed.

        Raises:
            SelfLoopError: If ``u == v``.
        """
        if u == v:
            raise SelfLoopError(u)
        nu = self._adj.setdefault(u, {})
        if v in nu:
            return False
        nu[v] = None
        self._adj.setdefault(v, {})[u] = None
        self._compact.append(u, v)
        self._compact.append(v, u)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert many edges; returns how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: Node, v: Node) -> bool:
        """Delete the edge ``{u, v}`` if present.

        Returns:
            ``True`` if an edge was removed, ``False`` if it did not exist.

        Raises:
            NodeNotFoundError: If either endpoint is not a node.
        """
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v not in self._adj[u]:
            return False
        del self._adj[u][v]
        del self._adj[v][u]
        self._compact.remove(u, v)
        self._compact.remove(v, u)
        self._num_edges -= 1
        return True

    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident edges.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for nbr in list(self._adj[node]):
            self.remove_edge(node, nbr)
        del self._adj[node]
        self._compact.drop_row(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all node ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once (canonical order)."""
        seen: Set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = normalize_edge(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighborhood ``N(node)`` as an immutable set.

        This is exactly what the paper's ``q(v)`` interface returns for a
        user, which is why it is frozen: callers must not mutate the graph
        through a query result.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_view(self, node: Node) -> AbstractSet[Node]:
        """Internal set-like neighborhood view — for hot loops only.

        Callers must not mutate the graph while holding the view; use
        :meth:`add_edge` / :meth:`remove_edge`.  Exposed because copying
        neighborhoods on every random-walk step dominates runtime on large
        graphs.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return self._adj[node].keys()
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_seq(self, node: Node) -> Tuple[Node, ...]:
        """The neighborhood as a stable insertion-ordered tuple.

        The tuple is cached per node and rebuilt lazily after mutations, so
        repeated calls between mutations are O(1).  Ordering follows edge
        insertion order, which is deterministic for deterministically built
        graphs — the property the seeded walk engines rely on for
        reproducible uniform draws without sorting.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return self._compact.seq(node)
        except KeyError:
            raise NodeNotFoundError(node) from None

    def random_neighbor(self, node: Node, rng: random.Random) -> Optional[Node]:
        """Uniformly draw one neighbor of ``node`` in O(1).

        Returns ``None`` for isolated nodes.  Deterministic for a fixed
        ``rng`` state because draws index the stable neighbor tuple.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return self._compact.draw(node, rng)
        except KeyError:
            raise NodeNotFoundError(node) from None

    def draw_many(
        self, nodes: Sequence[Node], rngs: Sequence[random.Random]
    ) -> List[Optional[Node]]:
        """One uniform neighbor draw per ``(node, rng)`` pair, one gather.

        Bit-for-bit equal to calling :meth:`random_neighbor` per pair in
        list order — each rng consumes exactly one ``randrange(degree)``
        (none for isolated nodes) — with the neighbor resolution done in
        a single numpy fancy-index instead of per-pair tuple traffic.

        Raises:
            NodeNotFoundError: If any node does not exist.
        """
        try:
            return self._compact.draw_many(nodes, rngs)
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None

    def degrees_many(self, nodes: Sequence[Node]):
        """Degrees for a batch in one call; ``-1`` marks unknown nodes."""
        return self._compact.degrees_many(nodes)

    def known_mask(self, nodes: Sequence[Node]):
        """Boolean membership for a batch of ids in one call."""
        return self._compact.row_mask(nodes)

    def csr(self):
        """Compact CSR export ``(nodes, offsets, columns)`` — see
        :meth:`repro.core.adjacency.CompactAdjacency.csr`."""
        return self._compact.csr()

    def degree(self, node: Node) -> int:
        """``k_node = |N(node)|``.

        Raises:
            NodeNotFoundError: If the node does not exist.
        """
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def common_neighbors(self, u: Node, v: Node) -> FrozenSet[Node]:
        """``N(u) ∩ N(v)`` — the quantity at the heart of Theorem 3.

        Raises:
            NodeNotFoundError: If either node does not exist.
        """
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        a, b = self._adj[u], self._adj[v]
        if len(b) < len(a):
            a, b = b, a
        return frozenset(x for x in a if x in b)

    def total_degree(self) -> int:
        """Sum of all degrees, i.e. ``2|E|`` — the SRW stationary normalizer."""
        return 2 * self._num_edges

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy of the topology (node ids are shared, indexes are not)."""
        g = Graph()
        g._adj = {node: dict(nbrs) for node, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        # Rebuild the mirror from the authoritative rows: same node order,
        # same per-row order, hence identical draw streams.
        for node, nbrs in g._adj.items():
            g._compact.set_row(node, nbrs)
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes`` (missing ids are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        g = Graph()
        for n in keep:
            g.add_node(n)
        for n in keep:
            for m in self._adj[n]:
                if m in keep:
                    g.add_edge(n, m)
        return g

    def relabeled(self) -> tuple["Graph", Dict[Node, int]]:
        """Copy with nodes relabeled to ``0..n-1`` in iteration order.

        Returns:
            ``(graph, mapping)`` where ``mapping[original_id] = new_int_id``.
            Used by the spectral analysis to index matrices.
        """
        mapping = {node: i for i, node in enumerate(self._adj)}
        g = Graph()
        for node in self._adj:
            g.add_node(mapping[node])
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g, mapping

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
