"""Dataset stand-ins for the paper's evaluation datasets.

The paper evaluates on SNAP snapshots of Epinions and Slashdot (Table I)
and on the live Google Plus API.  Neither is available offline, so this
subpackage builds *stand-ins*: synthetic attributed social networks with
the topological signatures that drive the paper's results (heavy-tailed
degrees, strong community structure, low conductance, small effective
diameter), scaled to laptop size.  Real SNAP edge lists, when present on
disk, can be loaded through :func:`repro.datasets.registry.load_snap_file`.
"""

from repro.datasets.registry import DATASET_NAMES, load, table1_rows
from repro.datasets.standins import (
    SocialNetwork,
    epinions_like,
    google_plus_like,
    slashdot_a_like,
    slashdot_b_like,
)

__all__ = [
    "DATASET_NAMES",
    "load",
    "table1_rows",
    "SocialNetwork",
    "epinions_like",
    "google_plus_like",
    "slashdot_a_like",
    "slashdot_b_like",
]
