"""Synthetic stand-ins for Epinions, Slashdot, and Google Plus.

Each builder produces a :class:`SocialNetwork`: an undirected topology plus
a profile document per user, wrapped behind the restrictive ``q(v)``
interface on demand.  The topology generator layers Chung–Lu power-law
degrees *within* planted communities and sparse cross-community edges, then
keeps the largest connected component — reproducing the OSN signatures the
paper's technique depends on (many removable intra-community edges, few
cross-cutting ones, low conductance).

Scaling: the stand-ins are ~1/10 the node count of the SNAP originals so a
full figure sweep runs in seconds; the *shape* of every experiment is
preserved (see DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable, Optional

from repro.datastore.documents import DocumentStore
from repro.generators.communities import chung_lu_graph, power_law_degrees
from repro.graph.adjacency import Graph
from repro.graph.traversal import largest_connected_component
from repro.interface.api import RestrictedSocialAPI
from repro.interface.providers import (
    InMemoryGraphProvider,
    LatencyModelProvider,
    SocialProvider,
)
from repro.interface.ratelimit import RateLimiter
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable

_WORDS = (
    "coffee code music travel books photography hiking running cooking art "
    "movies games startups science history soccer chess poetry gardening "
    "painting cycling fishing writing teaching parenting investing yoga"
).split()


@dataclasses.dataclass
class SocialNetwork:
    """A named attributed social network ready to be sampled.

    Attributes:
        name: Dataset label (Table I row name).
        graph: Undirected topology (largest connected component).
        profiles: Per-user attribute documents (may be empty for
            topology-only datasets, matching the paper's local datasets).
    """

    name: str
    graph: Graph
    profiles: DocumentStore

    def interface(
        self,
        rate_limiter: Optional[RateLimiter] = None,
        query_budget: Optional[int] = None,
        latency_distribution: Optional[str] = None,
        latency_scale: float = 1.0,
        latency_seed: int = 0,
        provider: Optional[SocialProvider] = None,
    ) -> RestrictedSocialAPI:
        """A fresh restrictive ``q(v)`` interface over this network.

        Args:
            rate_limiter: Provider throttle; default unlimited.
            query_budget: Optional hard unique-query cap.
            latency_distribution: When given (one of
                :data:`~repro.interface.providers.LATENCY_DISTRIBUTIONS`),
                serve responses through a seeded
                :class:`~repro.interface.providers.LatencyModelProvider`
                instead of the zero-latency default.
            latency_scale: Latency scale in simulated seconds.
            latency_seed: Seed for the per-user latency draws.
            provider: Fully custom provider stack over this network
                (e.g. a :class:`~repro.interface.providers.FlakyProvider`
                chain); mutually exclusive with ``latency_distribution``.
        """
        if provider is None:
            provider = InMemoryGraphProvider(self.graph, profiles=self.profiles)
            if latency_distribution is not None:
                provider = LatencyModelProvider(
                    provider,
                    distribution=latency_distribution,
                    scale=latency_scale,
                    seed=latency_seed,
                )
        elif latency_distribution is not None or latency_scale != 1.0 or latency_seed != 0:
            raise ValueError(
                "pass either a custom provider or latency_* options, not both "
                "(a custom provider carries its own latency configuration)"
            )
        return RestrictedSocialAPI(
            provider,
            rate_limiter=rate_limiter,
            query_budget=query_budget,
        )

    def seed_node(self, seed: RngLike = 0) -> Node:
        """A uniformly chosen start node for walks (reproducible)."""
        rng = ensure_rng(seed)
        return rng.choice(sorted(self.graph.nodes()))


def _community_power_law_graph(
    num_nodes: int,
    num_communities: int,
    exponent: float,
    min_degree: int,
    cross_fraction: float,
    seed: RngLike,
    clique_lo: int = 4,
    clique_hi: int = 9,
) -> Graph:
    """OSN-signature topology: dense micro-cliques + power-law overlay +
    sparse cross-community edges; largest connected component kept.

    Each community is a patchwork of micro-cliques (friend circles of
    ``clique_lo..clique_hi`` users, the source of real OSNs' high
    clustering — and of the near-complete neighborhoods Theorem 3's
    removal criterion certifies), overlaid with Chung–Lu power-law edges
    (hubs), chained for intra-community connectivity.  Communities connect
    through a ring plus a small fraction of random cross edges, producing
    the low-conductance regime the paper targets.

    Args:
        num_nodes: Total nodes before LCC restriction.
        num_communities: Number of equal-size communities.
        exponent: Power-law exponent of the hub overlay degrees.
        min_degree: Minimum expected overlay degree.
        cross_fraction: Cross-community edges as a fraction of
            intra-community edges (small: OSNs have few cross-cutting
            edges).
        seed: Randomness.
        clique_lo: Smallest micro-clique size (≥ 3).
        clique_hi: Largest micro-clique size.
    """
    rng = ensure_rng(seed)
    size = num_nodes // num_communities
    graph = Graph()
    offset = 0
    for _ in range(num_communities):
        members = list(range(offset, offset + size))
        graph.add_nodes(members)
        # Heterogeneous communities: each has its own micro-clique size
        # band (real OSN communities differ in density, which is what
        # makes trace-based convergence diagnostics track mixing — a walk
        # stuck in one community sees a locally-stationary but globally
        # wrong attribute stream).
        c_lo = rng.randint(clique_lo, max(clique_lo, clique_hi - 2))
        c_hi = c_lo + rng.randint(1, 3)
        # 1. Micro-cliques: consecutive chunks of the community.
        start = 0
        prev_rep = None
        while start < size:
            q = min(rng.randint(c_lo, c_hi), size - start)
            clique = members[start : start + q]
            for i in range(q):
                for j in range(i + 1, q):
                    graph.add_edge(clique[i], clique[j])
            # Chain cliques so the community is connected even before the
            # hub overlay lands.
            if prev_rep is not None:
                graph.add_edge(prev_rep, clique[0])
            prev_rep = clique[rng.randrange(q)]
            start += q
        # 2. Power-law hub overlay within the community (sparse); the
        # exponent jitter adds another axis of community heterogeneity.
        degs = power_law_degrees(
            size,
            exponent=exponent + rng.uniform(-0.2, 0.4),
            min_degree=1,
            max_degree=max(min_degree, size // 3),
            seed=rng,
        )
        extra = chung_lu_graph(degs, seed=rng)
        for u, v in extra.edges():
            graph.add_edge(offset + u, offset + v)
        offset += size
    intra_edges = graph.num_edges
    num_cross = max(num_communities - 1, int(intra_edges * cross_fraction))
    # Ring of communities guarantees inter-community connectivity; the rest
    # of the cross edges land between uniform random communities.
    for c in range(num_communities):
        u = c * size + rng.randrange(size)
        v = ((c + 1) % num_communities) * size + rng.randrange(size)
        if u != v:
            graph.add_edge(u, v)
    for _ in range(num_cross):
        cu, cv = rng.sample(range(num_communities), 2)
        u = cu * size + rng.randrange(size)
        v = cv * size + rng.randrange(size)
        if u != v:
            graph.add_edge(u, v)
    return largest_connected_component(graph)


def _attach_profiles(
    graph: Graph, seed: RngLike, with_description: bool
) -> DocumentStore:
    """Profile documents per node: age, activity, optional self-description."""
    rng = ensure_rng(seed)
    store = DocumentStore()
    for node in graph.nodes():
        doc = {
            "user_id": node,
            "age": max(13, int(rng.gauss(31, 10))),
            "posts": max(0, int(rng.expovariate(1 / 40.0))),
        }
        if with_description:
            # Length loosely increases with degree: active users write more.
            k = graph.degree(node)
            n_words = max(0, int(rng.gauss(4 + 1.5 * math.log1p(k), 3)))
            doc["self_description"] = " ".join(
                rng.choice(_WORDS) for _ in range(n_words)
            )
        store.insert(node, doc)
    return store


def epinions_like(seed: RngLike = 0, scale: float = 1.0) -> SocialNetwork:
    """Epinions stand-in (paper original: 26,588 nodes / 100,120 edges).

    Scaled to ~2,600 nodes by default; pass ``scale`` to grow/shrink.
    """
    n = max(200, int(2600 * scale))
    graph = _community_power_law_graph(
        num_nodes=n,
        num_communities=max(4, n // 260),
        exponent=2.2,
        min_degree=3,
        cross_fraction=0.02,
        seed=seed,
    )
    return SocialNetwork(
        name="epinions_like", graph=graph, profiles=_attach_profiles(graph, seed, False)
    )


def slashdot_a_like(seed: RngLike = 1, scale: float = 1.0) -> SocialNetwork:
    """Slashdot-A stand-in (paper original: 70,068 nodes / 428,714 edges).

    Scaled to ~3,500 nodes by default with a denser degree profile than the
    Epinions stand-in, mirroring the originals' ratio.
    """
    n = max(300, int(3500 * scale))
    graph = _community_power_law_graph(
        num_nodes=n,
        num_communities=max(5, n // 350),
        exponent=2.0,
        min_degree=4,
        cross_fraction=0.025,
        seed=seed,
    )
    return SocialNetwork(
        name="slashdot_a_like", graph=graph, profiles=_attach_profiles(graph, seed, False)
    )


def slashdot_b_like(seed: RngLike = 2, scale: float = 1.0) -> SocialNetwork:
    """Slashdot-B stand-in (paper original: 70,999 nodes / 436,453 edges).

    Same family as Slashdot-A with a different seed — the originals are two
    snapshots of the same site months apart.
    """
    n = max(300, int(3500 * scale))
    graph = _community_power_law_graph(
        num_nodes=n,
        num_communities=max(5, n // 350),
        exponent=2.0,
        min_degree=4,
        cross_fraction=0.025,
        seed=seed,
    )
    return SocialNetwork(
        name="slashdot_b_like", graph=graph, profiles=_attach_profiles(graph, seed, False)
    )


def google_plus_like(seed: RngLike = 3, scale: float = 1.0) -> SocialNetwork:
    """Google Plus stand-in: attributed network with self-descriptions.

    The paper crawled 240,276 users of the live network; the stand-in is a
    ~4,000-node attributed graph whose profile documents carry the
    ``self_description`` field that Figure 11(c) aggregates over.
    """
    n = max(300, int(4000 * scale))
    graph = _community_power_law_graph(
        num_nodes=n,
        num_communities=max(6, n // 330),
        exponent=2.4,
        min_degree=3,
        cross_fraction=0.015,
        seed=seed,
    )
    return SocialNetwork(
        name="google_plus_like",
        graph=graph,
        profiles=_attach_profiles(graph, seed, True),
    )
