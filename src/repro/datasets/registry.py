"""Named dataset registry and the Table I statistics driver.

``load(name, seed)`` resolves any of the four stand-in names; callers can
also point :func:`load_snap_file` at a real SNAP edge list (directed, as
shipped by SNAP) and get the same :class:`SocialNetwork` shape after the
paper's mutual-edge conversion.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.datasets.standins import (
    SocialNetwork,
    epinions_like,
    google_plus_like,
    slashdot_a_like,
    slashdot_b_like,
)
from repro.datastore.documents import DocumentStore
from repro.errors import ExperimentError
from repro.graph.io import read_edge_list
from repro.graph.digraph import DiGraph, mutual_undirected
from repro.graph.metrics import GraphStats, graph_stats
from repro.graph.traversal import largest_connected_component
from repro.utils.rng import RngLike

_BUILDERS: Dict[str, Callable[..., SocialNetwork]] = {
    "epinions_like": epinions_like,
    "slashdot_a_like": slashdot_a_like,
    "slashdot_b_like": slashdot_b_like,
    "google_plus_like": google_plus_like,
}

DATASET_NAMES = tuple(_BUILDERS)

#: The three "local" datasets of Table I (Google Plus is the online one).
LOCAL_DATASET_NAMES = ("epinions_like", "slashdot_a_like", "slashdot_b_like")

#: Table I of the paper, for side-by-side reporting.
PAPER_TABLE1 = {
    "epinions_like": {"nodes": 26588, "edges": 100120, "diameter90": 4.8},
    "slashdot_a_like": {"nodes": 70068, "edges": 428714, "diameter90": 4.5},
    "slashdot_b_like": {"nodes": 70999, "edges": 436453, "diameter90": 4.5},
}


def load(name: str, seed: RngLike = None, scale: float = 1.0) -> SocialNetwork:
    """Build the named dataset stand-in.

    Args:
        name: One of :data:`DATASET_NAMES`.
        seed: Randomness; each builder has its own default so the four
            datasets differ even with ``seed=None``.
        scale: Size multiplier (1.0 = the default laptop scale).

    Raises:
        ExperimentError: For unknown names.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None
    if seed is None:
        return builder(scale=scale)
    # Mix the dataset name into the seed so that e.g. the two Slashdot
    # snapshots differ even when the caller passes one master seed.
    # zlib.crc32 is stable across processes (str hash() is salted).
    if isinstance(seed, int):
        seed = seed * 1_000_003 + (zlib.crc32(name.encode()) & 0xFFFF)
    return builder(seed=seed, scale=scale)


def load_snap_file(path: Union[str, Path], name: str | None = None) -> SocialNetwork:
    """Load a real SNAP snapshot (directed edge list) as a SocialNetwork.

    Applies the paper's §V-A.2 conversion: keep only mutual arcs, then the
    largest connected component.

    Args:
        path: SNAP edge-list file.
        name: Dataset label; defaults to the file stem.
    """
    digraph = read_edge_list(path, directed=True)
    assert isinstance(digraph, DiGraph)
    graph = largest_connected_component(mutual_undirected(digraph))
    return SocialNetwork(
        name=name or Path(path).stem, graph=graph, profiles=DocumentStore()
    )


def table1_rows(seed: RngLike = None, scale: float = 1.0) -> List[GraphStats]:
    """Table I statistics for the three local stand-ins (plus Google Plus).

    Returns one :class:`GraphStats` per dataset, in registry order.
    """
    rows = []
    for name in DATASET_NAMES:
        net = load(name, seed=seed, scale=scale)
        rows.append(graph_stats(net.graph, name=net.name))
    return rows
