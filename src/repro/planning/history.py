"""O(1) "is this neighborhood already known?" answers plus hit statistics.

The crawl's history lives in the shared
:class:`~repro.interface.cache.NeighborhoodCache`: every billed ``q(v)``
response is cached there, and §II-B makes re-reading it free.  What the
planning layer needs on top is an *index view* of that history — a
constant-time membership probe the scheduler can consult before
dispatching, plus the accounting that makes cache effectiveness visible
(how often chains step through known territory, and which fleet regions
the known territory concentrates in).

:class:`HistoryIndex` deliberately owns **no copy** of the key set: every
``is_known`` probe delegates to the cache's own O(1) ``has`` check, so
LRU eviction and TTL expiry in the backing store can never leave the
index claiming a neighborhood is known after the cache dropped it (the
property suite drives random eviction/expiry schedules against exactly
this invariant).  What the index *does* own is derived statistics —
per-node visit counts (the frontier weights the prefetch ranking uses)
and per-region step accounting — which are plain counters and therefore
safe to snapshot and resume independently of the cache's contents.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.interface.cache import NeighborhoodCache

Node = Hashable


class HistoryIndex:
    """Index view over the shared neighborhood cache.

    Args:
        cache: The sampler-side cache the interface writes every billed
            response into.  Held by reference — the index never copies or
            mutates it.
        shard_of: Optional user→region map (typically
            :meth:`~repro.fleet.provider.ShardedProvider.shard_of`), used
            to attribute step statistics to fleet regions.  ``None``
            books everything under region ``0``.
    """

    def __init__(
        self,
        cache: NeighborhoodCache,
        shard_of: Optional[Callable[[Node], int]] = None,
    ) -> None:
        self._cache = cache
        self._shard_of = shard_of
        self._visits: Dict[Node, int] = {}
        self._known_steps = 0
        self._unknown_steps = 0
        self._region_known: Dict[int, int] = {}
        self._region_unknown: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # membership (delegated: eviction/expiry can never go stale here)
    # ------------------------------------------------------------------
    def is_known(self, user: Node) -> bool:
        """Whether ``user``'s neighborhood is currently cached.  O(1).

        Always answered by the live cache, so an entry evicted under LRU
        pressure or expired past its TTL reads *unknown* here on the very
        next probe — the index cannot hold a stale "known".
        """
        return self._cache.has(user)

    def known_count(self) -> int:
        """Number of users whose neighborhoods are currently cached."""
        return self._cache.known_count()

    # ------------------------------------------------------------------
    # step accounting (fed by the scheduler's planning hooks)
    # ------------------------------------------------------------------
    def record_step(self, node: Node, known: bool) -> None:
        """Book one committed walk step onto ``node``.

        Args:
            node: The node the step landed on.
            known: Whether the step advanced through history (no provider
                dispatch — a cache-first step) or had to fetch.
        """
        self._visits[node] = self._visits.get(node, 0) + 1
        region = self._shard_of(node) if self._shard_of is not None else 0
        if known:
            self._known_steps += 1
            self._region_known[region] = self._region_known.get(region, 0) + 1
        else:
            self._unknown_steps += 1
            self._region_unknown[region] = self._region_unknown.get(region, 0) + 1

    def visit_count(self, node: Node) -> int:
        """How many recorded steps have landed on ``node``."""
        return self._visits.get(node, 0)

    @property
    def known_steps(self) -> int:
        """Steps that advanced through already-known neighborhoods."""
        return self._known_steps

    @property
    def unknown_steps(self) -> int:
        """Steps that had to dispatch a provider fetch."""
        return self._unknown_steps

    def region_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-region step breakdown: ``{region: {"known": n, "unknown": n}}``."""
        regions = sorted(set(self._region_known) | set(self._region_unknown))
        return {
            region: {
                "known": self._region_known.get(region, 0),
                "unknown": self._region_unknown.get(region, 0),
            }
            for region in regions
        }

    def hit_rate(self) -> float:
        """Fraction of recorded steps that were cache-first (0.0 when none)."""
        total = self._known_steps + self._unknown_steps
        return self._known_steps / total if total else 0.0

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable derived statistics (the cache snapshots itself)."""
        return {
            "visits": dict(self._visits),
            "known_steps": self._known_steps,
            "unknown_steps": self._unknown_steps,
            "region_known": dict(self._region_known),
            "region_unknown": dict(self._region_unknown),
        }

    def load_state(self, state: dict) -> None:
        """Restore statistics captured by :meth:`state_dict`.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._visits = {node: int(count) for node, count in state["visits"].items()}
        self._known_steps = int(state["known_steps"])
        self._unknown_steps = int(state["unknown_steps"])
        self._region_known = {int(r): int(c) for r, c in state["region_known"].items()}
        self._region_unknown = {int(r): int(c) for r, c in state["region_unknown"].items()}
