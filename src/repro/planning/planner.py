"""The dispatch planner: history-aware stepping, prefetch, chain lifecycle.

:class:`DispatchPlanner` is the one object the event-driven scheduler
talks to.  It composes the three planning parts:

* a :class:`~repro.planning.history.HistoryIndex` over the interface's
  shared neighborhood cache (O(1) known-region probes + hit statistics);
* predictive prefetch — the planner *replays the chain's own RNG* through
  cached territory to learn which neighborhood the walk will fetch next,
  and the scheduler rides that fetch in an open burst's spare slot,
  accounted by a :class:`~repro.planning.prefetch.PrefetchLedger`.
  Because the prediction is the walk's actual next draw (not a guess),
  default planning spends exactly the queries the walk would have spent —
  just earlier, where they share an admission slot.  A ``speculation``
  knob adds frontier-ranked *uncertain* candidates on top for workloads
  willing to trade unique queries for latency;
* an optional :class:`~repro.planning.lifecycle.AdaptiveChainPolicy`
  that retires latency-tail chains and spawns warm reserves.

The planner is bound to one interface/fleet pair by the scheduler that
owns it and must not be shared; all of its mutable state (visit counts,
ledger, counters) serializes through ``state_dict`` inside the
scheduler's snapshot, so an in-flight checkpoint with outstanding
prefetches resumes bit-for-bit.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, Hashable, Optional, Tuple

from repro.datastore.snapshot import encode_value
from repro.errors import PlanningError
from repro.obs.trace import TraceRecorder
from repro.planning.history import HistoryIndex
from repro.planning.lifecycle import AdaptiveChainPolicy
from repro.planning.prefetch import PrefetchLedger

Node = Hashable


def _stable_rank(seed: int, user: Node) -> int:
    """Process-stable 32-bit rank mixing ``seed`` with a user id.

    Python's ``hash`` is salted per process for strings, so speculative
    candidate ranking anchors on the snapshot codec's canonical encoding
    instead — identical across runs and machines for any snapshotable id.
    """
    key = f"{seed}:{json.dumps(encode_value(user), sort_keys=True, separators=(',', ':'))}"
    return zlib.crc32(key.encode("utf-8"))


class DispatchPlanner:
    """History-aware planning for :class:`~repro.walks.scheduler.EventDrivenWalkers`.

    Args:
        lookahead: Maximum *predicted* fetches to ride spare burst slots
            per chain per tick.  Predictions replay the chain's RNG, so
            each one is a fetch the walk will issue anyway; ``0`` turns
            predictive prefetch off.
        speculation: Maximum additional *speculative* candidates per
            chain per tick — unvisited neighbors of the chain's frontier,
            ranked by frontier visit weight with a seeded deterministic
            tie-break.  These may never be walked (extra §II-B spend);
            keep ``0`` for cost-neutral planning.
        policy: Optional adaptive chain lifecycle policy.
        seed: Seed for the speculative ranking (no effect when
            ``speculation`` is 0).

    Raises:
        PlanningError: On negative knobs.
    """

    def __init__(
        self,
        lookahead: int = 4,
        speculation: int = 0,
        policy: Optional[AdaptiveChainPolicy] = None,
        seed: int = 0,
    ) -> None:
        if lookahead < 0:
            raise PlanningError("lookahead must be non-negative")
        if speculation < 0:
            raise PlanningError("speculation must be non-negative")
        self.lookahead = int(lookahead)
        self.speculation = int(speculation)
        self._policy = policy
        self._seed = int(seed)
        self._api = None
        self._history: Optional[HistoryIndex] = None
        self._ledger = PrefetchLedger()
        # Per-engine prediction books: {engine: {"hits": n, "misses": n,
        # "speculative": n}}.  A hit is a replay that resolved a concrete
        # future fetch; a miss is a replay that answered None (engine
        # guard, unresolvable branch, or horizon exhausted); speculative
        # counts frontier candidates offered under the speculation knob.
        self._prediction: Dict[str, Dict[str, int]] = {}
        self._warm_visits: Dict[Node, int] = {}
        self._recorder: Optional[TraceRecorder] = None

    # ------------------------------------------------------------------
    # binding (done once, by the owning scheduler)
    # ------------------------------------------------------------------
    def bind(self, api, fleet) -> None:
        """Attach to the interface/fleet pair the owning scheduler drives.

        Args:
            api: The shared :class:`~repro.interface.api.RestrictedSocialAPI`.
            fleet: The :class:`~repro.fleet.provider.ShardedProvider` the
                batched dispatch loop coalesces bursts against.

        Raises:
            PlanningError: If this planner is already bound — planners
                hold per-run state and must not be shared between
                scheduler instances.
        """
        if self._api is not None:
            raise PlanningError(
                "this DispatchPlanner is already bound to a scheduler; "
                "construct a fresh planner per EventDrivenWalkers group"
            )
        self._api = api
        self._history = HistoryIndex(api.cache, shard_of=fleet.shard_of)

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has been called."""
        return self._api is not None

    def _require_bound(self) -> None:
        if self._api is None:
            raise PlanningError("DispatchPlanner is not bound to a scheduler yet")

    # ------------------------------------------------------------------
    # composed parts
    # ------------------------------------------------------------------
    @property
    def history(self) -> HistoryIndex:
        """The history index (available after binding)."""
        self._require_bound()
        return self._history

    @property
    def ledger(self) -> PrefetchLedger:
        """The prefetch ledger."""
        return self._ledger

    @property
    def policy(self) -> Optional[AdaptiveChainPolicy]:
        """The adaptive chain policy, or ``None``."""
        return self._policy

    # ------------------------------------------------------------------
    # observability (zero-cost when no recorder is attached)
    # ------------------------------------------------------------------
    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, or ``None``."""
        return self._recorder

    def set_recorder(self, recorder: Optional[TraceRecorder]) -> None:
        """Attach (or detach, with ``None``) a trace recorder.

        The planner streams prefetch-ledger balances into the recorder's
        metrics registry; the prefetch *events* are emitted by the owning
        scheduler, which knows the simulated dispatch times.
        """
        self._recorder = recorder

    def _publish_ledger(self) -> None:
        """Stream the ledger balance into the attached metrics registry."""
        metrics = self._recorder.metrics
        metrics.gauge("prefetch.outstanding").set(float(self._ledger.outstanding))
        metrics.gauge("prefetch.used").set(float(self._ledger.used))
        metrics.gauge("prefetch.wasted").set(float(self._ledger.wasted))
        metrics.gauge("prefetch.issued").set(float(self._ledger.issued))

    # ------------------------------------------------------------------
    # prediction (consulted by the scheduler's burst-settling hook)
    # ------------------------------------------------------------------
    #: Default step horizon for RNG-replay prediction: how far through
    #: cached territory a chain's future path is simulated.
    PREDICT_HORIZON = 64

    def predict_next_fetch(self, sampler, max_steps: Optional[int] = None) -> Optional[Node]:
        """The neighborhood ``sampler`` will fetch next, if predictable.

        Delegates to the sampler's own ``predict_next_fetch`` (walk
        engines that can replay their RNG through cached territory
        implement it; the base class answers ``None``).  Returns ``None``
        when the engine cannot predict or no fetch lies within
        ``max_steps`` future steps.

        Args:
            sampler: The chain to predict for.
            max_steps: Step horizon; the scheduler passes the chain's
                *remaining* step budget during collection so a prefetch
                is never issued for a neighborhood the chain cannot
                reach before its quota fills.  Defaults to
                :data:`PREDICT_HORIZON`.
        """
        self._require_bound()
        peek = getattr(sampler, "predict_next_fetch", None)
        if peek is None:
            return None
        horizon = self.PREDICT_HORIZON if max_steps is None else min(max_steps, self.PREDICT_HORIZON)
        if horizon <= 0:
            return None
        target = peek(max_steps=horizon)
        books = self._engine_books(sampler)
        if target is None:
            books["misses"] += 1
        else:
            books["hits"] += 1
        return target

    def _engine_books(self, sampler) -> Dict[str, int]:
        """The per-engine prediction counters row for ``sampler``'s type."""
        return self._prediction.setdefault(
            type(sampler).__name__, {"hits": 0, "misses": 0, "speculative": 0}
        )

    def speculative_targets(self, sampler) -> Tuple[Node, ...]:
        """Frontier-ranked uncertain prefetch candidates for one chain.

        Unknown neighbors of the chain's current position, ranked by the
        seeded stable hash (the frontier node's visit count already
        weights *which* chain positions are worth expanding — the
        scheduler calls this per stepping chain, so hot frontier nodes
        get proportionally more expansion opportunities).  A planner
        warm-started from a prior run's :meth:`warm_start` statistics
        promotes candidates that run visited often to the front of the
        ranking — history says the walk keeps coming back to them.
        Empty when ``speculation`` is 0.
        """
        self._require_bound()
        if self.speculation == 0:
            return ()
        seq = self._api.cache.neighbor_seq(sampler.current)
        if not seq:
            return ()
        unknown = [v for v in seq if not self._history.is_known(v)]
        warm = self._warm_visits
        if warm:
            unknown.sort(
                key=lambda v: (-warm.get(v, 0), _stable_rank(self._seed, v), repr(v))
            )
        else:
            unknown.sort(key=lambda v: (_stable_rank(self._seed, v), repr(v)))
        chosen = tuple(unknown[: self.speculation])
        if chosen:
            self._engine_books(sampler)["speculative"] += len(chosen)
        return chosen

    # ------------------------------------------------------------------
    # cross-run warm start
    # ------------------------------------------------------------------
    def warm_start(self, stats: dict) -> None:
        """Seed planning with a prior run's history statistics.

        Args:
            stats: A :meth:`HistoryIndex.state_dict` payload from an
                earlier run (as persisted by a
                :class:`~repro.datastore.history.HistoryStore`).  The
                prior visit counts become the speculative ranking's warm
                prior; the step counters are *not* merged into this run's
                own accounting — ``summary()`` keeps reporting what this
                run did, with the warm prior listed separately.

        Raises:
            PlanningError: If the planner is not bound yet.
        """
        self._require_bound()
        self._warm_visits = {
            node: int(count) for node, count in stats.get("visits", {}).items()
        }

    @property
    def warm_visit_count(self) -> int:
        """Nodes carrying a warm-start visit prior (0 when cold)."""
        return len(self._warm_visits)

    # ------------------------------------------------------------------
    # step accounting (called by the scheduler after every committed step)
    # ------------------------------------------------------------------
    def note_step(self, chain: int, node: Node, free: bool):
        """Book one committed step for planning statistics.

        Args:
            chain: The stepping chain's index.
            node: The node the step landed on.
            free: Whether the step dispatched nothing (advanced through
                history at zero simulated latency).

        Returns:
            When the step consumed a pending prefetch: the simulated
            time that prefetch's round trip landed (the scheduler delays
            the chain to it if the chain got there first).  ``None``
            otherwise.
        """
        self._require_bound()
        self._history.record_step(node, known=free)
        landed = self._ledger.mark_used(node)
        if self._recorder is not None and landed is not None:
            self._publish_ledger()
        return landed

    def on_retire(self, chain: int) -> int:
        """Write off a retired chain's outstanding prefetches; returns count."""
        dropped = self._ledger.drop_chain(chain)
        if self._recorder is not None and dropped:
            self._publish_ledger()
        return dropped

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-safe accounting: prefetch ledger + history statistics."""
        self._require_bound()
        prefetch = self._ledger.summary()
        return {
            "lookahead": self.lookahead,
            "speculation": self.speculation,
            "prefetch_issued": prefetch["issued"],
            "prefetch_used": prefetch["used"],
            "prefetch_wasted": prefetch["wasted"],
            "prefetch_outstanding": prefetch["outstanding"],
            "cache_first_steps": self._history.known_steps,
            "fetched_steps": self._history.unknown_steps,
            "cache_first_rate": round(self._history.hit_rate(), 6),
            "region_steps": self._history.region_stats(),
            "prediction": {k: dict(v) for k, v in sorted(self._prediction.items())},
            "warm_visits": len(self._warm_visits),
        }

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable planner state (history stats + ledger)."""
        self._require_bound()
        return {
            "history": self._history.state_dict(),
            "ledger": self._ledger.state_dict(),
            "prediction": {k: dict(v) for k, v in self._prediction.items()},
            "warm_visits": dict(self._warm_visits),
        }

    def load_state(self, state: dict) -> None:
        """Restore planner state captured by :meth:`state_dict`.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._require_bound()
        self._history.load_state(state["history"])
        self._ledger.load_state(state["ledger"])
        # Keys below joined with the cross-run warm-start work; absent in
        # snapshots written before it (both default to "nothing known").
        self._prediction = {
            engine: {key: int(n) for key, n in row.items()}
            for engine, row in state.get("prediction", {}).items()
        }
        self._warm_visits = {
            node: int(count) for node, count in state.get("warm_visits", {}).items()
        }
