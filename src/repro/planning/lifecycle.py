"""Adaptive chain lifecycle: spawn and retire chains from observed behaviour.

A fixed chain count is the wrong knob under a heterogeneous fleet: one
chain pinned to a slow replica's key range drags the group makespan (the
event queue hides it better than lock-step rounds do, but its samples
still arrive at the tail), while an unconverged burn-in could use more
exploration than the configured chains provide.  The event-driven
scheduler makes chain lifecycle cheap — a chain is one heap entry — so a
policy can adjust the roster mid-run.

:class:`AdaptiveChainPolicy` is a *pure decision function* over observed
per-chain statistics; the scheduler owns the roster and asks the policy
at collection round floors.  Three roster states exist:

* ``active`` — scheduled; contributes samples toward its quota;
* ``reserve`` — burned in with the group but dormant: not scheduled,
  available to spawn (the warm standby the event queue makes free);
* ``retired`` — permanently descheduled; its already-merged samples stay
  exactly where completion order put them.

Decisions are deterministic functions of the observations, so two runs
over the same seeds make identical roster changes and a checkpointed
roster resumes bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import List, Optional, Sequence

from repro.errors import PlanningError

#: Roster states a chain can be in.
ROSTER_ACTIVE = "active"
ROSTER_RESERVE = "reserve"
ROSTER_RETIRED = "retired"


@dataclasses.dataclass(frozen=True)
class ChainObservation:
    """One chain's observed behaviour, as the scheduler books it.

    Attributes:
        chain: Chain index.
        roster: Current roster state (``active``/``reserve``/``retired``).
        timed_steps: Stepped actions whose dispatch latency was observed.
        latency: Total simulated dispatch latency those steps incurred.
        collect_steps: Stepped actions during the collection phase.
        collected: Samples the chain has contributed so far.
    """

    chain: int
    roster: str
    timed_steps: int
    latency: float
    collect_steps: int
    collected: int

    @property
    def mean_latency(self) -> float:
        """Observed latency per stepped action (0.0 before any step)."""
        return self.latency / self.timed_steps if self.timed_steps else 0.0


@dataclasses.dataclass(frozen=True)
class RosterDecision:
    """What the policy wants changed: chains to retire and to spawn."""

    retire: tuple = ()
    spawn: tuple = ()

    def __bool__(self) -> bool:
        return bool(self.retire or self.spawn)


class AdaptiveChainPolicy:
    """Retire latency-tail outliers; spawn warm reserves to replace them.

    Args:
        start_chains: How many chains collect from the start; the rest
            burn in with the group but wait as warm reserves.  ``None``
            activates every chain (retire-only operation).
        min_chains: Never retire below this many active chains.
        max_active: Cap on simultaneously active chains; ``None`` means
            the group size.
        tail_ratio: A chain is a tail outlier when its mean observed
            step latency exceeds ``tail_ratio`` times the active median.
        evaluate_every: Collection-phase round floors between reviews
            (the scheduler reviews when every working chain has taken at
            least this many further collection steps).
        min_observations: Steps a chain must have been observed for
            before its latency estimate can retire it.
        spawn_r_hat_above: When burn-in ends with R̂ above this value
            (budget ran out before convergence), activate every reserve
            at collection start — more chains to average over.  ``None``
            disables the R̂ trigger.

    Raises:
        PlanningError: On non-positive/contradictory parameters.
    """

    def __init__(
        self,
        start_chains: Optional[int] = None,
        min_chains: int = 2,
        max_active: Optional[int] = None,
        tail_ratio: float = 2.0,
        evaluate_every: int = 16,
        min_observations: int = 8,
        spawn_r_hat_above: Optional[float] = None,
    ) -> None:
        if start_chains is not None and start_chains < 2:
            raise PlanningError("start_chains must be at least 2 (or None for all)")
        if min_chains < 1:
            raise PlanningError("min_chains must be positive")
        if max_active is not None and max_active < min_chains:
            raise PlanningError("max_active must be at least min_chains")
        if tail_ratio <= 1.0:
            raise PlanningError("tail_ratio must exceed 1.0")
        if evaluate_every < 1:
            raise PlanningError("evaluate_every must be positive")
        if min_observations < 1:
            raise PlanningError("min_observations must be positive")
        self.start_chains = start_chains
        self.min_chains = int(min_chains)
        self.max_active = max_active
        self.tail_ratio = float(tail_ratio)
        self.evaluate_every = int(evaluate_every)
        self.min_observations = int(min_observations)
        self.spawn_r_hat_above = spawn_r_hat_above

    # ------------------------------------------------------------------
    def initial_roster(self, num_chains: int) -> List[str]:
        """Roster at construction: the first ``start_chains`` are active."""
        active = num_chains if self.start_chains is None else min(self.start_chains, num_chains)
        return [ROSTER_ACTIVE if i < active else ROSTER_RESERVE for i in range(num_chains)]

    def collect_spawn_count(self, reserves: int, r_hat: Optional[float]) -> int:
        """Reserves to activate when collection begins (the R̂ trigger)."""
        if reserves <= 0 or self.spawn_r_hat_above is None or r_hat is None:
            return 0
        return reserves if r_hat > self.spawn_r_hat_above else 0

    def review(self, observations: Sequence[ChainObservation]) -> RosterDecision:
        """Decide roster changes from one round of observations.

        At most one chain is retired per review (gradual shedding keeps
        every decision auditable against the stats that drove it), and a
        retirement spawns the lowest-index warm reserve as a replacement
        when one exists and the active cap allows it.

        Args:
            observations: One entry per chain, any roster state.

        Returns:
            The (possibly empty) :class:`RosterDecision`.
        """
        active = [obs for obs in observations if obs.roster == ROSTER_ACTIVE]
        measured = [obs for obs in active if obs.timed_steps >= self.min_observations]
        retire: tuple = ()
        if len(active) > self.min_chains and len(measured) >= 2:
            median = statistics.median(obs.mean_latency for obs in measured)
            worst = max(measured, key=lambda obs: (obs.mean_latency, obs.chain))
            if median > 0.0 and worst.mean_latency > self.tail_ratio * median:
                retire = (worst.chain,)
        spawn: tuple = ()
        if retire:
            cap = self.max_active if self.max_active is not None else len(observations)
            reserves = [obs.chain for obs in observations if obs.roster == ROSTER_RESERVE]
            if reserves and len(active) - len(retire) < cap:
                spawn = (min(reserves),)
        return RosterDecision(retire=retire, spawn=spawn)
