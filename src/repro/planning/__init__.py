"""History-aware dispatch planning for multi-chain crawls.

The paper's rewiring win (§I-C) comes from reusing what the crawler
already learned about the topology; the follow-up literature
("Leveraging History for Faster Sampling of Online Social Networks";
"Walk, Not Wait") shows the next multiplier is *planning around* that
history: stepping through known regions without waiting on the network,
and spending idle round-trip capacity on the queries the walk will need
next.  This package is that layer, sitting between the walk
engines/scheduler and the provider stack:

* :class:`~repro.planning.history.HistoryIndex` — an O(1) index view
  over the shared neighborhood cache that can never go stale under LRU
  eviction or TTL expiry, plus per-node visit counts and per-region
  step statistics;
* :class:`~repro.planning.prefetch.PrefetchLedger` — issued/used/wasted
  accounting for predictive prefetches (§II-B budget spent early);
* :class:`~repro.planning.lifecycle.AdaptiveChainPolicy` — deterministic
  spawn/retire decisions over observed per-chain latency tails, with
  warm reserves that burn in alongside the group;
* :class:`~repro.planning.planner.DispatchPlanner` — the facade
  :class:`~repro.walks.scheduler.EventDrivenWalkers` drives: RNG-replay
  prediction of each chain's next fetch, spare-slot prefetch into open
  bursts, cache-first step accounting, and snapshot support so an
  in-flight plan resumes bit-for-bit.

With no planner attached the scheduler's behaviour is bit-for-bit
identical to the planning-free code paths; the determinism suite pins
that down.
"""

from repro.planning.history import HistoryIndex
from repro.planning.lifecycle import (
    ROSTER_ACTIVE,
    ROSTER_RESERVE,
    ROSTER_RETIRED,
    AdaptiveChainPolicy,
    ChainObservation,
    RosterDecision,
)
from repro.planning.planner import DispatchPlanner
from repro.planning.prefetch import PrefetchLedger

__all__ = [
    "AdaptiveChainPolicy",
    "ChainObservation",
    "DispatchPlanner",
    "HistoryIndex",
    "PrefetchLedger",
    "RosterDecision",
    "ROSTER_ACTIVE",
    "ROSTER_RESERVE",
    "ROSTER_RETIRED",
]
