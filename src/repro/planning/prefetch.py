"""Prefetch accounting: what predictive fetching issued, used, and wasted.

Predictive prefetch spends §II-B budget *early*: a neighborhood fetched
into a coalesced burst's spare slot is billed exactly like the fetch the
walk would have issued a few events later.  That only stays honest if the
spend is visible, so every prefetch passes through a
:class:`PrefetchLedger`:

* **issued** — the fetch rode an open burst's headroom;
* **used** — a chain later committed a step onto the prefetched node
  (its query was served from history at zero simulated latency);
* **wasted** — the prefetch can no longer be used: its owning chain was
  retired by the adaptive policy with the fetch still outstanding;
* **outstanding** — issued, not yet used, owner still active (a resumed
  run may still consume these, which is why the ledger snapshots).

``issued == used + wasted + outstanding`` holds at every commit point,
and the whole ledger rides in the scheduler's ``state_dict`` so a
checkpoint taken with prefetches in flight resumes bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

Node = Hashable


class PrefetchLedger:
    """Running account of predictive prefetches."""

    def __init__(self) -> None:
        self._issued = 0
        self._used = 0
        self._wasted = 0
        #: node -> (owning chain, simulated land time of its round trip)
        self._pending: Dict[Node, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    def record_issue(self, node: Node, chain: int, lands_at: float) -> None:
        """Book one prefetched fetch riding an open burst.

        Args:
            node: The prefetched user id.
            chain: The chain whose predicted path requested it.
            lands_at: Simulated time the carrying round trip completes.
        """
        self._issued += 1
        self._pending[node] = (int(chain), float(lands_at))

    def mark_used(self, node: Node):
        """Consume a pending prefetch.

        Returns:
            The simulated time the prefetched response landed (so a chain
            that reaches the node *before* its round trip completed can
            be made to wait out the difference), or ``None`` when no
            prefetch was pending for ``node``.
        """
        entry = self._pending.pop(node, None)
        if entry is None:
            return None
        self._used += 1
        return entry[1]

    def drop_chain(self, chain: int) -> int:
        """Write off a retired chain's outstanding prefetches as wasted.

        Returns:
            How many pending entries were written off.
        """
        orphaned = [node for node, (owner, _land) in self._pending.items() if owner == chain]
        for node in orphaned:
            del self._pending[node]
        self._wasted += len(orphaned)
        return len(orphaned)

    def is_pending(self, node: Node) -> bool:
        """Whether ``node`` was prefetched and not yet consumed."""
        return node in self._pending

    # ------------------------------------------------------------------
    @property
    def issued(self) -> int:
        """Prefetches issued so far."""
        return self._issued

    @property
    def used(self) -> int:
        """Prefetches later consumed by a chain's committed step."""
        return self._used

    @property
    def wasted(self) -> int:
        """Prefetches orphaned by chain retirement."""
        return self._wasted

    @property
    def outstanding(self) -> int:
        """Prefetches issued but not yet consumed or written off."""
        return len(self._pending)

    def summary(self) -> Dict[str, int]:
        """The issued/used/wasted/outstanding counters as one dict."""
        return {
            "issued": self._issued,
            "used": self._used,
            "wasted": self._wasted,
            "outstanding": self.outstanding,
        }

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable ledger state, pending entries included."""
        return {
            "issued": self._issued,
            "used": self._used,
            "wasted": self._wasted,
            "pending": {node: tuple(entry) for node, entry in self._pending.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore a ledger captured by :meth:`state_dict`.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._issued = int(state["issued"])
        self._used = int(state["used"])
        self._wasted = int(state["wasted"])
        self._pending = {
            node: (int(chain), float(lands_at))
            for node, (chain, lands_at) in state["pending"].items()
        }
