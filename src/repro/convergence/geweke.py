"""The Geweke convergence indicator, as the paper applies it (§V-A.3).

Given the trace of a per-node attribute θ along the walk (degree is the
paper's default — it exists in every graph), split the post-burn-in trace
into Window A (first 10%) and Window B (last 50%) and compute

    Z = | mean_A − mean_B | / sqrt(S_A + S_B)

where ``S_A``/``S_B`` are the θ variances within the windows (the paper's
equation 14 — note it uses the raw variances, not standard errors, which
matches the query-cost magnitudes it reports).  The walk is converged when
``Z`` falls below a threshold (0.1 default; Figure 9 sweeps 0.1–0.8).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.convergence.monitors import ConvergenceMonitor
from repro.utils.stats import OnlineMeanVar


class GewekeDiagnostic(ConvergenceMonitor):
    """Geweke Z-score convergence monitor.

    Args:
        threshold: Declare convergence when ``Z <= threshold``.
        first: Fraction of the trace in Window A (paper: 0.1).
        last: Fraction of the trace in Window B (paper: 0.5).
        min_trace: Smallest trace length worth testing; shorter traces
            report non-convergence outright (windows of a handful of nodes
            pass Z tests by chance).
        standard_error: If ``True`` (default), divide window variances by
            window sizes — the textbook Geweke statistic.  The paper's
            equation (14) omits the division, but its reported query-cost
            magnitudes (tens of thousands of queries at threshold 0.1)
            are only produced by the standard-error form, so that is the
            default; pass ``False`` for the literal equation.

    Raises:
        ValueError: On out-of-range parameters.
    """

    def __init__(
        self,
        threshold: float = 0.1,
        first: float = 0.1,
        last: float = 0.5,
        min_trace: int = 100,
        standard_error: bool = True,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if not 0 < first < 1 or not 0 < last < 1 or first + last > 1:
            raise ValueError("window fractions must be in (0,1) and sum to <= 1")
        if min_trace < 4:
            raise ValueError("min_trace must be at least 4")
        self.threshold = threshold
        self.first = first
        self.last = last
        self.min_trace = min_trace
        self.standard_error = standard_error

    #: Burn-in fractions checked by :meth:`converged`: the walk is
    #: converged only when the trace looks stationary after discarding
    #: *each* of these prefixes (the paper's "after a burn-in of k steps"
    #: — the discard absorbs genuine early drift, e.g. MTO's overlay
    #: rewiring transient, while requiring agreement at two depths keeps
    #: repeated testing from passing by luck).
    BURN_IN_GRID = (0.25, 0.5)

    def z_score(self, trace: Sequence[float]) -> float:
        """The Geweke Z statistic for ``trace`` (no burn-in discarded).

        Returns ``math.inf`` for traces shorter than ``min_trace`` or with
        degenerate (zero-variance) windows whose means disagree; 0.0 when
        both windows are constant and equal.
        """
        n = len(trace)
        if n < self.min_trace:
            return math.inf
        a_len = max(2, int(n * self.first))
        b_len = max(2, int(n * self.last))
        window_a = trace[:a_len]
        window_b = trace[n - b_len :]
        stats_a = OnlineMeanVar()
        stats_a.extend(window_a)
        stats_b = OnlineMeanVar()
        stats_b.extend(window_b)
        var_a = stats_a.variance
        var_b = stats_b.variance
        if self.standard_error:
            var_a /= stats_a.count
            var_b /= stats_b.count
        gap = abs(stats_a.mean - stats_b.mean)
        denom = math.sqrt(var_a + var_b)
        if denom == 0:
            return 0.0 if gap == 0 else math.inf
        return gap / denom

    def converged(self, trace: Sequence[float]) -> bool:
        """Whether some burn-in ``k`` leaves a stationary-looking tail.

        The paper's Geweke usage "determines whether the random walk
        reaches the stationary distribution after a burn-in of k steps";
        accordingly the test discards each prefix fraction in
        :data:`BURN_IN_GRID` and requires every residual trace to pass
        the Z threshold.  The discard absorbs genuine early drift (MTO's
        overlay-rewiring transient); demanding agreement at all depths
        keeps the repeated testing from passing by chance.
        """
        n = len(trace)
        return all(
            self.z_score(trace[int(n * fraction) :]) <= self.threshold
            for fraction in self.BURN_IN_GRID
        )
