"""Stopping-rule interface and simple monitors.

Algorithm 1's ``Stopping rule`` "can be any convergence monitor used in
Markov Chain" — this module defines the interface and trivial instances;
the paper's actual choice (Geweke) lives in
:mod:`repro.convergence.geweke`.
"""

from __future__ import annotations

import abc
from typing import Sequence


class ConvergenceMonitor(abc.ABC):
    """Decides whether a walk's attribute trace looks stationary."""

    @abc.abstractmethod
    def converged(self, trace: Sequence[float]) -> bool:
        """Whether the walk that produced ``trace`` has converged."""

    def reset(self) -> None:
        """Clear internal state before a fresh walk (no-op by default)."""


class FixedLengthMonitor(ConvergenceMonitor):
    """Converged after a fixed number of steps (classic burn-in length).

    Args:
        length: Steps after which the walk counts as converged; positive.

    Raises:
        ValueError: If ``length`` is not positive.
    """

    def __init__(self, length: int) -> None:
        if length <= 0:
            raise ValueError("length must be positive")
        self.length = length

    def converged(self, trace: Sequence[float]) -> bool:
        return len(trace) >= self.length


class NeverConvergedMonitor(ConvergenceMonitor):
    """Never converges — for measuring pure trace statistics."""

    def converged(self, trace: Sequence[float]) -> bool:
        return False


class CompositeMonitor(ConvergenceMonitor):
    """Converged when *all* child monitors agree.

    Useful for "Geweke, but walk at least N steps first" configurations,
    which the experiments use to keep tiny traces from passing Z tests by
    luck.
    """

    def __init__(self, *monitors: ConvergenceMonitor) -> None:
        if not monitors:
            raise ValueError("need at least one monitor")
        self.monitors = monitors

    def converged(self, trace: Sequence[float]) -> bool:
        return all(m.converged(trace) for m in self.monitors)

    def reset(self) -> None:
        for m in self.monitors:
            m.reset()
