"""Gelman–Rubin diagnostic for parallel walks (multi-chain R-hat).

The paper's related work (§VI, citing Alon et al.'s "Many random walks
are faster than one") notes MTO applies unchanged to parallel random
walks.  With several chains available, the natural convergence monitor is
the potential scale reduction factor

    R̂ = sqrt( ( (n−1)/n · W + B/n ) / W )

where ``W`` is the mean within-chain variance and ``B`` the between-chain
variance of the chain means (times n).  R̂ → 1 as all chains forget their
starts; the conventional threshold is 1.1.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.utils.stats import OnlineMeanVar


class GelmanRubinDiagnostic:
    """Multi-chain R-hat convergence monitor.

    Args:
        threshold: Converged when ``R̂ <= threshold`` (default 1.1).
        min_chain_length: Chains shorter than this report non-convergence.

    Raises:
        ValueError: On out-of-range parameters.
    """

    def __init__(self, threshold: float = 1.1, min_chain_length: int = 50) -> None:
        if threshold < 1.0:
            raise ValueError("threshold must be at least 1.0")
        if min_chain_length < 4:
            raise ValueError("min_chain_length must be at least 4")
        self.threshold = threshold
        self.min_chain_length = min_chain_length

    def r_hat(self, traces: Sequence[Sequence[float]]) -> float:
        """The potential scale reduction factor over ``traces``.

        Uses the common length prefix of all chains (chains advance in
        lock-step under the parallel driver, so this is a no-op there).

        Returns:
            R̂, or ``math.inf`` when chains are too short / degenerate
            with disagreeing means; 1.0 when all chains are constant and
            equal.

        Raises:
            ValueError: With fewer than two chains.
        """
        if len(traces) < 2:
            raise ValueError("Gelman-Rubin needs at least two chains")
        n = min(len(t) for t in traces)
        if n < self.min_chain_length:
            return math.inf
        means: List[float] = []
        variances: List[float] = []
        for t in traces:
            acc = OnlineMeanVar()
            acc.extend(t[:n])
            means.append(acc.mean)
            variances.append(acc.sample_variance)
        w = sum(variances) / len(variances)
        grand = sum(means) / len(means)
        b_over_n = sum((m - grand) ** 2 for m in means) / (len(means) - 1)
        if w == 0:
            return 1.0 if b_over_n == 0 else math.inf
        var_plus = (n - 1) / n * w + b_over_n
        return math.sqrt(var_plus / w)

    def converged(self, traces: Sequence[Sequence[float]]) -> bool:
        """Whether the chains' R̂ is at or below the threshold."""
        return self.r_hat(traces) <= self.threshold
