"""Convergence monitoring for random-walk samplers.

The paper uses the Geweke diagnostic (§V-A.3): compare the first 10% and
last 50% of the post-burn-in trace of a per-node attribute (degree by
default); the walk is declared converged when the Z score drops below a
threshold (0.1 by default, swept 0.1–0.8 in Figure 9).
"""

from repro.convergence.gelman_rubin import GelmanRubinDiagnostic
from repro.convergence.geweke import GewekeDiagnostic
from repro.convergence.monitors import (
    CompositeMonitor,
    ConvergenceMonitor,
    FixedLengthMonitor,
    NeverConvergedMonitor,
)

__all__ = [
    "GelmanRubinDiagnostic",
    "GewekeDiagnostic",
    "CompositeMonitor",
    "ConvergenceMonitor",
    "FixedLengthMonitor",
    "NeverConvergedMonitor",
]
