"""A long-lived multi-tenant sampling service over one shared fleet.

The experiment drivers so far run one crawl at a time: build a stack,
call ``run()``, read the result.  A measurement *service* looks
different — many concurrent clients ("tenants"), each with their own
§II-B budget, rate limiter, RNG streams, and walk specification, all
sampling the same social network through one shared provider fleet on
one simulated clock.  :class:`SamplingService` is that runtime:

* **Shared substrate** — one :class:`~repro.fleet.provider.ShardedProvider`
  and one cross-tenant :class:`~repro.interface.cache.NeighborhoodCache`.
  A neighborhood any tenant paid to fetch is a free cache hit for every
  other tenant (logged un-billed; see
  :meth:`RestrictedSocialAPI._serve_cached
  <repro.interface.api.RestrictedSocialAPI._serve_cached>`).
* **Per-tenant isolation** — each tenant owns a full
  :class:`~repro.compose.SamplingStack` built from its
  :class:`~repro.compose.StackConfig`: private query log (§II-B spend),
  private rate limiter and simulated clock, private chains and planner.
* **Fairness-aware admission** — tenants advance tick by tick through
  the schedulers' incremental API
  (:meth:`~repro.walks.scheduler.EventDrivenWalkers.collect_tick`),
  interleaved by deficit round-robin over the fleet's *simulated
  occupancy*: each round every runnable tenant's deficit grows by one
  quantum and ticks drain it by the simulated time they consumed, so a
  hot tenant (many chains, heavy batches) cannot starve light ones.
  With ``fairness=False`` the service degrades to first-come-first-served
  run-to-completion — the baseline the fairness benchmark beats.
* **Hibernation** — an idle tenant's entire session state (interface
  accounting + scheduler state, *excluding* the shared cache/fleet)
  spills into a :class:`~repro.datastore.kv.KeyValueStore` through the
  snapshot codec and is rebuilt bit-for-bit on its next request, even
  in a fresh process via :meth:`SamplingService.save` /
  :meth:`SamplingService.resume`.

Example::

    net = load("epinions_like", seed=7, scale=0.3)
    svc = SamplingService(net, fleet=FleetSpec(num_shards=4, provider=ProviderSpec(
        latency_distribution="heavy_tailed", latency_scale=0.4)))
    svc.register("alice", StackConfig(walk=WalkSpec(engine="mhrw", chains=4, seed=1)))
    svc.register("bob", StackConfig(walk=WalkSpec(engine="srw", chains=2, seed=2)))
    svc.request("alice", 200)
    svc.request("bob", 50)
    svc.run_pending()
    report = svc.fairness_report()
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.compose import (
    FleetSpec,
    SamplingStack,
    StackConfig,
    build_fleet,
    build_stack,
    walk_starts,
)
from repro.datastore.kv import KeyValueStore
from repro.datastore.snapshot import SnapshotBackend, decode_value, encode_value
from repro.errors import QueryBudgetExhaustedError, ServiceError
from repro.interface.cache import NeighborhoodCache
from repro.obs.trace import (
    EVENT_HIBERNATE,
    EVENT_TENANT_TICK,
    EVENT_WAKE,
    TraceRecorder,
)

__all__ = [
    "SamplingService",
    "TenantSession",
    "STATE_ACTIVE",
    "STATE_IDLE",
    "STATE_HIBERNATED",
    "STATE_EXHAUSTED",
]

#: Tenant lifecycle states.
STATE_ACTIVE = "active"  #: has pending samples and a live stack
STATE_IDLE = "idle"  #: live stack, nothing requested
STATE_HIBERNATED = "hibernated"  #: state spilled to the datastore, no stack
STATE_EXHAUSTED = "exhausted"  #: §II-B budget spent; refuses further requests

_META_SECTION = "service/meta"
_FLEET_SECTION = "service/fleet"
_CACHE_SECTION = "service/cache"
_REGISTRY_SECTION = "service/registry"
_SNAPSHOT_VERSION = 1


def _p95(values: List[float]) -> float:
    """The 95th-percentile of ``values`` (nearest-rank; 0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[rank]


@dataclasses.dataclass
class TenantSession:
    """One tenant's registration record inside the service.

    Attributes:
        tenant_id: The tenant's label (shard books and reports key on it).
        config: The declarative stack description the tenant registered
            with; persisted verbatim (it is codec-registered) so the
            identical stack is rebuilt on wake or service resume.
        stack: The live stack, or ``None`` while hibernated.
        state: One of the ``STATE_*`` constants.
        requested: Cumulative sample target across all requests so far.
        thinning: Per-chain sample spacing of the latest request.
        deficit: Deficit-round-robin balance (simulated seconds of fleet
            occupancy this tenant may still consume this round).
        arrival: Service-clock reading of the request that made the
            tenant runnable (the anchor per-sample paces measure from).
        epoch_base: Samples already delivered when ``arrival`` was set
            (paces count samples within the current request epoch).
        sample_clock: Absolute service-clock reading at each sample.
        sample_walls: Per-sample wall-clock *pace* at each sample —
            ``(clock - arrival) / samples_since_arrival`` — the fairness
            benchmark's p95 substrate.  Pace (not inter-sample deltas)
            is what exposes unfair admission: a tenant parked behind a
            hog pays the wait on every sample of its request, not just
            the first.
        idle_rounds: Consecutive admission rounds spent idle (drives
            automatic hibernation).
    """

    tenant_id: str
    config: StackConfig
    stack: Optional[SamplingStack] = None
    state: str = STATE_IDLE
    requested: int = 0
    thinning: int = 1
    deficit: float = 0.0
    arrival: Optional[float] = None
    epoch_base: int = 0
    sample_clock: List[float] = dataclasses.field(default_factory=list)
    sample_walls: List[float] = dataclasses.field(default_factory=list)
    idle_rounds: int = 0
    # Accounting frozen at hibernate time (the live stack is gone).
    frozen_samples: int = 0
    frozen_cost: int = 0
    frozen_latency: float = 0.0
    frozen_hits: int = 0
    frozen_warm_hits: int = 0

    @property
    def samples(self) -> int:
        """Samples collected so far (live or frozen)."""
        if self.stack is not None:
            return self.stack.walkers.samples_collected
        return self.frozen_samples

    @property
    def query_cost(self) -> int:
        """§II-B unique queries this tenant's budget has paid for."""
        if self.stack is not None:
            return self.stack.api.query_cost
        return self.frozen_cost

    @property
    def latency_spent(self) -> float:
        """Provider response latency billed to this tenant (simulated s)."""
        if self.stack is not None:
            return self.stack.api.latency_spent
        return self.frozen_latency

    @property
    def cache_hits(self) -> int:
        """Queries the shared cache served this tenant for free."""
        if self.stack is not None:
            return self.stack.api.cache_hits
        return self.frozen_hits

    @property
    def warm_hits(self) -> int:
        """Hits served from history-warm-started knowledge."""
        if self.stack is not None:
            return self.stack.api.warm_hits
        return self.frozen_warm_hits

    @property
    def pending(self) -> int:
        """Samples still owed against the cumulative target."""
        return max(0, self.requested - self.samples)


class SamplingService:
    """Run many tenant sampling sessions over one shared provider fleet.

    Args:
        network: The dataset stand-in every tenant samples (anything with
            ``graph``, ``profiles``, ``seed_node``).
        fleet: The shared fleet's :class:`~repro.compose.FleetSpec`
            (default: one zero-latency shard).  Tenants' own
            ``config.fleet`` fields are ignored — the service mounts this
            shared fleet into every stack it builds.
        fairness: ``True`` (default) interleaves tenants by deficit
            round-robin over simulated fleet occupancy; ``False`` serves
            run-to-completion in registration order (no admission
            control — the benchmark baseline).
        quantum: Simulated seconds of fleet occupancy each runnable
            tenant earns per admission round (fairness mode only).  Keep
            it comparable to a few per-sample occupancies — a quantum
            large enough to cover a tenant's whole request degenerates
            the round-robin into run-to-completion.
        cache_ttl: Optional TTL for the shared neighborhood cache
            (simulated seconds); ``None`` caches forever.
        idle_hibernate_after: Hibernate a tenant after this many
            consecutive idle admission rounds; ``None`` (default) only
            hibernates on explicit :meth:`hibernate` calls.
        spill_store: The key-value store hibernated sessions spill into;
            a private in-memory store by default.
        history: Optional :class:`~repro.datastore.history.HistoryStore`
            to warm-start the *shared* cache from: neighborhoods a prior
            service run (or any single-tenant crawl) paid for preload
            once, unbilled, and every tenant registered afterwards gets
            its warm hits attributed through
            :attr:`~repro.interface.api.RestrictedSocialAPI.warm_hits`.
            Call :meth:`save_history` to write the (grown) shared
            knowledge back for the next service run.
        recorder: Optional shared :class:`~repro.obs.trace.TraceRecorder`.
            The service attaches it to the shared fleet and to every
            tenant stack it builds (registration *and* wake), so one
            recorder sees the whole multi-tenant run: per-tenant query
            and walk events, shard fetches with tenant attribution, and
            the service-level ``tenant_tick``/``hibernate``/``wake``
            lifecycle on the service clock.

    Raises:
        ServiceError: On a non-positive ``quantum``.
    """

    def __init__(
        self,
        network,
        fleet: Optional[FleetSpec] = None,
        *,
        fairness: bool = True,
        quantum: float = 0.5,
        cache_ttl: Optional[float] = None,
        idle_hibernate_after: Optional[int] = None,
        spill_store: Optional[KeyValueStore] = None,
        history=None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        if quantum <= 0.0:
            raise ServiceError("quantum must be positive simulated seconds")
        if idle_hibernate_after is not None and idle_hibernate_after < 1:
            raise ServiceError("idle_hibernate_after must be a positive round count")
        self._network = network
        self._fleet_spec = fleet if fleet is not None else FleetSpec()
        self._fleet = build_fleet(
            self._fleet_spec, network.graph, profiles=network.profiles
        )
        self._cache_ttl = cache_ttl
        self._cache = NeighborhoodCache(ttl=cache_ttl)
        self._fairness = bool(fairness)
        self._quantum = float(quantum)
        self._idle_hibernate_after = idle_hibernate_after
        self._spill = spill_store if spill_store is not None else KeyValueStore()
        self._tenants: Dict[str, TenantSession] = {}
        self._clock = 0.0
        self._recorder = recorder
        self._watcher = None
        if recorder is not None:
            self._fleet.set_recorder(recorder)
        self._history = history
        self._warm_users: frozenset = frozenset()
        self._warm_private: frozenset = frozenset()
        self._warm_stats: dict = {}
        if history is not None:
            record = history.load()
            if record is not None:
                for user, (seq, attrs) in record.neighborhoods.items():
                    if not self._cache.has(user):
                        self._cache.put(user, frozenset(seq), dict(attrs), seq=seq)
                self._warm_users = frozenset(record.neighborhoods) | record.private
                self._warm_private = record.private
                self._warm_stats = dict(record.stats)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def fleet(self):
        """The shared :class:`~repro.fleet.provider.ShardedProvider`."""
        return self._fleet

    @property
    def cache(self) -> NeighborhoodCache:
        """The cross-tenant shared neighborhood cache."""
        return self._cache

    @property
    def fairness(self) -> bool:
        """Whether deficit-round-robin admission is on."""
        return self._fairness

    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The shared trace recorder, or ``None``."""
        return self._recorder

    def set_watcher(self, watcher) -> None:
        """Attach (or with ``None`` detach) a live SLO watcher.

        The watcher is polled once per tenant tick on the service clock,
        after the tick's time has been charged and its pace metrics
        streamed — so a breach event lands at the first admission commit
        where the condition held.  Polling only reads metrics and
        appends breach events; samples and billing stay bit-for-bit.
        """
        self._watcher = watcher

    @property
    def clock(self) -> float:
        """The service's simulated clock: serialized fleet occupancy.

        Each tick's simulated-time delta (batched waits, provider
        latency, per-query seconds) is charged here in admission order —
        the single shared timeline every tenant's wall-clock metrics are
        measured on.
        """
        return self._clock

    @property
    def tenant_ids(self) -> Tuple[str, ...]:
        """Registered tenants in registration (= admission) order."""
        return tuple(self._tenants)

    def tenant(self, tenant_id: str) -> TenantSession:
        """The session record for ``tenant_id``.

        Raises:
            ServiceError: If the tenant is not registered.
        """
        return self._session(tenant_id)

    def _session(self, tenant_id: str) -> TenantSession:
        session = self._tenants.get(str(tenant_id))
        if session is None:
            raise ServiceError(f"tenant {tenant_id!r} is not registered")
        return session

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def register(
        self, tenant_id: str, config: Optional[StackConfig] = None
    ) -> TenantSession:
        """Admit a new tenant and build its stack over the shared layers.

        The stack's bootstrap queries (each chain fetches its start node)
        are real tenant spend: they run with the tenant attributed in the
        shard books, bill the tenant's own §II-B log, and warm the shared
        cache for everyone else.

        Args:
            tenant_id: A unique label for the tenant.
            config: The tenant's stack description; ``config.fleet`` is
                ignored in favour of the service's shared fleet.

        Raises:
            ServiceError: If the label is already registered.
            ComposeError: If the config cannot be assembled.
        """
        tid = str(tenant_id)
        if tid in self._tenants:
            raise ServiceError(f"tenant {tid!r} is already registered")
        if config is None:
            config = StackConfig()
        session = TenantSession(tenant_id=tid, config=config)
        session.stack = self._build(tid, config)
        self._tenants[tid] = session
        return session

    def _build(self, tenant_id: str, config: StackConfig) -> SamplingStack:
        """Build a tenant stack on the shared fleet/cache, books attributed.

        Always drains the fleet's dispatch trace afterwards — bootstrap
        fetches left in the log would be mis-attributed to whichever
        tenant's scheduler next settles a batch.
        """
        self._fleet.set_active_tenant(tenant_id)
        try:
            stack = build_stack(
                config,
                self._network,
                cache=self._cache,
                fleet=self._fleet,
                recorder=self._recorder,
                tenant=tenant_id,
            )
        finally:
            self._fleet.set_active_tenant(None)
            self._fleet.drain_dispatches()
        if self._warm_users:
            # The shared cache is already warm; the tenant interface only
            # needs the refusal knowledge and the hit attribution.
            stack.api.warm_start({}, private=self._warm_private)
            stack.api.note_warm_start(self._warm_users)
            if stack.planner is not None and self._warm_stats:
                stack.planner.warm_start(self._warm_stats)
        return stack

    def _attach_recorder(self, stack: SamplingStack, tenant_id: str) -> None:
        """Wire the service's shared recorder through a *rebuilt* stack.

        Fresh registrations are instrumented by ``build_stack`` itself
        (so bootstrap queries are traced); this hook re-attaches after a
        hibernated tenant is materialized — its unbilled rebuild must
        stay out of the trace, so the recorder is wired only once the
        tenant's own state is loaded back on top.  Tenant snapshots stay
        recorder-free: hibernation serializes with
        ``include_shared=False``, which skips the interface's embedded
        recorder state.
        """
        if self._recorder is None:
            return
        stack.api.set_recorder(self._recorder, tenant=tenant_id)
        stack.walkers.set_recorder(self._recorder, tenant=tenant_id)
        if stack.planner is not None:
            stack.planner.set_recorder(self._recorder)

    def request(
        self, tenant_id: str, num_samples: int, thinning: int = 1
    ) -> TenantSession:
        """Ask for ``num_samples`` more samples for ``tenant_id``.

        A hibernated tenant is woken (its session rebuilt bit-for-bit
        from the spill store) before the request is queued.  The request
        only queues work; :meth:`run_pending` performs it.

        Raises:
            ServiceError: On an unknown/exhausted tenant or non-positive
                arguments.
        """
        session = self._session(tenant_id)
        if num_samples <= 0:
            raise ServiceError("num_samples must be positive")
        if thinning <= 0:
            raise ServiceError("thinning must be positive")
        if session.state == STATE_EXHAUSTED:
            raise ServiceError(
                f"tenant {session.tenant_id!r} has exhausted its query budget"
            )
        if session.state == STATE_HIBERNATED:
            self._wake(session)
        if session.state != STATE_ACTIVE:
            session.arrival = self._clock
            session.epoch_base = session.samples
        session.requested += int(num_samples)
        session.thinning = int(thinning)
        session.idle_rounds = 0
        self._arm(session)
        session.state = STATE_ACTIVE
        return session

    def _arm(self, session: TenantSession) -> None:
        """Point the tenant's scheduler at its current cumulative target."""
        session.stack.walkers.begin_collect(session.requested, session.thinning)

    # ------------------------------------------------------------------
    # the admission loop
    # ------------------------------------------------------------------
    def run_pending(self, max_rounds: Optional[int] = None) -> dict:
        """Serve every queued request; returns a small progress summary.

        Under fairness each admission round tops up every runnable
        tenant's deficit by one quantum and lets it tick until the
        deficit is spent (deficit round-robin over simulated fleet
        occupancy).  Without fairness tenants run to completion in
        registration order.

        Args:
            max_rounds: Optional admission-round cap (``None`` serves
                until no tenant is runnable) — useful for interleaving
                service work with other simulation activity.

        Returns:
            ``{"rounds": int, "clock": float, "served": {tenant: samples}}``
            where ``served`` counts samples delivered by *this* call.
        """
        served = {tid: s.samples for tid, s in self._tenants.items()}
        rounds = 0
        while max_rounds is None or rounds < max_rounds:
            runnable = [
                s for s in self._tenants.values() if s.state == STATE_ACTIVE
            ]
            if not runnable:
                break
            rounds += 1
            for session in runnable:
                if session.state != STATE_ACTIVE:
                    continue
                if self._fairness:
                    session.deficit += self._quantum
                    self._drive(session, bounded=True)
                else:
                    self._drive(session, bounded=False)
            self._sweep_idle()
        return {
            "rounds": rounds,
            "clock": self._clock,
            "served": {
                tid: s.samples - served[tid] for tid, s in self._tenants.items()
            },
        }

    def _drive(self, session: TenantSession, bounded: bool) -> None:
        """Tick one tenant until done, exhausted, or (bounded) out of deficit."""
        self._fleet.set_active_tenant(session.tenant_id)
        try:
            while session.state == STATE_ACTIVE:
                if bounded and session.deficit <= 0.0:
                    break
                if self._tick(session):
                    session.state = STATE_IDLE
                    session.arrival = None
                    session.deficit = 0.0
                    session.idle_rounds = 0
                    break
        finally:
            self._fleet.set_active_tenant(None)

    def _tick(self, session: TenantSession) -> bool:
        """One scheduler tick: charge its simulated time, record samples.

        Returns ``True`` when the tenant's cumulative target is reached.
        A :class:`~repro.errors.QueryBudgetExhaustedError` mid-tick
        freezes the tenant in the ``exhausted`` state instead of
        propagating — one tenant's spent budget must not abort the
        admission loop.
        """
        walkers = session.stack.walkers
        recorder = self._recorder
        before_time = walkers.simulated_elapsed
        before_samples = walkers.samples_collected
        before_clock = self._clock
        try:
            done = walkers.collect_tick(session.requested)
        except QueryBudgetExhaustedError:
            self._charge(session, walkers.simulated_elapsed - before_time)
            if recorder is not None:
                # The absolute post-charge clock rides along because float
                # addition is not associative: the profiler's service
                # timeline tiles on these exact values, never on re-summed
                # durations.
                recorder.record(
                    EVENT_TENANT_TICK,
                    before_clock,
                    self._clock - before_clock,
                    tenant=session.tenant_id,
                    clock=self._clock,
                    exhausted=True,
                )
            session.state = STATE_EXHAUSTED
            session.deficit = 0.0
            if self._watcher is not None:
                self._watcher.poll(self._clock)
            return False
        self._charge(session, walkers.simulated_elapsed - before_time)
        if recorder is not None:
            recorder.record(
                EVENT_TENANT_TICK,
                before_clock,
                self._clock - before_clock,
                tenant=session.tenant_id,
                clock=self._clock,
            )
        anchor = session.arrival if session.arrival is not None else 0.0
        for count in range(before_samples + 1, walkers.samples_collected + 1):
            since_arrival = max(1, count - session.epoch_base)
            session.sample_clock.append(self._clock)
            session.sample_walls.append((self._clock - anchor) / since_arrival)
            if recorder is not None:
                recorder.metrics.series(
                    f"tenant.{session.tenant_id}.pace"
                ).observe(self._clock, session.sample_walls[-1])
                recorder.metrics.histogram(
                    f"tenant.{session.tenant_id}.pace_hist"
                ).observe(session.sample_walls[-1])
        if self._watcher is not None:
            self._watcher.poll(self._clock)
        return done

    def _charge(self, session: TenantSession, delta: float) -> None:
        """Bill ``delta`` simulated seconds of fleet occupancy."""
        if delta > 0.0:
            self._clock += delta
            session.deficit -= delta

    def _sweep_idle(self) -> None:
        """Advance idle counters; hibernate tenants past the threshold."""
        if self._idle_hibernate_after is None:
            return
        for session in self._tenants.values():
            if session.state == STATE_IDLE and session.stack is not None:
                session.idle_rounds += 1
                if session.idle_rounds >= self._idle_hibernate_after:
                    self.hibernate(session.tenant_id)

    # ------------------------------------------------------------------
    # hibernation: spill / wake
    # ------------------------------------------------------------------
    def hibernate(self, tenant_id: str) -> TenantSession:
        """Spill a tenant's session to the datastore and drop its stack.

        Only tenant-owned state travels — the interface snapshot is taken
        with ``include_shared=False`` so the shared cache and fleet stay
        out of the payload (they live on in the service).  Mid-request
        hibernation is legal: the scheduler's in-flight queue is part of
        the payload, and :meth:`request` re-arms the target on wake.

        Raises:
            ServiceError: On an unknown tenant or one with no live stack
                to spill (already hibernated is a no-op).
        """
        session = self._session(tenant_id)
        if session.state == STATE_HIBERNATED:
            return session
        if session.stack is None:
            raise ServiceError(
                f"tenant {session.tenant_id!r} has no live session to hibernate"
            )
        session.frozen_samples = session.stack.walkers.samples_collected
        session.frozen_cost = session.stack.api.query_cost
        session.frozen_latency = session.stack.api.latency_spent
        session.frozen_hits = session.stack.api.cache_hits
        session.frozen_warm_hits = session.stack.api.warm_hits
        payload = {
            "api": session.stack.api.state_dict(include_shared=False),
            "walkers": session.stack.walkers.state_dict(),
        }
        self._spill.set(("tenant", session.tenant_id), encode_value(payload))
        session.stack = None
        session.state = STATE_HIBERNATED
        session.idle_rounds = 0
        if self._recorder is not None:
            self._recorder.record(
                EVENT_HIBERNATE, self._clock, tenant=session.tenant_id
            )
        return session

    def _wake(self, session: TenantSession) -> None:
        """Rebuild a hibernated tenant's stack bit-for-bit from the spill."""
        payload = self._spill.get(("tenant", session.tenant_id))
        if payload is None:
            raise ServiceError(
                f"tenant {session.tenant_id!r} has no spilled session to wake"
            )
        session.stack = self._materialize(
            session.config, decode_value(payload), tenant_id=session.tenant_id
        )
        self._spill.delete(("tenant", session.tenant_id))
        if self._recorder is not None:
            self._recorder.record(EVENT_WAKE, self._clock, tenant=session.tenant_id)
        if session.requested > session.stack.walkers.samples_collected:
            self._arm(session)
            session.state = STATE_ACTIVE
        else:
            session.state = STATE_IDLE
        session.idle_rounds = 0

    def _materialize(
        self, config: StackConfig, sections: dict, tenant_id: Optional[str] = None
    ) -> SamplingStack:
        """Rebuild a stack from tenant-scoped snapshot sections.

        Rebuilding is not free of side effects: ``build_stack`` bootstraps
        every chain with a start-node query.  Those queries must be (a)
        unbilled — the original session already paid for them — and (b)
        invisible to the shared layers.  So: capture the shared fleet and
        cache, pre-warm the start nodes into the cache (making every
        bootstrap a free cache hit that leaves the fresh interface clock
        at zero, which keeps the clock-monotonicity check in
        ``api.load_state`` satisfiable), build, then restore the shared
        layers and drain the dispatch trace before loading the tenant's
        own state on top.
        """
        self._fleet.set_active_tenant(None)
        # The rebuild's side-effect fetches are unbilled replays — they
        # must stay out of the trace or the per-shard reconciliation
        # would count fetches the restored books never saw.
        self._fleet.set_recorder(None)
        fleet_state = self._fleet.state_dict()
        cache_state = self._cache.state_dict()
        try:
            for start in walk_starts(config, self._network):
                if self._cache.neighbors(start) is None:
                    fetched = self._fleet.fetch(start)
                    self._cache.put(
                        start,
                        frozenset(fetched.neighbor_seq),
                        fetched.attributes,
                        seq=fetched.neighbor_seq,
                    )
            stack = build_stack(
                config, self._network, cache=self._cache, fleet=self._fleet
            )
            self._fleet.load_state(fleet_state)
            self._cache.load_state(cache_state)
            self._fleet.drain_dispatches()
        finally:
            if self._recorder is not None:
                self._fleet.set_recorder(self._recorder)
        stack.api.load_state(sections["api"])
        stack.walkers.load_state(sections["walkers"])
        if tenant_id is not None:
            self._attach_recorder(stack, tenant_id)
        return stack

    # ------------------------------------------------------------------
    # whole-service persistence
    # ------------------------------------------------------------------
    def save(self, backend: SnapshotBackend) -> None:
        """Persist the entire service — shared layers and every tenant.

        Sections: ``service/meta`` (config scalars, registration order,
        the fleet spec), ``service/fleet``, ``service/cache``,
        ``service/registry`` (per-tenant records), and one
        ``tenant/<id>`` section per tenant with its session payload
        (live ones snapshotted fresh, hibernated ones copied from the
        spill store).
        """
        registry: Dict[str, dict] = {}
        sections: Dict[str, object] = {}
        for tid, session in self._tenants.items():
            if session.state == STATE_HIBERNATED:
                spilled = self._spill.get(("tenant", tid))
                if spilled is None:
                    raise ServiceError(
                        f"tenant {tid!r} is hibernated but its spill is missing"
                    )
                payload = decode_value(spilled)
            else:
                payload = {
                    "api": session.stack.api.state_dict(include_shared=False),
                    "walkers": session.stack.walkers.state_dict(),
                }
            sections[f"tenant/{tid}"] = payload
            registry[tid] = {
                "config": session.config,
                "state": session.state,
                "requested": session.requested,
                "thinning": session.thinning,
                "deficit": session.deficit,
                "arrival": session.arrival,
                "epoch_base": session.epoch_base,
                "sample_clock": list(session.sample_clock),
                "sample_walls": list(session.sample_walls),
                "idle_rounds": session.idle_rounds,
                "frozen_samples": session.samples,
                "frozen_cost": session.query_cost,
                "frozen_latency": session.latency_spent,
                "frozen_hits": session.cache_hits,
                "frozen_warm_hits": session.warm_hits,
            }
        sections[_META_SECTION] = {
            "version": _SNAPSHOT_VERSION,
            "clock": self._clock,
            "fairness": self._fairness,
            "quantum": self._quantum,
            "cache_ttl": self._cache_ttl,
            "idle_hibernate_after": self._idle_hibernate_after,
            "order": list(self._tenants),
            "fleet_spec": self._fleet_spec,
        }
        sections[_FLEET_SECTION] = self._fleet.state_dict()
        sections[_CACHE_SECTION] = self._cache.state_dict()
        sections[_REGISTRY_SECTION] = registry
        backend.write(sections)

    @classmethod
    def resume(
        cls,
        backend: SnapshotBackend,
        network,
        spill_store: Optional[KeyValueStore] = None,
    ) -> "SamplingService":
        """Reconstruct a saved service in a fresh process.

        Shared layers are restored first, then each tenant in the saved
        registration order: live tenants are materialized (and re-armed
        if they were mid-request), hibernated ones go straight back to
        the spill store without being built.

        Raises:
            ServiceError: If the backend holds no snapshot or the
                snapshot version is unsupported.
        """
        sections = backend.read()
        if sections is None:
            raise ServiceError("backend holds no service snapshot")
        meta = sections.get(_META_SECTION)
        if meta is None or int(meta.get("version", -1)) != _SNAPSHOT_VERSION:
            raise ServiceError("unsupported or missing service snapshot metadata")
        service = cls(
            network,
            fleet=meta["fleet_spec"],
            fairness=bool(meta["fairness"]),
            quantum=float(meta["quantum"]),
            cache_ttl=meta["cache_ttl"],
            idle_hibernate_after=meta["idle_hibernate_after"],
            spill_store=spill_store,
        )
        service._fleet.load_state(sections[_FLEET_SECTION])
        service._cache.load_state(sections[_CACHE_SECTION])
        service._clock = float(meta["clock"])
        registry = sections[_REGISTRY_SECTION]
        for tid in meta["order"]:
            row = registry[tid]
            session = TenantSession(
                tenant_id=tid,
                config=row["config"],
                state=str(row["state"]),
                requested=int(row["requested"]),
                thinning=int(row["thinning"]),
                deficit=float(row["deficit"]),
                arrival=None if row["arrival"] is None else float(row["arrival"]),
                epoch_base=int(row["epoch_base"]),
                sample_clock=[float(t) for t in row["sample_clock"]],
                sample_walls=[float(t) for t in row["sample_walls"]],
                idle_rounds=int(row["idle_rounds"]),
                frozen_samples=int(row["frozen_samples"]),
                frozen_cost=int(row["frozen_cost"]),
                frozen_latency=float(row["frozen_latency"]),
                frozen_hits=int(row["frozen_hits"]),
                frozen_warm_hits=int(row.get("frozen_warm_hits", 0)),
            )
            service._tenants[tid] = session
            payload = sections[f"tenant/{tid}"]
            if session.state == STATE_HIBERNATED:
                service._spill.set(("tenant", tid), encode_value(payload))
            else:
                session.stack = service._materialize(
                    session.config, payload, tenant_id=tid
                )
                if session.state == STATE_ACTIVE:
                    service._arm(session)
        return service

    # ------------------------------------------------------------------
    # cross-run history
    # ------------------------------------------------------------------
    @property
    def warm_user_count(self) -> int:
        """Users the attached history store preloaded (0 when cold)."""
        return len(self._warm_users)

    def save_history(self, metadata: Optional[dict] = None) -> dict:
        """Write the shared cache's knowledge to the attached history store.

        Every neighborhood any tenant paid for (plus everything the warm
        start preloaded) becomes the next service run's free territory.

        Raises:
            ServiceError: When the service was constructed without a
                ``history`` store.
        """
        if self._history is None:
            raise ServiceError(
                "this service has no history store; pass history=... at construction"
            )
        private = set(self._warm_private)
        for session in self._tenants.values():
            if session.stack is not None:
                api = session.stack.api
                private.update(
                    u for u in api.log.queried_users() if api.is_known_private(u)
                )
        return self._history.save_cache(
            self._cache,
            private=frozenset(private),
            stats=self._warm_stats or None,
            metadata=metadata,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def tenant_summary(self, tenant_id: str) -> dict:
        """One tenant's accounting as a plain dict (JSON-friendly)."""
        session = self._session(tenant_id)
        summary = {
            "tenant": session.tenant_id,
            "state": session.state,
            "samples": session.samples,
            "requested": session.requested,
            "query_cost": session.query_cost,
            "latency_spent": session.latency_spent,
            "cache_hits": session.cache_hits,
            "warm_hits": session.warm_hits,
            "p95_wall": _p95(session.sample_walls),
        }
        if session.stack is not None:
            planning = session.stack.walkers.planning_summary()
            if planning is not None:
                summary["prediction"] = planning.get("prediction", {})
        return summary

    def fairness_report(self) -> dict:
        """Cross-tenant fairness picture on the shared service clock.

        ``fair_share`` is the per-sample pace a perfect round-robin over
        all registered tenants would give each of them:
        ``num_tenants * clock / total_samples`` (every sample occupies
        the fleet for ``clock/total_samples`` on average, and a fair
        schedule hands each tenant a ``1/num_tenants`` slice of the
        timeline).  Each tenant's ``ratio`` compares its p95 per-sample
        pace against that share; ``max_ratio`` is the number the
        fairness benchmark gates (bounded under deficit-round-robin,
        unbounded under FCFS, where late tenants pay the hog's whole run
        on every sample).
        """
        total_samples = sum(s.samples for s in self._tenants.values())
        occupancy = self._clock / total_samples if total_samples else 0.0
        fair_share = occupancy * max(1, len(self._tenants))
        tenants = {}
        for tid, session in self._tenants.items():
            p95 = _p95(session.sample_walls)
            tenants[tid] = {
                "samples": session.samples,
                "query_cost": session.query_cost,
                "cache_hits": session.cache_hits,
                "warm_hits": session.warm_hits,
                "p95_wall": p95,
                "ratio": (p95 / fair_share) if fair_share > 0.0 else 0.0,
            }
        return {
            "fairness": self._fairness,
            "clock": self._clock,
            "total_samples": total_samples,
            "total_query_cost": sum(s.query_cost for s in self._tenants.values()),
            "fair_share": fair_share,
            "max_ratio": max((row["ratio"] for row in tenants.values()), default=0.0),
            "tenants": tenants,
        }
