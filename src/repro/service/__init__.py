"""Multi-tenant sampling service over one shared provider fleet.

See :mod:`repro.service.service` for the runtime and
:mod:`repro.compose` for the declarative stack specs tenants register
with.
"""

from repro.service.service import (
    STATE_ACTIVE,
    STATE_EXHAUSTED,
    STATE_HIBERNATED,
    STATE_IDLE,
    SamplingService,
    TenantSession,
)

__all__ = [
    "SamplingService",
    "TenantSession",
    "STATE_ACTIVE",
    "STATE_IDLE",
    "STATE_HIBERNATED",
    "STATE_EXHAUSTED",
]
