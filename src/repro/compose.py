"""Unified composition API: declarative specs for the whole sampling stack.

Before this module, standing up the full stack meant hand-threading
keyword arguments through five layers of constructors::

    fleet = sharded_fleet(net.graph, 4, latency_distribution=..., ...)
    api = RestrictedSocialAPI(fleet, cache=..., query_budget=...)
    samplers = [SimpleRandomWalk(api, start=..., seed=...) for ...]
    planner = DispatchPlanner(lookahead=..., policy=AdaptiveChainPolicy(...))
    walkers = EventDrivenWalkers(samplers, batching=True, planner=planner)

That wiring cannot be persisted, compared, or handed to a service that
must rebuild a tenant's stack on demand.  Here the same stack is one
value::

    config = StackConfig(
        fleet=FleetSpec(num_shards=4, provider=ProviderSpec(
            latency_distribution="heavy_tailed", latency_scale=0.5)),
        walk=WalkSpec(engine="srw", chains=8, seed=7),
        planner=PlannerSpec(lookahead=4),
    )
    stack = build_stack(config, net)
    run = stack.run(num_samples=400)

Every spec is a frozen dataclass registered with the snapshot codec
(:mod:`repro.datastore.snapshot`), so configs round-trip bit-for-bit
through any snapshot backend — the service layer persists each tenant's
``StackConfig`` next to its session state and rebuilds the identical
stack in a fresh process.

The legacy helpers keep working but are deprecated:
:func:`repro.fleet.provider.sharded_fleet` now emits a
:class:`DeprecationWarning` pointing at :class:`FleetSpec`.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Optional, Tuple, Union

from repro.datastore.snapshot import register_codec
from repro.errors import ComposeError
from repro.fleet.disruption import DisruptionSchedule
from repro.fleet.provider import ShardedProvider
from repro.fleet.router import ShardRouter
from repro.interface.api import RestrictedSocialAPI
from repro.interface.providers import (
    FlakyProvider,
    InMemoryGraphProvider,
    LatencyModelProvider,
    SocialProvider,
)
from repro.interface.ratelimit import (
    FixedWindowRateLimiter,
    RateLimiter,
    TokenBucketRateLimiter,
    UnlimitedRateLimiter,
)
from repro.obs.trace import TraceRecorder
from repro.planning.lifecycle import AdaptiveChainPolicy
from repro.planning.planner import DispatchPlanner
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.nbrw import NonBacktrackingWalk
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk

Node = Hashable

__all__ = [
    "ProviderSpec",
    "FleetSpec",
    "RateLimitSpec",
    "PolicySpec",
    "PlannerSpec",
    "WalkSpec",
    "StackConfig",
    "SamplingStack",
    "build_fleet",
    "build_stack",
    "walk_starts",
]

#: Walk-engine registry for :class:`WalkSpec.engine`.
WALK_ENGINES = {
    "srw": SimpleRandomWalk,
    "mhrw": MetropolisHastingsWalk,
    "nbrw": NonBacktrackingWalk,
}


@dataclasses.dataclass(frozen=True)
class ProviderSpec:
    """Per-shard serving behaviour (latency + flakiness layers).

    Mirrors the per-shard knobs of the old ``sharded_fleet(...)`` call:
    each shard wraps the hidden graph in an optional seeded
    :class:`~repro.interface.providers.LatencyModelProvider` and an
    optional seeded :class:`~repro.interface.providers.FlakyProvider`.
    """

    latency_distribution: Optional[str] = None
    latency_scale: float = 1.0
    latency_alpha: float = 1.5
    failure_rate: float = 0.0
    max_attempts: int = 8
    timeout_latency: float = 5.0


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """A whole :class:`~repro.fleet.provider.ShardedProvider` as one value.

    Attributes:
        num_shards: Fleet size (>= 1).
        seed: Master seed; every shard's latency/flaky/disruption stream
            derives from it, so the fleet is a pure function of its spec.
        weights: Optional routing weights (traffic-skew axis).
        provider: Per-shard serving behaviour.
        shard_latency_spread: Heterogeneity axis — shard ``s`` scales its
            latency by ``1 + spread * s / (num_shards - 1)``.
        disruption: Optional keyword arguments for per-shard
            :class:`~repro.fleet.disruption.DisruptionSchedule` instances
            (``{}`` uses the schedule defaults; ``None`` disables).
        batch_cap: Per-shard batch caps (scalar or one per shard).
        admission_interval: Per-shard admission intervals.
        latency_quantum: Response-latency grid (0.0 keeps latencies
            continuous).
    """

    num_shards: int = 1
    seed: int = 0
    weights: Optional[Tuple[float, ...]] = None
    provider: ProviderSpec = dataclasses.field(default_factory=ProviderSpec)
    shard_latency_spread: float = 0.0
    disruption: Optional[dict] = None
    batch_cap: Union[int, Tuple[int, ...]] = 8
    admission_interval: Union[float, Tuple[float, ...]] = 0.0
    latency_quantum: float = 0.0

    def build(self, graph, profiles=None) -> ShardedProvider:
        """Assemble the fleet this spec describes (was ``sharded_fleet``)."""
        return build_fleet(self, graph, profiles=profiles)


@dataclasses.dataclass(frozen=True)
class RateLimitSpec:
    """A tenant's rate limiter as one value.

    ``kind`` selects the limiter class: ``"unlimited"`` (default),
    ``"fixed_window"`` (``limit`` requests per ``window`` simulated
    seconds), or ``"token_bucket"`` (``rate`` tokens/second, optional
    ``burst`` capacity).
    """

    kind: str = "unlimited"
    limit: int = 0
    window: float = 0.0
    rate: float = 0.0
    burst: Optional[float] = None

    def build(self) -> RateLimiter:
        """Construct the configured limiter."""
        if self.kind == "unlimited":
            return UnlimitedRateLimiter()
        if self.kind == "fixed_window":
            return FixedWindowRateLimiter(self.limit, self.window)
        if self.kind == "token_bucket":
            return TokenBucketRateLimiter(self.rate, self.burst)
        raise ComposeError(
            f"unknown rate-limiter kind {self.kind!r} "
            "(expected 'unlimited', 'fixed_window', or 'token_bucket')"
        )


@dataclasses.dataclass(frozen=True)
class PolicySpec:
    """An :class:`~repro.planning.lifecycle.AdaptiveChainPolicy` as one value."""

    start_chains: Optional[int] = None
    min_chains: int = 2
    max_active: Optional[int] = None
    tail_ratio: float = 2.0
    evaluate_every: int = 16
    min_observations: int = 8
    spawn_r_hat_above: Optional[float] = None

    def build(self) -> AdaptiveChainPolicy:
        """Construct the configured policy."""
        return AdaptiveChainPolicy(
            start_chains=self.start_chains,
            min_chains=self.min_chains,
            max_active=self.max_active,
            tail_ratio=self.tail_ratio,
            evaluate_every=self.evaluate_every,
            min_observations=self.min_observations,
            spawn_r_hat_above=self.spawn_r_hat_above,
        )


@dataclasses.dataclass(frozen=True)
class PlannerSpec:
    """A :class:`~repro.planning.planner.DispatchPlanner` as one value.

    Planners hold per-run state and bind once, so the spec (not a planner
    instance) is what configs carry — :func:`build_stack` constructs a
    fresh planner per stack.
    """

    lookahead: int = 4
    speculation: int = 0
    seed: int = 0
    policy: Optional[PolicySpec] = None

    def build(self) -> DispatchPlanner:
        """Construct a fresh, unbound planner."""
        policy = self.policy.build() if self.policy is not None else None
        return DispatchPlanner(
            lookahead=self.lookahead,
            speculation=self.speculation,
            policy=policy,
            seed=self.seed,
        )


@dataclasses.dataclass(frozen=True)
class WalkSpec:
    """The walk-engine half of a stack: which chains, from where.

    Attributes:
        engine: One of :data:`WALK_ENGINES` (``"srw"``/``"mhrw"``/``"nbrw"``).
        chains: Chain count (>= 2; the event scheduler's floor).
        seed: Master seed; chain ``i`` walks with seed
            ``seed * 100_003 + i`` and, when ``starts`` is not given,
            starts at ``network.seed_node(seed + i)``.
        starts: Explicit per-chain start nodes (length must equal
            ``chains``), or ``None`` to derive them from the network.
        max_lead: Burn-in lead bound (see
            :class:`~repro.walks.scheduler.EventDrivenWalkers`).
        batch_window: Coalescing hold window in simulated seconds.
    """

    engine: str = "srw"
    chains: int = 2
    seed: int = 0
    starts: Optional[Tuple[Node, ...]] = None
    max_lead: int = 64
    batch_window: float = 0.0


@dataclasses.dataclass(frozen=True)
class StackConfig:
    """Everything needed to stand up one tenant's full sampling stack.

    Attributes:
        fleet: The provider fleet (shared across tenants in a service;
            per-stack otherwise).
        walk: Walk engine, chain count, seeds.
        planner: Optional history-aware dispatch planning.
        rate_limit: The tenant's rate limiter (unlimited by default).
        query_budget: Optional §II-B unique-query budget.
        seconds_per_query: Simulated seconds each billed query costs.
    """

    fleet: FleetSpec = dataclasses.field(default_factory=FleetSpec)
    walk: WalkSpec = dataclasses.field(default_factory=WalkSpec)
    planner: Optional[PlannerSpec] = None
    rate_limit: Optional[RateLimitSpec] = None
    query_budget: Optional[int] = None
    seconds_per_query: float = 1.0


class SamplingStack:
    """A fully assembled provider → interface → walkers → planner stack.

    Built by :func:`build_stack`; holds the live layers plus the config
    that produced them, so callers stop keeping five loose references.
    """

    def __init__(
        self,
        config: StackConfig,
        fleet: ShardedProvider,
        api: RestrictedSocialAPI,
        samplers: List,
        walkers: EventDrivenWalkers,
    ) -> None:
        self.config = config
        self.fleet = fleet
        self.api = api
        self.samplers = samplers
        self.walkers = walkers

    @property
    def planner(self) -> Optional[DispatchPlanner]:
        """The stack's dispatch planner, or ``None``."""
        return self.walkers.planner

    def run(self, num_samples: int, **kwargs):
        """Delegate to :meth:`EventDrivenWalkers.run`."""
        return self.walkers.run(num_samples, **kwargs)


def build_fleet(spec: FleetSpec, graph, profiles=None) -> ShardedProvider:
    """Compose a homogeneous-data, heterogeneous-serving fleet from a spec.

    Every shard serves the same hidden ``graph`` (the fleet partitions
    *traffic*, not data) through its own stack of the provider layers::

        InMemoryGraphProvider          # the data
          └─ LatencyModelProvider      # per-shard seeded latency (optional)
               └─ FlakyProvider        # per-shard seeded retries (optional)

    Args:
        spec: The fleet description.
        graph: The hidden social-network topology.
        profiles: Optional per-user attribute documents.

    Raises:
        ValueError: On invalid shard counts or parameters (propagated
            from the underlying layers).
    """
    p = spec.provider
    router = ShardRouter(spec.num_shards, seed=spec.seed, weights=spec.weights)
    stacks: List[SocialProvider] = []
    disruptions: Optional[List[Optional[DisruptionSchedule]]] = None
    for shard in range(spec.num_shards):
        stack: SocialProvider = InMemoryGraphProvider(graph, profiles=profiles)
        if p.latency_distribution is not None:
            multiplier = 1.0
            if spec.num_shards > 1 and spec.shard_latency_spread > 0.0:
                multiplier += spec.shard_latency_spread * shard / (spec.num_shards - 1)
            stack = LatencyModelProvider(
                stack,
                distribution=p.latency_distribution,
                scale=p.latency_scale * multiplier,
                seed=spec.seed * 1_000_003 + shard,
                alpha=p.latency_alpha,
            )
        if p.failure_rate > 0.0:
            stack = FlakyProvider(
                stack,
                failure_rate=p.failure_rate,
                seed=spec.seed * 999_983 + shard,
                max_attempts=p.max_attempts,
                timeout_latency=p.timeout_latency,
            )
        stacks.append(stack)
    if spec.disruption is not None:
        disruptions = [
            DisruptionSchedule(seed=spec.seed * 31_337 + shard, **spec.disruption)
            for shard in range(spec.num_shards)
        ]
    return ShardedProvider(
        stacks,
        router,
        disruptions=disruptions,
        batch_cap=spec.batch_cap,
        admission_interval=spec.admission_interval,
        latency_quantum=spec.latency_quantum,
    )


def walk_starts(config: StackConfig, network) -> Tuple[Node, ...]:
    """The start nodes :func:`build_stack` will give ``config``'s chains.

    Exposed so the service layer can pre-warm a shared cache before
    rebuilding a hibernated tenant's stack — the rebuilt chains' bootstrap
    queries must all be cache hits, or waking a tenant would bill fetches
    the original session never issued.
    """
    starts = config.walk.starts
    if starts is not None:
        return tuple(starts)
    return tuple(
        network.seed_node(config.walk.seed + i) for i in range(config.walk.chains)
    )


def build_stack(
    config: StackConfig,
    network,
    cache=None,
    fleet: Optional[ShardedProvider] = None,
    recorder: Optional[TraceRecorder] = None,
    tenant: Optional[str] = None,
) -> SamplingStack:
    """Assemble provider → interface → walkers → planner from one config.

    Args:
        config: The declarative stack description.
        network: A dataset stand-in (anything with ``graph``,
            ``profiles``, and ``seed_node(seed)``) the fleet serves and
            start nodes are drawn from.
        cache: Optional pre-existing
            :class:`~repro.interface.cache.NeighborhoodCache` to mount —
            the service layer passes its cross-tenant shared cache here.
        fleet: Optional pre-built fleet to mount instead of building
            ``config.fleet`` — the service layer passes its shared fleet
            so every tenant's interface bills against the same shards.
        recorder: Optional :class:`~repro.obs.trace.TraceRecorder` wired
            through every layer *before* the chains bootstrap, so the
            trace includes the start-node queries the stack bills during
            assembly.  Attaching one after ``build_stack`` returns (see
            :func:`repro.obs.attach_stack`) misses those — a
            reconciliation audit against ``query_cost`` then comes up
            short by one query per chain.
        tenant: Optional tenant label forwarded to the interface's
            recorder hookup (events gain a ``tenant`` attribute; cache
            counters move to the ``tenant.<label>.*`` namespace).  Only
            meaningful with ``recorder``.

    Raises:
        ComposeError: On an unknown walk engine, too few chains, or a
            ``starts`` tuple whose length disagrees with ``chains``.
    """
    engine = WALK_ENGINES.get(config.walk.engine)
    if engine is None:
        raise ComposeError(
            f"unknown walk engine {config.walk.engine!r} "
            f"(expected one of {sorted(WALK_ENGINES)})"
        )
    if config.walk.chains < 2:
        raise ComposeError("WalkSpec.chains must be at least 2 (the scheduler's floor)")
    if config.walk.starts is not None and len(config.walk.starts) != config.walk.chains:
        raise ComposeError(
            f"WalkSpec.starts holds {len(config.walk.starts)} nodes "
            f"for {config.walk.chains} chains"
        )
    starts = walk_starts(config, network)
    if fleet is None:
        fleet = build_fleet(config.fleet, network.graph, profiles=network.profiles)
    limiter = config.rate_limit.build() if config.rate_limit is not None else None
    api = RestrictedSocialAPI(
        fleet,
        rate_limiter=limiter,
        seconds_per_query=config.seconds_per_query,
        query_budget=config.query_budget,
        cache=cache,
    )
    if recorder is not None:
        fleet.set_recorder(recorder)
        api.set_recorder(recorder, tenant=tenant)
    samplers = [
        engine(api, start=starts[i], seed=config.walk.seed * 100_003 + i)
        for i in range(config.walk.chains)
    ]
    planner = config.planner.build() if config.planner is not None else None
    walkers = EventDrivenWalkers(
        samplers,
        max_lead=config.walk.max_lead,
        batching=True,
        batch_window=config.walk.batch_window,
        planner=planner,
    )
    if recorder is not None:
        walkers.set_recorder(recorder, tenant=tenant)
        if planner is not None:
            planner.set_recorder(recorder)
    return SamplingStack(config, fleet, api, samplers, walkers)


def _register_spec_codec(tag: str, cls: type) -> None:
    """Register a field-dict codec for one frozen spec dataclass.

    ``encode`` reduces the instance to ``{field: value}`` — nested specs
    stay instances and are recursively encoded by *their* codecs, so a
    :class:`StackConfig` round-trips with full type fidelity.
    """

    def encode(spec):
        return {f.name: getattr(spec, f.name) for f in dataclasses.fields(spec)}

    register_codec(tag, cls, encode, lambda payload: cls(**payload))


_register_spec_codec("x:provider-spec", ProviderSpec)
_register_spec_codec("x:fleet-spec", FleetSpec)
_register_spec_codec("x:rate-limit-spec", RateLimitSpec)
_register_spec_codec("x:policy-spec", PolicySpec)
_register_spec_codec("x:planner-spec", PlannerSpec)
_register_spec_codec("x:walk-spec", WalkSpec)
_register_spec_codec("x:stack-config", StackConfig)
