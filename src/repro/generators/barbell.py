"""The paper's running example: the barbell graph.

Two dense cliques joined by a single "bridge" edge.  The paper's instance
(Fig. 1) uses two complete graphs K11 joined by one edge: 22 nodes and
2 × C(11,2) + 1 = 111 edges, with conductance Φ(G) = 1/(C(11,2)+1) = 1/56 ≈
0.018 — the unique minimum cut separates the two cliques and the single
bridge is the only cross-cutting edge.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph


def barbell_graph(clique_size: int, bridge_edges: int = 1) -> Graph:
    """Two K_{clique_size} cliques joined by ``bridge_edges`` disjoint edges.

    Nodes ``0 .. clique_size-1`` form the left clique, ``clique_size ..
    2*clique_size-1`` the right.  Bridge ``i`` connects node ``i`` (left) to
    node ``clique_size + i`` (right).

    Args:
        clique_size: Nodes per clique; at least 2.
        bridge_edges: Number of disjoint cross-clique edges; at least 1 and
            at most ``clique_size``.

    Returns:
        The barbell graph.

    Raises:
        ValueError: On out-of-range parameters.
    """
    if clique_size < 2:
        raise ValueError("clique_size must be at least 2")
    if not 1 <= bridge_edges <= clique_size:
        raise ValueError("bridge_edges must be in [1, clique_size]")
    g = Graph()
    for base in (0, clique_size):
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j)
    for i in range(bridge_edges):
        g.add_edge(i, clique_size + i)
    return g


def paper_barbell() -> Graph:
    """The exact running-example graph: 22 nodes, 111 edges (two K11 + 1).

    Node 0 and node 11 are the bridge endpoints (the paper's ``u`` and
    ``v``).
    """
    g = barbell_graph(11, 1)
    assert g.num_nodes == 22 and g.num_edges == 111
    return g
