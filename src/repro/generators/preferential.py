"""Small-world and preferential-attachment models.

Used by ablation benchmarks and tests as alternative OSN-like topologies:
Watts–Strogatz supplies high clustering with short paths, Barabási–Albert
supplies heavy-tailed degree distributions.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng


def watts_strogatz_graph(n: int, k: int, p: float, seed: RngLike = None) -> Graph:
    """Watts–Strogatz ring rewiring model.

    Start from a ring where every node connects to its ``k`` nearest
    neighbors (k/2 each side), then rewire each edge's far endpoint with
    probability ``p`` (avoiding self-loops and duplicates).

    Args:
        n: Number of nodes (> k).
        k: Even base degree, at least 2.
        p: Rewiring probability in [0, 1].
        seed: Randomness.

    Raises:
        ValueError: On invalid parameters.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError("k must be even and >= 2")
    if n <= k:
        raise ValueError("n must exceed k")
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n):
        for offset in range(1, k // 2 + 1):
            g.add_edge(i, (i + offset) % n)
    if p == 0:
        return g
    for i in range(n):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % n
            if rng.random() < p and g.has_edge(i, j):
                candidates = [x for x in range(n) if x != i and not g.has_edge(i, x)]
                if not candidates:
                    continue
                new_j = rng.choice(candidates)
                g.remove_edge(i, j)
                g.add_edge(i, new_j)
    return g


def barabasi_albert_graph(n: int, m: int, seed: RngLike = None) -> Graph:
    """Barabási–Albert preferential attachment.

    Start from a star on ``m + 1`` nodes; each subsequent node attaches to
    ``m`` distinct existing nodes chosen proportionally to degree (by
    sampling from the repeated-endpoint list, the standard O(m) trick).

    Args:
        n: Total number of nodes (> m).
        m: Edges added per new node, at least 1.
        seed: Randomness.

    Raises:
        ValueError: On invalid parameters.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if n <= m:
        raise ValueError("n must exceed m")
    rng = ensure_rng(seed)
    g = Graph()
    # Degree-proportional sampling pool: every edge contributes both ends.
    pool: list = []
    for i in range(1, m + 1):
        g.add_edge(0, i)
        pool.extend((0, i))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(pool))
        for t in targets:
            g.add_edge(new, t)
            pool.extend((new, t))
    return g
