"""Community-structured random graphs.

Real OSNs have many dense communities with sparse cross-community edges —
exactly the "many non-cross-cutting, few cross-cutting edges" regime MTO
exploits (paper §I-C).  The dataset stand-ins are built from the models
here: heavy-tailed degrees inside communities (Chung–Lu) plus sparse
inter-community wiring (planted partition).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng


def power_law_degrees(
    n: int,
    exponent: float = 2.5,
    min_degree: int = 2,
    max_degree: int | None = None,
    seed: RngLike = None,
) -> List[int]:
    """Draw ``n`` degrees from a discrete power law P(k) ∝ k^-exponent.

    Args:
        n: Number of samples.
        exponent: Power-law exponent (> 1); OSN degree tails are typically
            2–3.
        min_degree: Smallest degree (>= 1).
        max_degree: Largest degree; defaults to ``max(min_degree, n - 1)``
            (a simple graph cannot exceed degree n-1).
        seed: Randomness.

    Returns:
        Degree list (unsorted).

    Raises:
        ValueError: On invalid parameters.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if exponent <= 1:
        raise ValueError("exponent must exceed 1")
    if min_degree < 1:
        raise ValueError("min_degree must be at least 1")
    cap = max_degree if max_degree is not None else max(min_degree, n - 1)
    if cap < min_degree:
        raise ValueError("max_degree must be >= min_degree")
    rng = ensure_rng(seed)
    # Inverse-CDF sampling on the continuous Pareto, rounded down and capped:
    # standard practice and accurate for tail exponents in (2, 3).
    degrees = []
    for _ in range(n):
        u = rng.random()
        k = min_degree * (1.0 - u) ** (-1.0 / (exponent - 1.0))
        degrees.append(min(int(k), cap))
    return degrees


def chung_lu_graph(expected_degrees: Sequence[float], seed: RngLike = None) -> Graph:
    """Chung–Lu random graph with given expected degrees.

    Edge ``{i, j}`` appears independently with probability
    ``min(1, w_i * w_j / sum(w))``.  Uses the O(n + m) skip-sampling
    construction (Miller & Hagberg 2011) so stand-ins of tens of thousands
    of edges generate quickly.

    Args:
        expected_degrees: Weight ``w_i`` per node ``i`` (node ids are
            ``0..n-1``).
        seed: Randomness.

    Returns:
        The sampled graph (may be disconnected; callers usually take the
        largest connected component).

    Raises:
        ValueError: If any weight is negative or all weights are zero.
    """
    weights = [float(w) for w in expected_degrees]
    if any(w < 0 for w in weights):
        raise ValueError("expected degrees must be non-negative")
    n = len(weights)
    g = Graph()
    g.add_nodes(range(n))
    total = sum(weights)
    if n == 0:
        return g
    if total <= 0:
        raise ValueError("at least one expected degree must be positive")
    rng = ensure_rng(seed)
    # Sort descending by weight; remap to original ids at insert time.
    order = sorted(range(n), key=lambda i: weights[i], reverse=True)
    w = [weights[i] for i in order]
    for i in range(n - 1):
        if w[i] <= 0:
            break
        factor = w[i] / total
        p = min(1.0, w[i + 1] * factor)
        j = i + 1
        while j < n and p > 0:
            if p < 1.0:
                # Geometric skip over non-edges.
                r = rng.random()
                skip = int(math.log(r) / math.log(1.0 - p)) if r > 0 else 0
                j += skip
            if j >= n:
                break
            q = min(1.0, w[j] * factor)
            # Conditional on the geometric skip landing here, the edge
            # exists with probability q/p (Miller–Hagberg); when p == 1 no
            # skip happened and this is simply "with probability q".
            if rng.random() < q / p:
                g.add_edge(order[i], order[j])
            p = q
            j += 1
    return g


def planted_partition_graph(
    communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: RngLike = None,
) -> Graph:
    """Planted-partition (stochastic block) model with equal-size blocks.

    Args:
        communities: Number of blocks (>= 1).
        community_size: Nodes per block (>= 2).
        p_in: Within-block edge probability.
        p_out: Cross-block edge probability (typically ≪ ``p_in``).
        seed: Randomness.

    Returns:
        Graph on ``communities * community_size`` nodes; node ``i`` belongs
        to block ``i // community_size``.

    Raises:
        ValueError: On invalid parameters.
    """
    if communities < 1 or community_size < 2:
        raise ValueError("need at least 1 community of size >= 2")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not 0 <= p <= 1:
            raise ValueError(f"{name} must be in [0, 1]")
    rng = ensure_rng(seed)
    n = communities * community_size
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            same = (i // community_size) == (j // community_size)
            if rng.random() < (p_in if same else p_out):
                g.add_edge(i, j)
    return g


def relaxed_caveman_graph(
    cliques: int,
    clique_size: int,
    rewire_prob: float,
    seed: RngLike = None,
) -> Graph:
    """Relaxed caveman model: ring of cliques with random rewiring.

    Start from ``cliques`` disjoint K_{clique_size} cliques; each
    intra-clique edge is rewired to a uniform random node elsewhere with
    probability ``rewire_prob``, producing sparse cross-community links —
    a low-conductance topology that is a stress test for random-walk
    samplers.

    Args:
        cliques: Number of cliques (>= 2).
        clique_size: Nodes per clique (>= 2).
        rewire_prob: Per-edge rewiring probability in [0, 1].
        seed: Randomness.

    Raises:
        ValueError: On invalid parameters.
    """
    if cliques < 2 or clique_size < 2:
        raise ValueError("need at least 2 cliques of size >= 2")
    if not 0 <= rewire_prob <= 1:
        raise ValueError("rewire_prob must be in [0, 1]")
    rng = ensure_rng(seed)
    n = cliques * clique_size
    g = Graph()
    g.add_nodes(range(n))
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                g.add_edge(base + i, base + j)
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                u, v = base + i, base + j
                if g.has_edge(u, v) and rng.random() < rewire_prob:
                    target = rng.randrange(n)
                    if target != u and not g.has_edge(u, target):
                        g.remove_edge(u, v)
                        g.add_edge(u, target)
    return g
