"""Forest Fire graph model (Leskovec & Faloutsos, cited by the paper [15]).

A growth model matching real-network densification: each new node picks a
random "ambassador", links to it, then recursively "burns" through a
geometrically-distributed number of the ambassador's neighbors, linking to
every burned node.  Produces heavy-tailed degrees, high clustering, and
shrinking diameters — a third family of OSN-like topologies for ablation
benchmarks beyond the planted-community and latent-space models.
"""

from __future__ import annotations

from collections import deque
from typing import Set

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng


def forest_fire_graph(n: int, forward_prob: float = 0.35, seed: RngLike = None) -> Graph:
    """Sample an undirected Forest Fire graph.

    Args:
        n: Number of nodes (≥ 2).
        forward_prob: Burning probability ``p``; each burn step spreads to
            ``Geometric(1 − p)`` unvisited neighbors.  Realistic OSN-like
            graphs arise around 0.3–0.4; above ~0.5 the graph densifies
            sharply.
        seed: Randomness.

    Returns:
        A connected graph on nodes ``0..n-1``.

    Raises:
        ValueError: On invalid parameters.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if not 0 <= forward_prob < 1:
        raise ValueError("forward_prob must be in [0, 1)")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_node(0)
    for new in range(1, n):
        ambassador = rng.randrange(new)
        g.add_node(new)
        burned: Set[int] = set()
        frontier: deque[int] = deque([ambassador])
        while frontier:
            node = frontier.popleft()
            if node in burned:
                continue
            burned.add(node)
            g.add_edge(new, node)
            # Geometric(1 - p) spread: keep drawing neighbors while the
            # coin keeps coming up "burn".
            candidates = [
                x for x in g.neighbors_view(node) if x != new and x not in burned
            ]
            rng.shuffle(candidates)
            spread = 0
            while spread < len(candidates) and rng.random() < forward_prob:
                frontier.append(candidates[spread])
                spread += 1
    return g
