"""Classic deterministic and random graph models."""

from __future__ import annotations

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng


def complete_graph(n: int) -> Graph:
    """K_n. ``n`` must be non-negative."""
    if n < 0:
        raise ValueError("n must be non-negative")
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def cycle_graph(n: int) -> Graph:
    """C_n (n >= 3)."""
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def path_graph(n: int) -> Graph:
    """P_n (n >= 1)."""
    if n < 1:
        raise ValueError("path needs at least 1 node")
    g = Graph()
    g.add_node(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def star_graph(leaves: int) -> Graph:
    """Star with a hub (node 0) and ``leaves`` spokes."""
    if leaves < 1:
        raise ValueError("star needs at least 1 leaf")
    g = Graph()
    for i in range(1, leaves + 1):
        g.add_edge(0, i)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """2D lattice with 4-neighborhoods; nodes are ``(r, c)`` tuples."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs positive dimensions")
    g = Graph()
    g.add_nodes((r, c) for r in range(rows) for c in range(cols))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def erdos_renyi_graph(n: int, p: float, seed: RngLike = None) -> Graph:
    """G(n, p) random graph.

    Args:
        n: Number of nodes.
        p: Independent edge probability in [0, 1].
        seed: Randomness.

    Raises:
        ValueError: On out-of-range parameters.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = ensure_rng(seed)
    g = Graph()
    g.add_nodes(range(n))
    if p == 0:
        return g
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g
