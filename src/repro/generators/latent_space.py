"""The latent space graph model and the paper's Theorem 6 analysis.

Section IV-B adopts the latent space model of Sarkar–Chakrabarti–Moore:
nodes live at positions in a D-dimensional space and connect with
probability ``P(i ~ j | d_ij) = 1 / (1 + exp(α (d_ij - r)))``.  With
``α = +∞`` this degenerates to the unit-disc rule ``connect iff d_ij < r``,
which is the variant the paper analyzes and the Figure 10 experiment uses
(2-D, nodes uniform in [0,4] × [0,5], r = 0.7).

Theorem 6 lower-bounds the expected number of removable edges via the
distance distribution: an edge (i, j) is removable once ``d_ij`` is below a
threshold (conservatively ``sqrt(0.75) * r`` for D = 2), giving

    E[Φ(G*)] ≥ Φ(G) / (1 − P(d ≤ sqrt(0.75) r²)).

The probability integral uses the exact triangular densities of coordinate
differences of two uniform points in a rectangle.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from scipy import integrate

from repro.graph.adjacency import Graph
from repro.utils.rng import RngLike, ensure_rng


@dataclasses.dataclass(frozen=True)
class LatentSpaceSample:
    """A sampled latent space graph together with its node positions.

    Attributes:
        graph: The sampled topology (node ids ``0..n-1``).
        positions: Latent coordinates per node, aligned with node ids.
        r: Connection radius used.
        alpha: Logistic sharpness (``math.inf`` for the hard threshold).
    """

    graph: Graph
    positions: List[Tuple[float, ...]]
    r: float
    alpha: float


def _distance(p: Tuple[float, ...], q: Tuple[float, ...]) -> float:
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(p, q)))


def latent_space_graph(
    n: int,
    area: Tuple[float, float] = (4.0, 5.0),
    r: float = 0.7,
    alpha: float = math.inf,
    seed: RngLike = None,
) -> LatentSpaceSample:
    """Sample a 2-D latent space graph.

    Args:
        n: Number of nodes.
        area: Rectangle ``[0, a] × [0, b]`` the positions are uniform over;
            the paper's Figure 10 uses (4, 5).
        r: Connection radius; the paper uses 0.7.
        alpha: Logistic sharpness; ``math.inf`` (default) gives the hard
            unit-disc rule the paper's theory assumes.
        seed: Randomness.

    Returns:
        The sampled graph with positions.

    Raises:
        ValueError: On invalid parameters.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    a, b = area
    if a <= 0 or b <= 0:
        raise ValueError("area dimensions must be positive")
    if r <= 0:
        raise ValueError("r must be positive")
    rng = ensure_rng(seed)
    positions = [(rng.uniform(0, a), rng.uniform(0, b)) for _ in range(n)]
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            d = _distance(positions[i], positions[j])
            if math.isinf(alpha):
                connect = d < r
            else:
                connect = rng.random() < 1.0 / (1.0 + math.exp(alpha * (d - r)))
            if connect:
                g.add_edge(i, j)
    return LatentSpaceSample(graph=g, positions=positions, r=r, alpha=alpha)


def removable_distance_threshold(r: float, dim: int = 2) -> float:
    """Theorem 6's conservative removable-edge distance threshold.

    For D = 2 the paper's bound (eq. 30) integrates over
    ``z1² + z2² ≤ 0.75 r²``, i.e. the threshold is ``sqrt(0.75) * r``; the
    general-D form follows the same ``|N(i) ∩ N(j)| ≥ |N(i) ∪ N(j)| − 2``
    relaxation with the hypersphere cap volume, which for the paper's
    conservative constant reduces to ``r * (1 - (1/3)^(1/D))`` scaled into
    the 2-D case.  We expose the D = 2 constant the paper actually uses.

    Args:
        r: Connection radius.
        dim: Latent dimension (only 2 is supported, matching the paper's
            experiments).

    Raises:
        ValueError: For unsupported dimensions or non-positive ``r``.
    """
    if r <= 0:
        raise ValueError("r must be positive")
    if dim != 2:
        raise ValueError("only the paper's 2-D case is implemented")
    return math.sqrt(0.75) * r


def removable_edge_probability(
    r: float, area: Tuple[float, float] = (4.0, 5.0), dim: int = 2
) -> float:
    """``P(d ≤ sqrt(0.75) r)`` for two uniform points in ``[0,a] × [0,b]``.

    The coordinate differences ``z1 = |x1 − x2|`` and ``z2 = |y1 − y2|`` are
    independent with triangular densities ``f_a(z) = 2(a − z)/a²`` on
    ``[0, a]``; the probability is the integral of their product over the
    quarter-disc ``z1² + z2² ≤ d0²`` (paper eq. 27).

    Args:
        r: Connection radius.
        area: Rectangle dimensions ``(a, b)``.
        dim: Latent dimension (2 only).

    Returns:
        The removable-edge probability, in [0, 1].
    """
    d0 = removable_distance_threshold(r, dim)
    a, b = area
    if a <= 0 or b <= 0:
        raise ValueError("area dimensions must be positive")

    def fa(z: float) -> float:
        return 2.0 * (a - z) / (a * a) if 0 <= z <= a else 0.0

    def fb(z: float) -> float:
        return 2.0 * (b - z) / (b * b) if 0 <= z <= b else 0.0

    def integrand(z2: float, z1: float) -> float:
        return fa(z1) * fb(z2)

    # Integrate z1 over [0, min(d0, a)], z2 over the disc slice.
    z1_hi = min(d0, a)
    value, _abserr = integrate.dblquad(
        integrand,
        0.0,
        z1_hi,
        lambda z1: 0.0,
        lambda z1: min(math.sqrt(max(d0 * d0 - z1 * z1, 0.0)), b),
        epsabs=1e-10,
    )
    return min(1.0, max(0.0, value))


def theorem6_conductance_bound(
    conductance: float, r: float, area: Tuple[float, float] = (4.0, 5.0)
) -> float:
    """Theorem 6's lower bound on the post-removal conductance.

    ``E[Φ(G*)] ≥ Φ(G) / (1 − P(d ≤ sqrt(0.75) r))`` (paper eq. 24/30).

    Args:
        conductance: Φ(G) of the original latent space graph.
        r: Connection radius.
        area: Rectangle dimensions.

    Returns:
        The lower bound on E[Φ(G*)].

    Raises:
        ValueError: If ``conductance`` is negative.
    """
    if conductance < 0:
        raise ValueError("conductance must be non-negative")
    p = removable_edge_probability(r, area)
    if p >= 1.0:
        return math.inf
    return conductance / (1.0 - p)


def expected_removable_edges(num_edges: int, r: float, area: Tuple[float, float] = (4.0, 5.0)) -> float:
    """Theorem 6's lower bound on the number of removable edges.

    ``E[R] ≥ |E| · P(d ≤ threshold)`` (paper eq. 12/23), where the
    probability is conditional approximation via the unconditional distance
    distribution (the paper's conservative step).

    Args:
        num_edges: ``|E|`` of the sampled graph.
        r: Connection radius.
        area: Rectangle dimensions.
    """
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    return num_edges * removable_edge_probability(r, area)
