"""Synthetic graph generators.

Covers every topology the paper uses or depends on:

* the **barbell** running example (two K11 cliques joined by one edge —
  22 nodes, 111 edges, conductance 1/56 ≈ 0.018);
* the **latent space model** of Sarkar–Chakrabarti–Moore, used for the
  paper's theoretical analysis (Theorem 6) and Figure 10;
* classic models (complete, cycle, path, star, grid, Erdős–Rényi,
  Watts–Strogatz, Barabási–Albert) used by tests and ablations;
* community-structured models (planted partition, relaxed caveman,
  Chung–Lu) from which the OSN dataset stand-ins are built.
"""

from repro.generators.barbell import barbell_graph, paper_barbell
from repro.generators.classic import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.generators.communities import (
    chung_lu_graph,
    planted_partition_graph,
    power_law_degrees,
    relaxed_caveman_graph,
)
from repro.generators.latent_space import (
    LatentSpaceSample,
    latent_space_graph,
    removable_distance_threshold,
    removable_edge_probability,
    theorem6_conductance_bound,
)
from repro.generators.forest_fire import forest_fire_graph
from repro.generators.preferential import barabasi_albert_graph, watts_strogatz_graph

__all__ = [
    "barbell_graph",
    "paper_barbell",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "star_graph",
    "chung_lu_graph",
    "planted_partition_graph",
    "power_law_degrees",
    "relaxed_caveman_graph",
    "LatentSpaceSample",
    "latent_space_graph",
    "removable_distance_threshold",
    "removable_edge_probability",
    "theorem6_conductance_bound",
    "barabasi_albert_graph",
    "forest_fire_graph",
    "watts_strogatz_graph",
]
