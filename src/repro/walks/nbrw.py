"""Non-backtracking random walk (Lee, Xu & Eun — the paper's ref. [14]).

"Why you should not backtrack for unbiased graph sampling": from node
``v``, choose uniformly among the neighbors *excluding the one just came
from* (falling back to backtracking only at degree-1 nodes).  The chain on
directed edges is doubly stochastic, so the node-marginal stationary
distribution remains degree-proportional — SRW's ``1/k`` weights still
apply — while the diffusion is faster because immediate reversals are
eliminated.  The paper cites this line of work as motivation that walk
*dynamics* (not just topology) can be improved; MTO attacks the topology
instead, and the two compose.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.walks.base import RandomWalkSampler

Node = Hashable


class NonBacktrackingWalk(RandomWalkSampler):
    """SRW variant that never immediately reverses an edge.

    Same constructor as :class:`~repro.walks.srw.SimpleRandomWalk`.
    """

    _previous: Optional[Node] = None

    def step(self) -> Node:
        """Hop to a uniform accessible neighbor other than the predecessor.

        On private-free networks with the default degree trace the step
        runs on the fast cached-step lane — the same predecessor filter
        over the same stable sequence, the same single ``randrange``, the
        same query log and billing as the full path.
        """
        if self._uses_default_trace and not self._api.may_have_private:
            seq = self._current_neighbor_seq()
            neighbors: Sequence[Node] = seq
            if self._previous is not None and len(neighbors) > 1:
                neighbors = [v for v in neighbors if v != self._previous]
            if not neighbors:  # only possible when seq itself is empty
                self._stay_fast(0)
                return self._current
            nxt = neighbors[self._rng.randrange(len(neighbors))]
            nxt_seq = self._api.fetch_seq(nxt)
            self._previous = self._current
            self._advance_fast(nxt, len(nxt_seq), seq=nxt_seq)
            return nxt
        resp = self._query_current()
        neighbors: Sequence[Node] = resp.neighbor_seq
        if self._previous is not None and len(neighbors) > 1:
            neighbors = [v for v in neighbors if v != self._previous]
        drawn = self._draw_accessible(neighbors)
        if drawn is None:
            # Everything (except possibly the predecessor) is private:
            # allow the backtrack rather than dying.
            fallback = self._draw_accessible(resp.neighbor_seq)
            if fallback is None:
                self._stay()
                return self.current
            drawn = fallback
        nxt, nxt_resp = drawn
        self._previous = self.current
        self._advance(nxt, nxt_resp)
        return nxt

    def predict_next_fetch(self, max_steps: int = 64) -> Optional[Node]:
        """Replay the predecessor-exclusion draw to the next fetch.

        NBRW is SRW with the just-departed node filtered out of the draw
        (at degree > 1), so the replay threads a *simulated* predecessor
        alongside the cloned RNG: filter, ``randrange`` over what
        remains, advance, repeat — until the drawn node's neighborhood is
        not cached, which is the fetch the live walk will pay for.

        Returns ``None`` on networks with private users (the exclusion
        fallback re-draws with data-dependent counts), at dead ends, or
        when the whole horizon is cached.
        """
        if self._api.may_have_private:
            return None
        cache = self._api.cache
        rng = self._replay_rng_clone()
        cur = self._current
        prev = self._previous
        seq = self._replay_seq_of(cache, cur)
        for _ in range(max_steps):
            if not seq:
                return None
            neighbors: Sequence[Node] = seq
            if prev is not None and len(neighbors) > 1:
                neighbors = [v for v in neighbors if v != prev]
            nxt = neighbors[rng.randrange(len(neighbors))]
            nxt_seq = cache.neighbor_seq(nxt)
            if nxt_seq is None:
                return nxt
            prev, cur, seq = cur, nxt, nxt_seq
        return None

    def weight(self, node: Node) -> float:
        """``1/k_node`` — the node marginal stays degree-proportional."""
        degree = self._api.cached_degree(node)
        if degree is None:  # pragma: no cover - visited nodes are cached
            degree = self._query(node).degree
        return 1.0 / degree

    def state_dict(self) -> dict:
        """Base walk state plus the non-backtracking predecessor."""
        state = super().state_dict()
        state["previous"] = self._previous
        return state

    def load_state(self, state: dict) -> None:
        """Restore base walk state plus the predecessor."""
        super().load_state(state)
        self._previous = state["previous"]
