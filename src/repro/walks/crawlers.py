"""Graph-traversal crawlers: BFS, DFS, and snowball sampling.

The paper's related work (refs. [10], [15]) compares random walks against
"traditional Breadth First Search (BFS) and Depth First Search (DFS)"
crawling.  These are not Markov chains — their inclusion probabilities are
intractable, and BFS famously over-samples high-degree nodes — so they
carry **unknown bias**; they are provided as baselines that demonstrate
*why* the paper's walk-based estimators matter.  Their ``weight`` is 1.0
(no principled correction exists), and estimates built from them should be
read as what a naive crawler would report.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, Set

from repro.errors import DeadEndError, PrivateUserError
from repro.interface.api import RestrictedSocialAPI
from repro.utils.rng import RngLike
from repro.walks.base import RandomWalkSampler

Node = Hashable


class _CrawlerBase(RandomWalkSampler):
    """Shared frontier machinery for BFS/DFS/snowball crawlers."""

    def __init__(self, api: RestrictedSocialAPI, start: Node, seed: RngLike = None) -> None:
        super().__init__(api, start, seed=seed)
        self._visited: Set[Node] = {start}
        self._frontier: Deque[Node] = deque()
        self._push_neighbors(start)

    def _push_neighbors(self, node: Node) -> None:
        resp = self._api.query(node)
        fresh = [v for v in resp.neighbor_seq if v not in self._visited]
        self._rng.shuffle(fresh)
        for v in fresh:
            self._frontier.append(v)

    def _pop(self) -> Node:
        raise NotImplementedError

    def step(self) -> Node:
        """Visit the next frontier node (FIFO for BFS, LIFO for DFS).

        Raises:
            DeadEndError: When the frontier is exhausted (the whole
                reachable component has been crawled).
        """
        while self._frontier:
            nxt = self._pop()
            if nxt in self._visited:
                continue
            try:
                resp = self._api.query(nxt)
            except PrivateUserError:
                self._visited.add(nxt)
                continue
            self._visited.add(nxt)
            self._advance(nxt, resp)
            self._push_neighbors(nxt)
            return nxt
        raise DeadEndError(self.current)

    def weight(self, node: Node) -> float:
        """1.0 — crawler inclusion probabilities are intractable."""
        return 1.0

    @property
    def visited(self) -> frozenset:
        """Nodes crawled so far."""
        return frozenset(self._visited)

    def state_dict(self) -> dict:
        """Base walk state plus the visited set and frontier order."""
        state = super().state_dict()
        state["visited"] = set(self._visited)
        state["frontier"] = tuple(self._frontier)
        return state

    def load_state(self, state: dict) -> None:
        """Restore base walk state plus the visited set and frontier."""
        super().load_state(state)
        self._visited = set(state["visited"])
        self._frontier = deque(state["frontier"])


class BFSCrawler(_CrawlerBase):
    """Breadth-first crawler (FIFO frontier) — over-samples hubs."""

    def _pop(self) -> Node:
        return self._frontier.popleft()


class DFSCrawler(_CrawlerBase):
    """Depth-first crawler (LIFO frontier)."""

    def _pop(self) -> Node:
        return self._frontier.pop()


class SnowballCrawler(_CrawlerBase):
    """Snowball sampling: BFS that keeps at most ``k`` neighbors per node.

    The classic sociology design (and the de-facto behaviour of many
    scraping scripts); ``k`` bounds the per-user fan-out.

    Args:
        api: Restrictive interface.
        start: Seed user.
        k: Neighbors retained per visited user (≥ 1).
        seed: Randomness (which ``k`` neighbors are kept).
    """

    def __init__(
        self,
        api: RestrictedSocialAPI,
        start: Node,
        k: int = 3,
        seed: RngLike = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self._k = k
        super().__init__(api, start, seed=seed)

    def _push_neighbors(self, node: Node) -> None:
        resp = self._api.query(node)
        fresh = [v for v in resp.neighbor_seq if v not in self._visited]
        self._rng.shuffle(fresh)
        for v in fresh[: self._k]:
            self._frontier.append(v)

    def _pop(self) -> Node:
        return self._frontier.popleft()
