"""Base machinery shared by all walk-based samplers.

A sampler advances node-by-node through the restrictive interface,
maintains the attribute trace the convergence monitor watches (degree by
default), and collects weighted samples once converged.  Each collected
:class:`WalkSample` records the billed query cost at collection time, so
experiment drivers can compute estimate-vs-cost curves from a single run
(the paper's Figures 7 and 11).
"""

from __future__ import annotations

import abc
import dataclasses
import random
from typing import Callable, Hashable, List, Optional, Sequence

from repro.convergence.monitors import ConvergenceMonitor
from repro.datastore.snapshot import register_codec
from repro.errors import DeadEndError, PrivateUserError
from repro.interface.api import QueryResponse, RestrictedSocialAPI
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable


@dataclasses.dataclass(frozen=True)
class WalkSample:
    """One collected sample.

    Attributes:
        node: Sampled user id.
        weight: Importance weight ∝ target(π) / walk-stationary(τ) at the
            node; multiplying by it re-targets estimates to the uniform
            distribution over users.
        query_cost: Billed queries spent up to (and including) collecting
            this sample.
        step: Walk step index at collection.
    """

    node: Node
    weight: float
    query_cost: int
    step: int


# Snapshot codec so collected samples can live inside checkpointed state
# (the event-driven scheduler persists its partially filled merged list).
register_codec(
    "x:walk-sample",
    WalkSample,
    lambda s: (s.node, s.weight, s.query_cost, s.step),
    lambda fields: WalkSample(*fields),
)


@dataclasses.dataclass
class SamplingRun:
    """Everything one sampling run produced.

    Attributes:
        samples: Collected samples, in collection order.
        burn_in_steps: Steps spent before the monitor declared convergence.
        total_steps: All walk steps taken.
        query_cost: Final billed query count.
        converged: Whether the monitor fired (``False`` if the step budget
            ran out first).
    """

    samples: List[WalkSample]
    burn_in_steps: int
    total_steps: int
    query_cost: int
    converged: bool

    def nodes(self) -> List[Node]:
        """Sampled node ids, in order."""
        return [s.node for s in self.samples]


class RandomWalkSampler(abc.ABC):
    """Abstract walk-based sampler over a restrictive interface.

    Subclasses implement one :meth:`step` (and the stationary-correcting
    :meth:`weight`); burn-in, convergence monitoring, thinning, and sample
    collection are shared here.

    Args:
        api: The restrictive interface to sample through.
        start: Start node.  The interface exposes no node list, so callers
            must supply one (the paper starts "from an arbitrary user").
        seed: Randomness.
        trace_attribute: Per-node value watched by convergence monitors;
            defaults to the node's (original-graph) degree, the attribute
            the paper uses because it exists in every network.
    """

    def __init__(
        self,
        api: RestrictedSocialAPI,
        start: Node,
        seed: RngLike = None,
        trace_attribute: Optional[Callable[[QueryResponse], float]] = None,
    ) -> None:
        self._api = api
        self._rng = ensure_rng(seed)
        self._uses_default_trace = trace_attribute is None
        self._trace_fn = (
            trace_attribute if trace_attribute is not None else (lambda resp: float(resp.degree))
        )
        self._current = start
        self._steps = 0
        self._trace: List[float] = []
        self._checkpoint_fn: Optional[Callable[["RandomWalkSampler"], None]] = None
        self._checkpoint_every = 0
        resp = self._api.query(start)  # materialize the start node
        self._current_resp: Optional[QueryResponse] = resp
        # Seq memo for the fast cached-step lane: the current node's stable
        # neighbor tuple, or None when it must be re-read through the
        # interface (after load_state, or a commit that didn't carry it).
        self._current_seq: Optional[tuple] = resp.neighbor_seq
        self._record_trace(resp)

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def step(self) -> Node:
        """Advance one step; returns the new current node.

        Implementations must go through ``self._api`` for all topology
        knowledge and call ``self._advance(node, response)`` to commit the
        move.
        """

    @abc.abstractmethod
    def weight(self, node: Node) -> float:
        """Importance weight for ``node`` targeting the uniform distribution.

        Must only use knowledge already paid for (the node was just
        visited).
        """

    # ------------------------------------------------------------------
    # shared walk state
    # ------------------------------------------------------------------
    @property
    def current(self) -> Node:
        """The node the walk is at."""
        return self._current

    @property
    def steps(self) -> int:
        """Number of committed steps."""
        return self._steps

    @property
    def trace(self) -> Sequence[float]:
        """Attribute trace (one entry per visited node incl. the start)."""
        return tuple(self._trace)

    @property
    def api(self) -> RestrictedSocialAPI:
        """The interface this sampler spends queries through."""
        return self._api

    @property
    def query_cost(self) -> int:
        """Billed queries so far."""
        return self._api.query_cost

    @property
    def rng(self):
        """The sampler's random stream (shared with subclasses)."""
        return self._rng

    def _record_trace(self, response: QueryResponse) -> None:
        self._trace.append(self._trace_fn(response))

    def _advance(self, node: Node, response: QueryResponse) -> None:
        """Commit a move to ``node`` whose query returned ``response``."""
        self._current = node
        self._current_resp = response
        self._current_seq = response.neighbor_seq
        self._steps += 1
        self._record_trace(response)
        self._after_commit()

    def _advance_fast(self, node: Node, degree: int, seq: Optional[tuple] = None) -> None:
        """Commit a move using already-paid-for degree knowledge.

        Skips rebuilding a cached :class:`QueryResponse` when only the
        default degree trace is recorded — the walk engines' hot path.
        Callers must only use it when ``self._uses_default_trace`` holds.

        Args:
            node: The node moved to.
            degree: Its (already paid for) degree, recorded in the trace.
            seq: Its stable neighbor tuple, when the caller already holds
                it (the fast cached-step lane); keeps the seq memo warm so
                the next step is draw-only.  Omitted → memo invalidated.
        """
        self._current = node
        self._current_resp = None
        self._current_seq = seq
        self._steps += 1
        self._trace.append(float(degree))
        self._after_commit()

    def _stay(self) -> None:
        """Commit a self-transition (MH rejection / lazy hold)."""
        resp = self._query_current()  # memoized or cached — free
        self._steps += 1
        self._record_trace(resp)
        self._after_commit()

    def _stay_fast(self, degree: int) -> None:
        """Commit a self-transition with already-known degree.

        The fast-lane twin of :meth:`_stay`: no response lookup, just the
        trace append and commit bookkeeping.  Callers must only use it
        when ``self._uses_default_trace`` holds and ``degree`` is the
        current node's degree.
        """
        self._steps += 1
        self._trace.append(float(degree))
        self._after_commit()

    # ------------------------------------------------------------------
    # checkpoint hook
    # ------------------------------------------------------------------
    def set_checkpoint(self, fn: Callable[["RandomWalkSampler"], None], every: int) -> None:
        """Invoke ``fn(self)`` after every ``every``-th committed step.

        The hook fires at *commit points* — after a move, fast move, or
        self-transition lands — which in every walk engine is the last
        RNG-consuming action of a step.  Capturing state there (e.g.
        ``SamplingSession.save``) therefore snapshots a resumable
        boundary: the next step replays identically from the stored RNG
        state.  Firing is driver-agnostic: ``run``, ``run_to_coverage``,
        parallel lock-stepping, and hand-rolled ``step()`` loops all hit
        it.

        Args:
            fn: Callback receiving this sampler.
            every: Positive step period.

        Raises:
            ValueError: If ``every`` is not positive.
        """
        if every < 1:
            raise ValueError("checkpoint period must be positive")
        self._checkpoint_fn = fn
        self._checkpoint_every = every

    def clear_checkpoint(self) -> None:
        """Remove any installed checkpoint hook."""
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    def _after_commit(self) -> None:
        if self._checkpoint_fn is not None and self._steps % self._checkpoint_every == 0:
            self._checkpoint_fn(self)

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable mutable walk state.

        Position, step count, attribute trace, and the full Mersenne
        Twister state — everything needed for a fresh process to continue
        with the *same draws* (and, with the interface state restored
        alongside, the same §II-B billing).  Constructor configuration
        (trace function, engine options) is not captured: the restoring
        process rebuilds the sampler with the same arguments and loads
        this state on top.  Subclasses with extra per-step state override
        and extend this dict.
        """
        return {
            "current": self._current,
            "steps": self._steps,
            "trace": tuple(self._trace),
            "rng": self._rng.getstate(),
        }

    def load_state(self, state: dict) -> None:
        """Restore position/steps/trace/RNG captured by :meth:`state_dict`.

        The response memo is invalidated; the next ``step()`` re-reads the
        current node from the (restored) cache, which is free.

        Args:
            state: Output of :meth:`state_dict`.
        """
        self._current = state["current"]
        self._steps = int(state["steps"])
        self._trace = [float(x) for x in state["trace"]]
        self._rng.setstate(state["rng"])
        self._current_resp = None
        self._current_seq = None

    # ------------------------------------------------------------------
    # planning support
    # ------------------------------------------------------------------

    #: Scratch RNG reused across predictions (lazily created): seeding a
    #: fresh ``random.Random`` from the OS per call costs more than the
    #: replay itself.
    _replay_rng: Optional[random.Random] = None

    def _replay_rng_clone(self) -> random.Random:
        """A scratch RNG carrying a copy of the live Mersenne state.

        Predictors draw from the clone exactly as the live step would, so
        the replayed path *is* the future path — without consuming any
        live state.
        """
        rng = self._replay_rng
        if rng is None:
            rng = self._replay_rng = random.Random()
        rng.setstate(self._rng.getstate())
        return rng

    def _replay_seq_of(self, cache, node: Node) -> Optional[tuple]:
        """``node``'s stable neighbor tuple as a replay would see it.

        Reads the shared cache, falling back to the step memos when the
        walk's own current node has been evicted from a bounded cache —
        the memo is what the real step will draw from.  Returns ``None``
        for genuinely unknown neighborhoods.
        """
        seq = cache.neighbor_seq(node)
        if seq is None and node == self._current:
            if self._current_seq is not None:
                return self._current_seq
            if self._current_resp is not None:
                return self._current_resp.neighbor_seq
        return seq

    def predict_next_fetch(self, max_steps: int = 64):
        """The node this walk will *fetch* next, or ``None`` if unknown.

        Engines whose per-step randomness can be replayed against cached
        neighborhoods override this to clone their RNG
        (:meth:`_replay_rng_clone`) and walk forward through known
        territory until the first uncached node — the fetch a
        history-aware planner can issue early, into an open burst's
        spare slot.  All four walk engines now implement the protocol:
        SRW replays its uniform draw, MHRW replays the
        proposal-then-accept pair over cached degrees, NBRW threads the
        simulated predecessor through the exclusion filter, and MTO
        replays the overlay draw / removal / replacement branches against
        G* (returning ``None`` at the first branch that would mutate the
        overlay or depends on an unknown neighborhood).  The prediction
        must consume **no** live RNG state and issue **no** queries.
        The default answers ``None``: unpredictable engines simply get
        no prefetch.

        Args:
            max_steps: Simulation horizon — how far through cached
                territory to look before giving up.
        """
        return None

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def run(
        self,
        num_samples: int,
        monitor: Optional[ConvergenceMonitor] = None,
        thinning: int = 1,
        check_every: int = 25,
        max_steps: int = 1_000_000,
    ) -> SamplingRun:
        """Burn in until ``monitor`` fires, then collect weighted samples.

        Args:
            num_samples: Samples to collect after convergence.
            monitor: Convergence monitor; ``None`` skips burn-in entirely
                (samples start immediately — useful for cost-curve
                experiments where the estimate itself reveals convergence).
            thinning: Keep every ``thinning``-th post-burn-in node.
            check_every: Base interval between monitor evaluations; the
                interval grows geometrically with the trace (a check scans
                the whole trace, so fixed-interval checking would cost
                O(steps²) on slow-mixing chains).
            max_steps: Hard step budget; the run returns unconverged
                rather than looping forever.

        Returns:
            The :class:`SamplingRun`.

        Raises:
            ValueError: On non-positive ``num_samples``/``thinning``.
            WalkError: If the walk dead-ends.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if thinning <= 0:
            raise ValueError("thinning must be positive")
        converged = monitor is None
        burn_in_steps = 0
        if monitor is not None:
            monitor.reset()
            next_check = self._steps
            while self._steps < max_steps:
                if self._steps >= next_check:
                    if monitor.converged(self._trace):
                        converged = True
                        break
                    # Geometric back-off keeps total check cost O(n log n).
                    next_check = self._steps + max(check_every, self._steps // 5)
                self.step()
            burn_in_steps = self._steps

        samples: List[WalkSample] = []
        since_last = thinning  # collect the first post-burn-in node
        while len(samples) < num_samples and self._steps < max_steps + num_samples * thinning:
            if since_last >= thinning:
                samples.append(
                    WalkSample(
                        node=self._current,
                        weight=self.weight(self._current),
                        query_cost=self._api.query_cost,
                        step=self._steps,
                    )
                )
                since_last = 0
                if len(samples) >= num_samples:
                    break
            self.step()
            since_last += 1
        return SamplingRun(
            samples=samples,
            burn_in_steps=burn_in_steps,
            total_steps=self._steps,
            query_cost=self._api.query_cost,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _pick_uniform(self, items: Sequence[Node]) -> Node:
        if not items:
            raise DeadEndError(self._current)
        return items[self._rng.randrange(len(items))]

    def _query(self, node: Node) -> QueryResponse:
        return self._api.query(node)

    def _query_current(self) -> QueryResponse:
        """The current node's response, memoized across the step boundary.

        Every step starts by re-reading the node the walk already stands
        on; the memo turns that from a (free but not costless) cache hit
        into a field read.  The memo is validated against ``current`` so
        any committed move refreshes it.
        """
        resp = self._current_resp
        if resp is None or resp.user != self._current:
            resp = self._api.query(self._current)
            self._current_resp = resp
        return resp

    def _current_neighbor_seq(self) -> tuple:
        """The current node's stable neighbor tuple, memoized.

        The fast cached-step lane's opening read: a field access when the
        memo is warm (every committed fast step re-warms it), otherwise
        one re-read through the response memo — exactly what the slow
        path's ``_query_current`` would have cost, so query-log parity
        between the lanes is preserved.
        """
        seq = self._current_seq
        if seq is None:
            seq = self._query_current().neighbor_seq
            self._current_seq = seq
        return seq

    def _draw_accessible(
        self, neighbors: Sequence[Node]
    ) -> Optional[tuple]:
        """Uniformly draw an accessible neighbor and its query response.

        On networks without private users (``api.may_have_private`` is
        false) this is a single O(1) index into the stable neighbor
        sequence — the walk engines' hot path.  Otherwise private users
        (our failure-injection surface — real crawls hit them constantly)
        are redrawn around; the first refusal per user is billed by the
        interface, later ones are cached.

        Returns:
            ``(node, response)`` or ``None`` when every neighbor is
            private.
        """
        if not neighbors:
            return None
        if not self._api.may_have_private:
            candidate = neighbors[self._rng.randrange(len(neighbors))]
            return candidate, self._api.query(candidate)
        pool = [v for v in neighbors if not self._api.is_known_private(v)]
        while pool:
            idx = self._rng.randrange(len(pool))
            candidate = pool.pop(idx)
            try:
                return candidate, self._api.query(candidate)
            except PrivateUserError:
                continue
        return None
