"""Simple random walk — the paper's baseline sampler (Definition 1).

From the current node ``v``, hop to a uniformly random neighbor.  The
stationary distribution is ``π(v) = k_v / 2|E|``, so uniform-target
importance weights are ``1 / k_v``.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.walks.base import RandomWalkSampler

Node = Hashable


class SimpleRandomWalk(RandomWalkSampler):
    """SRW sampler: one query per step, degree-proportional stationary.

    Example:
        >>> from repro.graph import Graph
        >>> from repro.interface import RestrictedSocialAPI
        >>> api = RestrictedSocialAPI(Graph([(0, 1), (1, 2), (2, 0)]))
        >>> walk = SimpleRandomWalk(api, start=0, seed=1)
        >>> walk.step() in (1, 2)
        True
    """

    def step(self) -> Node:
        """Hop to a uniform accessible neighbor of the current node.

        Private neighbors are redrawn around; when the entire
        neighborhood is private the walk holds in place (a
        self-transition) rather than dying.

        On private-free networks with the default degree trace the step
        runs on the fast cached-step lane: one ``randrange`` draw into
        the memoized neighbor tuple plus one :meth:`~repro.interface.api.
        RestrictedSocialAPI.fetch_seq` — same RNG consumption, same query
        log, same billing as the full path, bit for bit.
        """
        if self._uses_default_trace and not self._api.may_have_private:
            seq = self._current_neighbor_seq()
            if not seq:
                self._stay_fast(0)
                return self._current
            nxt = seq[self._rng.randrange(len(seq))]
            nxt_seq = self._api.fetch_seq(nxt)
            self._advance_fast(nxt, len(nxt_seq), seq=nxt_seq)
            return nxt
        resp = self._query_current()
        drawn = self._draw_accessible(resp.neighbor_seq)
        if drawn is None:
            self._stay()
            return self.current
        nxt, nxt_resp = drawn
        self._advance(nxt, nxt_resp)
        return nxt

    def predict_next_fetch(self, max_steps: int = 64) -> Optional[Node]:
        """Replay the walk's RNG through cached territory to its next fetch.

        SRW consumes exactly one ``randrange`` per step on networks
        without private users, so a clone of the Mersenne state walks the
        *actual* future path for free: follow the draws while every
        visited neighborhood is cached, and the first uncached node hit
        is precisely the neighborhood the walk will pay a provider round
        trip for.  The live RNG is untouched and no queries are issued.

        Returns ``None`` when the future path cannot be simulated: the
        network has private users (the redraw loop consumes a
        data-dependent number of draws), the walk is parked on a dead end
        or an evicted neighborhood, or everything within ``max_steps``
        is already known (nothing to prefetch).
        """
        if self._api.may_have_private:
            return None
        cache = self._api.cache
        rng = self._replay_rng_clone()
        cur = self._current
        for _ in range(max_steps):
            seq = self._replay_seq_of(cache, cur)
            if not seq:
                return None
            cur = seq[rng.randrange(len(seq))]
            if not cache.has(cur):
                return cur
        return None

    def weight(self, node: Node) -> float:
        """``1 / k_node`` — corrects the degree-proportional stationary.

        The degree is read from the local cache (the node was just
        visited), so the weight is free.
        """
        degree = self._api.cached_degree(node)
        if degree is None:  # pragma: no cover - visited nodes are cached
            degree = self._query(node).degree
        return 1.0 / degree
