"""Simple random walk — the paper's baseline sampler (Definition 1).

From the current node ``v``, hop to a uniformly random neighbor.  The
stationary distribution is ``π(v) = k_v / 2|E|``, so uniform-target
importance weights are ``1 / k_v``.
"""

from __future__ import annotations

from typing import Hashable

from repro.walks.base import RandomWalkSampler

Node = Hashable


class SimpleRandomWalk(RandomWalkSampler):
    """SRW sampler: one query per step, degree-proportional stationary.

    Example:
        >>> from repro.graph import Graph
        >>> from repro.interface import RestrictedSocialAPI
        >>> api = RestrictedSocialAPI(Graph([(0, 1), (1, 2), (2, 0)]))
        >>> walk = SimpleRandomWalk(api, start=0, seed=1)
        >>> walk.step() in (1, 2)
        True
    """

    def step(self) -> Node:
        """Hop to a uniform accessible neighbor of the current node.

        Private neighbors are redrawn around; when the entire
        neighborhood is private the walk holds in place (a
        self-transition) rather than dying.
        """
        resp = self._query_current()
        drawn = self._draw_accessible(resp.neighbor_seq)
        if drawn is None:
            self._stay()
            return self.current
        nxt, nxt_resp = drawn
        self._advance(nxt, nxt_resp)
        return nxt

    def weight(self, node: Node) -> float:
        """``1 / k_node`` — corrects the degree-proportional stationary.

        The degree is read from the local cache (the node was just
        visited), so the weight is free.
        """
        degree = self._api.cached_degree(node)
        if degree is None:  # pragma: no cover - visited nodes are cached
            degree = self._query(node).degree
        return 1.0 / degree
