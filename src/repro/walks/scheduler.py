"""Event-driven, latency-aware scheduling of many parallel chains.

:class:`~repro.walks.parallel.ParallelWalkers` advances chains in
lock-step rounds: every chain takes one step, then every chain takes the
next.  On a zero-latency in-memory provider that is free, but under real
response latencies one slow or throttled query stalls *every* chain for
the whole round — the group pays the per-round **maximum** latency.  The
follow-up paper "Walk, Not Wait: Faster Sampling Over Online Social
Networks" observes that a crawler should instead keep queries from many
chains in flight and react to whichever response lands first.

:class:`EventDrivenWalkers` is that scheduler on simulated time.  Each
chain is an event source: when its previous response lands (an event at
simulated time ``t``), its next step is dispatched immediately and its
following event is scheduled at ``t`` plus the provider latency that step
incurred.  Chains interleave by *completion time* instead of round index,
so the group's makespan approaches the fastest chains' aggregate rate
rather than the slowest chain's.

Equivalence guarantee: on a zero-latency provider every event carries the
same timestamp and the queue degenerates to FIFO round-robin — the exact
order lock-step uses — so the scheduler reproduces a
``ParallelWalkers.run`` bit-for-bit (same merged sample sequence, same
§II-B billing, same R̂).  The determinism suite asserts this.

Two clocks, deliberately distinct:

* the interface's :class:`~repro.interface.ratelimit.SimulatedClock` stays
  the *serial crawler clock* (rate limiting and billing semantics are
  unchanged over any provider);
* the scheduler's event time redistributes the per-response latencies
  (diffed from :attr:`~repro.interface.api.RestrictedSocialAPI.latency_spent`
  around each step) onto concurrent per-chain timelines;
  :attr:`EventDrivenWalkers.simulated_elapsed` is the resulting makespan.

Batch-aware dispatch (``batching=True``) adds the fleet dimension: over a
:class:`~repro.fleet.provider.ShardedProvider`, dispatches that land on
the same simulated tick and head to the same shard coalesce into one
``query_many``-style burst, billed as a *single* provider round trip —
the maximum latency of the burst, bounded by the shard's batch cap —
and each burst consumes one admission slot of the shard's rate limit
instead of one per fetch.  §II-B unique-query billing is untouched
(every fetch is still billed individually by the interface); only the
concurrent timeline changes.  With batching disabled the code path is
the unbatched one, bit for bit; with a single zero-latency shard the
coalesced timeline degenerates to the unbatched one, so the equivalence
guarantee above carries over to fleets.

History-aware planning (``planner=DispatchPlanner(...)``) adds the
:mod:`repro.planning` layer on top of batch-coalescing dispatch:

* **cache-first stepping** — a chain whose next neighborhood is already
  in history advances at zero simulated latency without occupying an
  admission slot (its step dispatches nothing, so it joins no burst);
* **predictive prefetch** — after a tick's real fetches are settled, the
  planner replays each stepping chain's RNG through cached territory to
  find the neighborhood it will fetch next, and rides that fetch in an
  open burst's spare slots (same admission, §II-B budget spent early);
  a chain that reaches a prefetched node before its round trip landed
  waits out the difference — walk, not wait, but never time travel;
* **adaptive chain lifecycle** — an optional policy retires latency-tail
  chains at collection round floors and spawns warm reserves that burned
  in alongside the group; quotas rebalance deterministically and retired
  chains' merged samples stay where completion order put them.

With no planner every code path above is untouched — the determinism
suite pins the planner-free scheduler to the PR-3/PR-4 behaviour bit for
bit.

The full in-flight state — event queue, per-chain ready times, per-shard
admission horizons, phase, chain roster, planner ledger, and the
partially filled merged sample list — serializes through
``state_dict``/``load_state``, so a
:class:`~repro.interface.session.SamplingSession` can checkpoint a run
mid-flight and a fresh process resumes it bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.convergence.gelman_rubin import GelmanRubinDiagnostic
from repro.core.overlay import shared_overlay_of
from repro.errors import PrivateUserError, SnapshotError, WalkError
from repro.fleet.provider import FetchDispatch, find_fleet
from repro.interface.telemetry import collect_telemetry
from repro.obs.trace import (
    EVENT_ADMISSION_WAIT,
    EVENT_BURST_DISPATCH,
    EVENT_PREFETCH_ISSUE,
    EVENT_PREFETCH_LAND,
    EVENT_SAMPLE,
    EVENT_WALK_STEP,
    TraceEvent,
    TraceRecorder,
)
from repro.planning.lifecycle import (
    ROSTER_ACTIVE,
    ROSTER_RESERVE,
    ROSTER_RETIRED,
    ChainObservation,
)
from repro.planning.planner import DispatchPlanner
from repro.walks.base import RandomWalkSampler, SamplingRun, WalkSample
from repro.walks.results import EventDrivenRun

Node = Hashable

#: Scheduler lifecycle phases (persisted in snapshots).
PHASE_FRESH = "fresh"
PHASE_BURNIN = "burnin"
PHASE_COLLECT = "collect"
PHASE_DONE = "done"


class EventDrivenWalkers:
    """Drive several samplers over one interface by response-completion time.

    Args:
        samplers: Two or more walkers constructed over the *same*
            ``RestrictedSocialAPI`` (checked), typically from different
            start nodes.  Shared-overlay MTO chains are supported: the
            common overlay is auto-detected and exposed via
            :attr:`overlay` so one session snapshot covers the group.
        max_lead: During burn-in, the most rounds any chain may run ahead
            of the slowest one.  Burn-in needs loosely comparable trace
            lengths for R̂ (a chain arbitrarily far ahead wastes budget if
            convergence fires early); collection has no such bound —
            interleaving by completion is the point.
        batching: Enable batch-coalescing dispatch.  Requires the shared
            interface to sit on a provider stack containing a
            :class:`~repro.fleet.provider.ShardedProvider`: events that
            pop on the same simulated tick and fetch from the same shard
            are dispatched as one burst (up to the shard's batch cap)
            billed a single round-trip latency — the burst maximum — and
            one admission slot.  §II-B billing is identical either way.
        batch_window: Simulated seconds the dispatcher may *hold* a ready
            chain so later-completing chains can join its tick: events
            within ``batch_window`` of the earliest queued event form one
            tick, dispatched together at the group's latest ready time.
            The classic coalescing trade — a small delay per dispatch
            buys much larger bursts on saturated shards.  ``0.0`` (the
            default) coalesces only exact ties, which preserves the
            zero-latency equivalence guarantee trivially (every event
            sits at the same timestamp, so the window adds nothing).
            Requires ``batching``.
        planner: Optional :class:`~repro.planning.DispatchPlanner`
            enabling history-aware dispatch: cache-first stepping
            accounting, predictive prefetch into open bursts' spare
            slots, and (when the planner carries a policy) adaptive
            chain spawn/retire.  Requires ``batching`` — prefetch rides
            coalesced round trips.  The planner must be freshly
            constructed (it holds per-run state).

    Raises:
        WalkError: With fewer than two samplers, mismatched interfaces,
            a non-positive ``max_lead``, a negative ``batch_window`` (or
            one without ``batching``), ``batching`` over an interface
            whose provider stack has no fleet, or a ``planner`` without
            ``batching``.

    Example:
        >>> from repro.datasets import load
        >>> from repro.walks import SimpleRandomWalk
        >>> net = load("epinions_like", seed=0, scale=0.1)
        >>> api = net.interface(latency_distribution="heavy_tailed")
        >>> walkers = EventDrivenWalkers([
        ...     SimpleRandomWalk(api, start=net.seed_node(i), seed=i)
        ...     for i in range(3)
        ... ])
        >>> result = walkers.run(num_samples=30)
        >>> len(result.samples)
        30
    """

    def __init__(
        self,
        samplers: Sequence[RandomWalkSampler],
        max_lead: int = 64,
        batching: bool = False,
        batch_window: float = 0.0,
        planner: Optional[DispatchPlanner] = None,
    ) -> None:
        if len(samplers) < 2:
            raise WalkError("event-driven walking needs at least two samplers")
        api = samplers[0].api
        if any(s.api is not api for s in samplers):
            raise WalkError("all samplers must share one interface")
        if max_lead < 1:
            raise WalkError("max_lead must be positive")
        self._samplers = list(samplers)
        self._api = api
        self._max_lead = int(max_lead)
        self._overlay = shared_overlay_of(samplers)
        # Chains whose overlay another chain also writes must never
        # predict: the event interleaving can land a sharer's rewire
        # between a replay and the predicted fetch, invalidating it (see
        # MTOSampler.predict_next_fetch).  Private overlays are safe —
        # only the owning chain writes them, and its own steps are
        # exactly what the replay simulates.
        overlay_writers: dict = {}
        for s in self._samplers:
            ov = getattr(s, "overlay", None)
            if ov is not None:
                overlay_writers[id(ov)] = overlay_writers.get(id(ov), 0) + 1
        self._predict_ok = [
            getattr(s, "overlay", None) is None
            or overlay_writers[id(s.overlay)] == 1
            for s in self._samplers
        ]
        self._fleet = None
        if batch_window < 0:
            raise WalkError("batch_window must be non-negative")
        if batch_window > 0 and not batching:
            raise WalkError("batch_window only applies to batch-coalescing dispatch")
        self._batch_window = float(batch_window)
        if batching:
            self._fleet = find_fleet(api.provider)
            if self._fleet is None:
                raise WalkError(
                    "batch-coalescing dispatch needs a ShardedProvider in the "
                    "interface's provider stack (see repro.fleet)"
                )
        num_shards = self._fleet.num_shards if self._fleet else 0
        self._next_free = [0.0] * num_shards
        # Per shard: the open (not yet departed) burst as [start, max
        # member latency, member count], or None — the in-flight batch
        # state later dispatches coalesce into.
        self._open_bursts: List[Optional[List[float]]] = [None] * num_shards

        k = len(self._samplers)
        self._planner = planner
        if planner is not None:
            if self._fleet is None:
                raise WalkError(
                    "a dispatch planner needs batch-coalescing dispatch "
                    "(batching=True over a provider fleet; see repro.planning)"
                )
            planner.bind(self._api, self._fleet)
        # Chain roster and per-chain observation books.  Without a policy
        # every chain is active for the whole run and the books are pure
        # bookkeeping; with one, the roster drives collection scheduling.
        policy = planner.policy if planner is not None else None
        self._roster: List[str] = (
            policy.initial_roster(k) if policy is not None else [ROSTER_ACTIVE] * k
        )
        self._collect_steps = [0] * k
        self._timed_steps = [0] * k
        self._chain_latency = [0.0] * k
        self._next_review = 0
        self._collected = [0] * k
        self._quota = 0
        self._thinning = 1
        self._phase = PHASE_FRESH
        # (ready_time, seq, chain): seq is a global dispatch counter so
        # equal-time events pop FIFO — at zero latency that *is* the
        # lock-step round-robin order.
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._ready = [0.0] * k
        self._sim_time = 0.0
        self._since = [0] * k
        self._burn_rounds = [0] * k
        self._parked: Set[int] = set()
        self._next_check = 0
        self._r_hat: Optional[float] = None
        self._converged = False
        self._merged: List[WalkSample] = []
        self._merged_chain: List[int] = []
        self._events = 0
        self._checkpoint_fn = None
        self._checkpoint_every = 0
        self._recorder: Optional[TraceRecorder] = None
        self._obs_tenant: Optional[str] = None
        self._watcher = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def chains(self) -> Sequence[RandomWalkSampler]:
        """The managed samplers."""
        return tuple(self._samplers)

    @property
    def query_cost(self) -> int:
        """Billed queries of the shared interface."""
        return self._api.query_cost

    @property
    def overlay(self):
        """The overlay all chains share, or ``None`` (auto-detected)."""
        return self._overlay

    @property
    def simulated_elapsed(self) -> float:
        """Event-time makespan so far (concurrent, not serial, latency)."""
        return self._sim_time

    @property
    def events_processed(self) -> int:
        """Dispatched chain actions so far."""
        return self._events

    @property
    def phase(self) -> str:
        """Current lifecycle phase (``fresh``/``burnin``/``collect``/``done``)."""
        return self._phase

    @property
    def batching(self) -> bool:
        """Whether batch-coalescing dispatch is enabled."""
        return self._fleet is not None

    @property
    def fleet(self):
        """The dispatch fleet when batching, else ``None``."""
        return self._fleet

    @property
    def planner(self):
        """The attached dispatch planner, or ``None``."""
        return self._planner

    @property
    def chain_steps(self) -> Tuple[int, ...]:
        """Per-chain committed step counts, in chain order."""
        return tuple(s.steps for s in self._samplers)

    @property
    def roster(self) -> Tuple[str, ...]:
        """Per-chain roster states (all ``active`` without a policy)."""
        return tuple(self._roster)

    def planning_summary(self) -> Optional[dict]:
        """Planner accounting + roster, or ``None`` without a planner."""
        if self._planner is None:
            return None
        summary = self._planner.summary()
        summary.update(
            {
                "roster": tuple(self._roster),
                "active_chains": sum(1 for r in self._roster if r == ROSTER_ACTIVE),
                "retired_chains": tuple(
                    i for i, r in enumerate(self._roster) if r == ROSTER_RETIRED
                ),
                "reserve_chains": tuple(
                    i for i, r in enumerate(self._roster) if r == ROSTER_RESERVE
                ),
                "chain_collect_steps": tuple(self._collect_steps),
            }
        )
        return summary

    # ------------------------------------------------------------------
    # observability (zero-cost when no recorder is attached)
    # ------------------------------------------------------------------
    @property
    def recorder(self) -> Optional[TraceRecorder]:
        """The attached trace recorder, or ``None`` (the default)."""
        return self._recorder

    def set_recorder(self, recorder: Optional[TraceRecorder], tenant=None) -> None:
        """Attach (or with ``None`` detach) a trace recorder.

        The scheduler stamps its ``walk_step``/``sample``/
        ``burst_dispatch``/``prefetch_*``/``admission_wait`` spans on
        *event time* (the concurrent makespan clock), streams R̂ and
        per-shard in-flight depth into the recorder's metrics, and never
        perturbs the run: every hook is a guarded no-op branch when
        detached, and a pure observation when attached.

        Args:
            recorder: The sink, or ``None`` to detach.
            tenant: Optional tenant label stamped on every event this
                scheduler emits.  Multi-tenant services share one
                recorder across schedulers whose chains are all numbered
                ``0..k-1``; the label is what keeps their causal
                timelines separable.
        """
        self._recorder = recorder
        self._obs_tenant = None if tenant is None else str(tenant)

    def set_watcher(self, watcher) -> None:
        """Attach (or with ``None`` detach) a live SLO watcher.

        The watcher is polled at every commit point (event/tick), on the
        simulated clock — after the tick's state has fully settled, so a
        breach event's timestamp is the first commit at which the
        condition held.  Polling reads metrics and appends breach events
        only; it never touches walk state, so watched runs stay
        bit-for-bit identical in samples and billing.
        """
        self._watcher = watcher

    def _record_step(self, chain: int, when: float, latency: float):
        """Record one committed walk step (caller guards the recorder)."""
        sampler = self._samplers[chain]
        event = self._recorder.record(
            EVENT_WALK_STEP,
            when,
            latency,
            chain=chain,
            engine=type(sampler).__name__,
            node=sampler.current,
        )
        if self._obs_tenant is not None:
            event.attrs["tenant"] = self._obs_tenant
        return event

    def _record_sample(self, chain: int, when: float) -> None:
        """Record one merged sample (caller guards the recorder).

        Samples read local chain state — they cost no queries and no
        simulated time — but they are *actions* on the causal timeline:
        the critical path of a run ends at its last committed action,
        which is usually a sample, not a step.
        """
        event = self._recorder.record(
            EVENT_SAMPLE,
            when,
            chain=chain,
            node=self._samplers[chain].current,
        )
        if self._obs_tenant is not None:
            event.attrs["tenant"] = self._obs_tenant

    # ------------------------------------------------------------------
    # event-queue plumbing
    # ------------------------------------------------------------------
    def _push(self, chain: int, when: float) -> None:
        heapq.heappush(self._heap, (when, self._seq, chain))
        self._seq += 1

    def _timed_step(self, chain: int) -> float:
        """Step one chain; returns the provider latency its step incurred."""
        before = self._api.latency_spent
        self._samplers[chain].step()
        return self._api.latency_spent - before

    def _event_committed(self) -> None:
        """One action landed; the state is a clean resumable cut."""
        self._events += 1
        if self._watcher is not None:
            self._watcher.poll(self._sim_time)
        if self._checkpoint_fn is not None and self._events % self._checkpoint_every == 0:
            self._checkpoint_fn(self)

    # ------------------------------------------------------------------
    # checkpoint hook
    # ------------------------------------------------------------------
    def set_checkpoint(self, fn, every: int) -> None:
        """Invoke ``fn(self)`` after every ``every``-th processed event.

        Events are the scheduler's commit points: the dispatched action
        has landed and the queue already holds the chain's next event, so
        the captured state (including the in-flight queue) resumes
        bit-for-bit.

        Args:
            fn: Callback receiving this :class:`EventDrivenWalkers`.
            every: Positive event period.

        Raises:
            ValueError: If ``every`` is not positive.
        """
        if every < 1:
            raise ValueError("checkpoint period must be positive")
        self._checkpoint_fn = fn
        self._checkpoint_every = every

    def clear_checkpoint(self) -> None:
        """Remove any installed checkpoint hook."""
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable scheduler state, in-flight event queue included.

        Captures every chain's walk state plus the event-loop bookkeeping:
        queue entries and the dispatch counter (the FIFO tie-break *is*
        the determinism), per-chain ready times and thinning counters,
        phase, burn-in progress, R̂, and the partially filled merged
        sample list (via the registered ``WalkSample`` codec).  The shared
        interface and overlay are snapshotted once by
        :class:`~repro.interface.session.SamplingSession`, not here.
        """
        return {
            "chains": [s.state_dict() for s in self._samplers],
            "phase": self._phase,
            "heap": [tuple(entry) for entry in self._heap],
            "next_seq": self._seq,
            "ready": tuple(self._ready),
            "sim_time": self._sim_time,
            "since": tuple(self._since),
            "burn_rounds": tuple(self._burn_rounds),
            "parked": tuple(sorted(self._parked)),
            "next_check": self._next_check,
            "r_hat": self._r_hat,
            "converged": self._converged,
            "merged": tuple(self._merged),
            "merged_chain": tuple(self._merged_chain),
            "events": self._events,
            "next_free": tuple(self._next_free),
            "open_bursts": tuple(
                None if burst is None else tuple(burst) for burst in self._open_bursts
            ),
            "roster": tuple(self._roster),
            "collect_steps": tuple(self._collect_steps),
            "timed_steps": tuple(self._timed_steps),
            "chain_latency": tuple(self._chain_latency),
            "next_review": self._next_review,
            "planner": None if self._planner is None else self._planner.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a captured scheduler state.

        Args:
            state: Output of :meth:`state_dict`.

        Raises:
            SnapshotError: If the chain count differs from this group's.
        """
        chains = state["chains"]
        if len(chains) != len(self._samplers):
            raise SnapshotError(
                f"snapshot holds {len(chains)} chains; this group has {len(self._samplers)}"
            )
        for sampler, chain_state in zip(self._samplers, chains):
            sampler.load_state(chain_state)
        self._phase = str(state["phase"])
        self._heap = [tuple(entry) for entry in state["heap"]]
        heapq.heapify(self._heap)
        self._seq = int(state["next_seq"])
        self._ready = [float(t) for t in state["ready"]]
        self._sim_time = float(state["sim_time"])
        self._since = [int(c) for c in state["since"]]
        self._burn_rounds = [int(r) for r in state["burn_rounds"]]
        self._parked = set(state["parked"])
        self._next_check = int(state["next_check"])
        self._r_hat = None if state["r_hat"] is None else float(state["r_hat"])
        self._converged = bool(state["converged"])
        self._merged = list(state["merged"])
        self._merged_chain = [int(i) for i in state["merged_chain"]]
        self._events = int(state["events"])
        # Absent from snapshots written before batch-aware dispatch; a
        # fleet that has admitted nothing has an all-zero horizon.
        next_free = state.get("next_free", ())
        if self._fleet is not None:
            if len(next_free) not in (0, self._fleet.num_shards):
                raise SnapshotError(
                    f"snapshot tracks {len(next_free)} shard admission horizons; "
                    f"this fleet has {self._fleet.num_shards} shards"
                )
            restored = [float(t) for t in next_free]
            self._next_free = restored or [0.0] * self._fleet.num_shards
        else:
            self._next_free = [float(t) for t in next_free]
        open_bursts = state.get("open_bursts", ())
        self._open_bursts = [
            None if burst is None else [float(x) for x in burst] for burst in open_bursts
        ]
        if self._fleet is not None and not self._open_bursts:
            self._open_bursts = [None] * self._fleet.num_shards
        if self._fleet is not None and len(self._open_bursts) != self._fleet.num_shards:
            raise SnapshotError(
                f"snapshot tracks {len(self._open_bursts)} open bursts; "
                f"this fleet has {self._fleet.num_shards} shards"
            )
        # Planning keys joined the payload with the planning layer; absent
        # in earlier snapshots (which could not have planned anything).
        k = len(self._samplers)
        self._roster = list(state.get("roster", (ROSTER_ACTIVE,) * k))
        if len(self._roster) != k:
            raise SnapshotError(
                f"snapshot tracks a roster of {len(self._roster)} chains; "
                f"this group has {k}"
            )
        self._collect_steps = [int(c) for c in state.get("collect_steps", (0,) * k)]
        self._timed_steps = [int(c) for c in state.get("timed_steps", (0,) * k)]
        self._chain_latency = [float(x) for x in state.get("chain_latency", (0.0,) * k)]
        self._next_review = int(state.get("next_review", 0))
        planner_state = state.get("planner")
        if self._planner is not None:
            if planner_state is None:
                raise SnapshotError(
                    "snapshot was captured without a dispatch planner; "
                    "resume with an identically configured scheduler"
                )
            self._planner.load_state(planner_state)
        elif planner_state is not None:
            raise SnapshotError(
                "snapshot carries dispatch-planner state; attach the same "
                "planner configuration before resuming"
            )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(
        self,
        num_samples: int,
        monitor: Optional[GelmanRubinDiagnostic] = None,
        thinning: int = 1,
        check_every: int = 25,
        max_steps: int = 250_000,
        executor=None,
    ) -> EventDrivenRun:
        """Burn in until R̂ converges, then collect by completion time.

        Semantics match :meth:`ParallelWalkers.run
        <repro.walks.parallel.ParallelWalkers.run>` (and reproduce it
        bit-for-bit on zero-latency providers); the difference is purely
        *when* each chain acts: as soon as its previous response lands,
        never at a round barrier.

        Re-entrant after a checkpoint restore: a scheduler whose state was
        loaded mid-flight continues from the restored phase when ``run``
        is called again with the same arguments.

        Args:
            num_samples: Total samples across all chains.
            monitor: Multi-chain diagnostic; ``None`` skips burn-in.
            thinning: Per-chain spacing between collected samples.
            check_every: Burn-in rounds between R̂ evaluations (grows
                geometrically, like the lock-step driver).
            max_steps: Per-chain step budget for the burn-in phase.
            executor: Optional
                :class:`~repro.walks.executor.MultiprocessChainExecutor`.
                At zero provider latency this scheduler's collection loop
                *is* lock-step round-robin (see :meth:`_run_collect`), so
                its ``thinning``-round step blocks can run in worker
                processes with queries replayed here for identical
                billing.  Executor runs require a fresh scheduler (no
                mid-flight restore), no fleet, no planner, and no
                checkpoint hook; burn-in stays serial.

        Raises:
            ValueError: On non-positive ``num_samples``/``thinning``.
            WalkError: If ``executor`` is given but this scheduler's
                configuration violates its equivalence restrictions.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if thinning <= 0:
            raise ValueError("thinning must be positive")
        if executor is not None:
            executor.check_compatible(self._samplers, self._api)
            if self._phase != PHASE_FRESH:
                raise WalkError(
                    "a multiprocess executor needs a fresh scheduler: restored "
                    "mid-flight state may not sit on a round boundary"
                )
            if self._fleet is not None or self._planner is not None:
                raise WalkError(
                    "multiprocess execution composes with neither fleet dispatch "
                    "nor an adaptive planner; build the scheduler without them"
                )
            if self._checkpoint_fn is not None:
                raise WalkError(
                    "event checkpoints cannot fire inside executor step blocks; "
                    "clear_checkpoint() before running with an executor"
                )
        if self._fleet is not None:
            # Tracing is scoped to the run so an api outliving this
            # scheduler never accumulates an undrained dispatch log.
            self._fleet.trace_dispatches(True)
        if self._phase == PHASE_FRESH:
            if monitor is not None:
                self._phase = PHASE_BURNIN
                for i in range(len(self._samplers)):
                    self._push(i, self._ready[i])
            else:
                self._begin_collect(thinning)
        if self._phase == PHASE_BURNIN:
            if monitor is None:
                raise WalkError(
                    "this scheduler is mid-burn-in (e.g. restored from a checkpoint); "
                    "run() needs the same monitor the original run used"
                )
            if self._fleet is not None:
                self._run_burnin_batched(monitor, check_every, max_steps)
            else:
                self._run_burnin(monitor, check_every, max_steps)
            self._begin_collect(thinning)
        if self._phase == PHASE_COLLECT:
            if executor is not None:
                self._run_collect_executor(num_samples, thinning, executor)
            elif self._fleet is not None:
                self._run_collect_batched(num_samples, thinning)
            else:
                self._run_collect(num_samples, thinning)
            self._phase = PHASE_DONE
        if self._fleet is not None:
            self._fleet.trace_dispatches(False)
        return self._result(monitor)

    def _run_burnin(
        self, monitor: GelmanRubinDiagnostic, check_every: int, max_steps: int
    ) -> None:
        while True:
            rounds = min(self._burn_rounds)
            if rounds >= max_steps:
                self._r_hat = monitor.r_hat([s.trace for s in self._samplers])
                self._converged = False
                return
            if rounds >= self._next_check:
                traces = [s.trace for s in self._samplers]
                if monitor.converged(traces):
                    self._r_hat = monitor.r_hat(traces)
                    self._converged = True
                    if self._recorder is not None:
                        self._recorder.metrics.series("walk.r_hat").observe(
                            self._sim_time, self._r_hat
                        )
                    return
                if self._recorder is not None:
                    self._recorder.metrics.series("walk.r_hat").observe(
                        self._sim_time, monitor.r_hat(traces)
                    )
                self._next_check = rounds + max(check_every, rounds // 5)
            when, _seq, chain = heapq.heappop(self._heap)
            self._sim_time = max(self._sim_time, when)
            latency = self._timed_step(chain)
            if self._recorder is not None:
                self._record_step(chain, when, latency)
            self._burn_rounds[chain] += 1
            self._ready[chain] = when + latency
            floor = min(self._burn_rounds)
            if self._burn_rounds[chain] - floor >= self._max_lead:
                self._parked.add(chain)
            else:
                self._push(chain, self._ready[chain])
            if floor > rounds and self._parked:
                # The slowest chain advanced: release parked chains whose
                # lead dropped back under the bound (index order keeps the
                # queue deterministic).
                for idx in sorted(self._parked):
                    if self._burn_rounds[idx] - floor < self._max_lead:
                        self._parked.discard(idx)
                        self._push(idx, self._ready[idx])
            self._event_committed()

    def _begin_collect(self, thinning: int) -> None:
        """Switch to collection: discard burn-in events, re-seed the queue.

        With an adaptive policy only active-roster chains are queued;
        reserves stay warm (burned in, positioned, not scheduled) until
        a review spawns them.  The policy's R̂ trigger may activate
        reserves right here — an unconverged burn-in means more chains
        to average over.
        """
        self._phase = PHASE_COLLECT
        self._heap = []
        self._parked = set()
        self._since = [thinning] * len(self._samplers)
        policy = self._planner.policy if self._planner is not None else None
        if policy is not None:
            reserves = [i for i, r in enumerate(self._roster) if r == ROSTER_RESERVE]
            for chain in reserves[: policy.collect_spawn_count(len(reserves), self._r_hat)]:
                self._roster[chain] = ROSTER_ACTIVE
        for i in range(len(self._samplers)):
            if self._roster[i] == ROSTER_ACTIVE:
                self._push(i, self._ready[i])

    def _run_collect(self, num_samples: int, thinning: int) -> None:
        # Per-chain quota: no chain contributes more than its fair share.
        # At zero latency the quota binds exactly when the global one does
        # (round-robin fills all chains evenly), so lock-step equivalence
        # is untouched; under heterogeneous latency it stops fast chains
        # from crowding out slow ones — every chain does the same work as
        # in a lock-step run, which is what makes query cost comparable
        # at equal sample counts.
        quota = -(-num_samples // len(self._samplers))  # ceil division
        collected = [0] * len(self._samplers)
        for chain in self._merged_chain:
            collected[chain] += 1
        while len(self._merged) < num_samples:
            when, _seq, chain = heapq.heappop(self._heap)
            self._sim_time = max(self._sim_time, when)
            sampler = self._samplers[chain]
            if self._since[chain] >= thinning:
                sample = WalkSample(
                    node=sampler.current,
                    weight=sampler.weight(sampler.current),
                    query_cost=self._api.query_cost,
                    step=sampler.steps,
                )
                self._merged.append(sample)
                self._merged_chain.append(chain)
                collected[chain] += 1
                self._since[chain] = 0
                self._ready[chain] = when  # collection reads local state: free
                if self._recorder is not None:
                    self._record_sample(chain, when)
                if collected[chain] >= quota:
                    # Fair share delivered: the chain leaves the queue.
                    self._event_committed()
                    continue
            else:
                latency = self._timed_step(chain)
                if self._recorder is not None:
                    self._record_step(chain, when, latency)
                self._since[chain] += 1
                self._ready[chain] = when + latency
            self._push(chain, self._ready[chain])
            self._event_committed()

    def _run_collect_executor(self, num_samples: int, thinning: int, executor) -> None:
        """Collection via worker-process step blocks (zero-latency only).

        At zero latency the event loop above degenerates to lock-step
        round-robin with uniform ``_since`` counters — rounds are all-
        sample or all-step, and the per-chain quota binds only in the
        final sample round, where the global quota ends collection anyway
        (a sample round adds at most ``k`` samples and ``num_samples <=
        quota * k``).  Collection therefore decomposes into sample rounds
        separated by ``thinning``-round step blocks, which the executor
        runs out-of-process, replaying each block's logical queries here
        so the §II-B log and every sample's ``query_cost`` match the
        serial event loop exactly.  The event counter advances one commit
        per chain action, same as the serial loop.
        """
        while len(self._merged) < num_samples:
            for chain, sampler in enumerate(self._samplers):
                if len(self._merged) >= num_samples:
                    break
                sample = WalkSample(
                    node=sampler.current,
                    weight=sampler.weight(sampler.current),
                    query_cost=self._api.query_cost,
                    step=sampler.steps,
                )
                self._merged.append(sample)
                self._merged_chain.append(chain)
                self._since[chain] = 0
                if self._recorder is not None:
                    self._record_sample(chain, self._sim_time)
                self._event_committed()
            if len(self._merged) >= num_samples:
                break
            executor.step_rounds(self._samplers, self._api, thinning)
            for chain in range(len(self._samplers)):
                self._since[chain] += thinning
                for _ in range(thinning):
                    self._event_committed()

    # ------------------------------------------------------------------
    # the batch-coalescing event loop (fleet dispatch)
    # ------------------------------------------------------------------
    # The batched loops mirror the unbatched ones action for action; what
    # changes is granularity.  Events are popped a *tick* at a time (all
    # queue entries sharing the earliest timestamp, in FIFO order), every
    # popped chain acts exactly as in the unbatched loop, and only then
    # are the tick's provider fetches settled: dispatches to one shard
    # coalesce into bursts of at most the shard's batch cap, each burst
    # costs one admission slot plus its members' *maximum* latency, and
    # each chain becomes ready when its burst completes.  On a fleet
    # whose every latency is zero a tick is one lock-step round, every
    # burst completes instantly, and the dispatch order reduces to the
    # unbatched FIFO round-robin — the equivalence the determinism suite
    # asserts.

    def _pop_tick(self) -> List[Tuple[float, int, int]]:
        """Pop one tick: the earliest event plus everything within the window.

        With ``batch_window == 0`` that is exactly the set of events tied
        at the earliest timestamp, in FIFO order; a positive window also
        sweeps in events up to that much later — the dispatcher holds the
        early chains so the group departs together.  The tick's dispatch
        time is the *latest* member's ready time (``group[-1][0]``; heap
        pops are time-ordered).
        """
        group = [heapq.heappop(self._heap)]
        horizon = group[0][0] + self._batch_window
        while self._heap and self._heap[0][0] <= horizon:
            group.append(heapq.heappop(self._heap))
        return group

    def _settle_tick(
        self, when: float, fetches: List[Tuple[int, Tuple[FetchDispatch, ...]]]
    ) -> Dict[int, List[Tuple[int, List[float], bool]]]:
        """Coalesce one tick's dispatches into bursts; set chain ready times.

        Every shard keeps at most one *open* burst: a round trip that has
        claimed an admission slot (``start = max(dispatch time, shard
        admission horizon)``) but whose admission time has not yet passed.
        A dispatch joins the open burst while there is room under the
        shard's batch cap — this is what packs a backlogged shard: chains
        arriving over many ticks all ride the next admission instead of
        each consuming a slot — and otherwise opens the next burst, pushing
        the admission horizon by the shard's interval.  A chain becomes
        ready when its burst's round trip lands: the burst's admission
        time plus the largest member latency as of this tick (later
        joiners may stretch the round trip further, but never retroactively
        delay chains already committed).  A chain whose step issued several
        fetches (e.g. a redraw around a refusal) fires them concurrently
        and becomes ready when the last of its bursts lands.

        Returns:
            Chain -> ``(shard, burst, opened)`` entries for every burst
            the chain rides this tick (live burst references — later
            joiners and prefetches mutate them).  The causal profiler's
            step annotation reads the references *before* prefetch
            planning, so the captured latencies are exactly the ones the
            ready times were computed from.
        """
        fleet = self._fleet
        recorder = self._recorder
        tenant = self._obs_tenant
        # chain -> (shard, burst ref, opened-by-this-chain) joins
        joined: Dict[int, List[Tuple[int, List[float], bool]]] = {}
        for chain, dispatches in fetches:
            self._ready[chain] = when
            for dispatch in dispatches:
                shard = dispatch.shard
                burst = self._open_bursts[shard]
                opened = (
                    burst is None
                    or burst[0] < when  # already departed
                    or int(burst[2]) >= fleet.batch_cap(shard)
                )
                if opened:
                    start = max(when, self._next_free[shard])
                    self._next_free[shard] = start + fleet.admission_interval(shard)
                    burst = [start, dispatch.latency, 1.0]
                    self._open_bursts[shard] = burst
                    fleet.record_burst(shard, 1)
                    if recorder is not None:
                        if start > when:
                            attrs = {"chain": chain, "shard": shard}
                            if tenant is not None:
                                attrs["tenant"] = tenant
                            recorder.record(
                                EVENT_ADMISSION_WAIT, when, start - when, **attrs
                            )
                        attrs = {"shard": shard, "chain": chain}
                        if tenant is not None:
                            attrs["tenant"] = tenant
                        recorder.record(
                            EVENT_BURST_DISPATCH, start, dispatch.latency, **attrs
                        )
                else:
                    burst[1] = max(burst[1], dispatch.latency)
                    burst[2] += 1.0
                    fleet.record_burst_depth(shard, int(burst[2]))
                if recorder is not None:
                    recorder.metrics.series(f"shard.{shard}.in_flight").observe(
                        when, burst[2]
                    )
                joined.setdefault(chain, []).append((shard, burst, opened))
        if recorder is not None:
            recorder.metrics.gauge("walk.queue_depth").set(float(len(self._heap)))
        for chain, entries in joined.items():  # insertion order: deterministic
            done = max(burst[0] + burst[1] for _shard, burst, _opened in entries)
            if done > self._ready[chain]:
                self._ready[chain] = done
        return joined

    def _annotate_tick(self, step_events, joined) -> None:
        """Stamp settle outcomes onto this tick's ``walk_step`` events.

        Called after burst settling and prefetch waits but *before*
        prefetch planning (which mutates the open bursts in place): the
        captured per-burst ``(shard, start, latency, opened)`` tuples and
        the final ``ready`` time are exactly the operands the loop's own
        ready-time computation used, so the causal profiler can replay
        the attribution bit-for-bit from the trace alone.
        """
        for chain, event in step_events.items():
            entries = joined.get(chain)
            if entries:
                event.attrs["bursts"] = tuple(
                    (shard, burst[0], burst[1], opened)
                    for shard, burst, opened in entries
                )
            event.attrs["ready"] = self._ready[chain]

    def _tick_committed(self, events_in_tick: int) -> None:
        """Commit a whole tick; checkpoints fire only at tick boundaries.

        Mid-tick the popped-but-unsettled dispatches are not yet back in
        the queue, so a snapshot there would not be a resumable cut; the
        period is therefore honoured at the first boundary that crosses
        it.
        """
        before = self._events
        self._events += events_in_tick
        if self._watcher is not None:
            self._watcher.poll(self._sim_time)
        if (
            self._checkpoint_fn is not None
            and self._checkpoint_every > 0
            and self._events // self._checkpoint_every > before // self._checkpoint_every
        ):
            self._checkpoint_fn(self)

    # ------------------------------------------------------------------
    # the planning hooks (all of them no-ops without a planner)
    # ------------------------------------------------------------------
    def _observe_step(self, chain: int, dispatches: Tuple[FetchDispatch, ...]):
        """Book one stepped action: latency observation + planner stats.

        Returns:
            The land time of a consumed prefetch when the planner has one
            pending for the node the step reached, else ``None``.  The
            loops apply it *after* burst settling: a chain that walks
            onto a prefetched node before its round trip completed waits
            out the difference (prefetch responses are not available
            before they land).
        """
        self._timed_steps[chain] += 1
        self._chain_latency[chain] += sum(d.latency for d in dispatches)
        if self._planner is None:
            return None
        return self._planner.note_step(
            chain, self._samplers[chain].current, free=not dispatches
        )

    def _apply_prefetch_waits(self, waits: List[Tuple[int, float]]) -> None:
        """Delay chains that outran their prefetched responses.

        Applied after burst settling (which resets ready times) so the
        delay survives: a chain that stepped onto a prefetched node whose
        round trip lands later becomes ready only when it does.
        """
        for chain, lands_at in waits:
            if lands_at > self._ready[chain]:
                self._ready[chain] = lands_at

    def _remaining_steps(self, chain: int) -> int:
        """Stepped actions this chain will still take before its quota fills.

        The prefetch horizon: a prediction past this bound would fetch a
        neighborhood the chain can never walk to (it leaves the queue at
        its quota), turning budget-spent-early into budget wasted.
        """
        need = self._quota - self._collected[chain]
        if need <= 0:
            return 0
        return (self._thinning - self._since[chain]) + (need - 1) * self._thinning

    def _plan_prefetches(
        self, when: float, fetches: List[Tuple[int, Tuple[FetchDispatch, ...]]]
    ) -> None:
        """Fill open bursts' spare slots with the chains' predicted fetches.

        For every chain that stepped this tick (FIFO order — the
        determinism), the planner replays the chain's RNG through cached
        territory to the neighborhood it will fetch next; if that user's
        shard has an open (not yet departed) round trip with headroom
        under its batch cap, the fetch is issued *now* and rides the
        existing admission slot.  Each success extends the simulated
        walk-ahead (the fetched response joins history, so the next
        replay walks through it), up to the planner's lookahead and —
        during collection — the chain's remaining step budget.  The
        issuing chain does not wait here; it pays only if it reaches a
        prefetched node before that node's round trip landed (the
        consumption hook applies the land time), so the plan stays
        honest about when responses become available.
        """
        planner = self._planner
        for chain, _dispatches in fetches:
            if self._roster[chain] != ROSTER_ACTIVE:
                continue  # reserves may stop stepping before consuming
            # Shared-overlay chains fall back to fetch-on-visit (their
            # replays can be invalidated by a sharer's rewire before the
            # step); frontier speculation below stays available — it
            # reads only the cache, never the overlay.
            budget = planner.lookahead if self._predict_ok[chain] else 0
            horizon = None
            if self._phase == PHASE_COLLECT:
                # Never predict past the steps the chain will actually
                # take: a prefetch beyond its quota would be pure waste.
                horizon = self._remaining_steps(chain)
            sampler = self._samplers[chain]
            issued = 0
            while issued < budget:
                remaining = self._api.remaining_budget()
                if remaining is not None and remaining <= 0:
                    return  # never let planning exhaust the §II-B budget
                target = planner.predict_next_fetch(sampler, max_steps=horizon)
                if target is None or not self._prefetch_into_burst(chain, target, when):
                    break
                issued += 1
            for target in planner.speculative_targets(sampler):
                remaining = self._api.remaining_budget()
                if remaining is not None and remaining <= 0:
                    return
                if not self._prefetch_into_burst(chain, target, when):
                    break

    def _prefetch_into_burst(self, chain: int, target, when: float) -> bool:
        """Issue one prefetch if ``target``'s shard has an open slot.

        Returns ``False`` when the shard has no open round trip with
        headroom — prefetch never claims admission slots of its own, it
        only rides capacity the real dispatches already paid for.
        """
        fleet = self._fleet
        shard = fleet.shard_of(target)
        burst = self._open_bursts[shard]
        if burst is None or burst[0] < when or int(burst[2]) >= fleet.batch_cap(shard):
            return False
        try:
            response = self._api.query(target)  # billed now; cached for the walk
        except PrivateUserError:
            # Speculative candidates can hit refusals (RNG-replay targets
            # cannot — prediction is disabled on private-user networks).
            # The refusal is billed and cached exactly as the walk's own
            # redraw would have billed it; it occupies no burst slot.
            fleet.drain_dispatches()
            return True
        dispatched = fleet.drain_dispatches()
        if not dispatched:  # pragma: no cover - target raced into the cache
            return True
        for dispatch in dispatched:
            burst[1] = max(burst[1], dispatch.latency)
            burst[2] += 1.0
            fleet.record_burst_depth(shard, int(burst[2]))
            fleet.record_prefetch(shard)
        # The chain does not wait here: it only pays if it *reaches* the
        # prefetched node before this round trip lands (the consumption
        # hook applies the land time then).  Walk, not wait.
        lands_at = burst[0] + burst[1]
        self._planner.ledger.record_issue(target, chain, lands_at)
        if self._recorder is not None:
            issue_attrs = {
                "chain": chain,
                "user": target,
                "shard": shard,
                "lands_at": lands_at,
                "fetches": len(dispatched),
            }
            land_attrs = {"chain": chain, "user": target, "shard": shard}
            if self._obs_tenant is not None:
                issue_attrs["tenant"] = self._obs_tenant
                land_attrs["tenant"] = self._obs_tenant
            self._recorder.record(EVENT_PREFETCH_ISSUE, when, **issue_attrs)
            self._recorder.record(EVENT_PREFETCH_LAND, lands_at, **land_attrs)
            self._recorder.metrics.gauge("prefetch.outstanding").set(
                float(self._planner.ledger.outstanding)
            )
        assert response.user == target
        return True

    def _pop_tick_active(self, num_samples: int) -> List[Tuple[float, int, int]]:
        """Pop one tick of *active* chains, dropping retired chains' events.

        Retirement deschedules lazily: the retired chain's queued event
        stays in the heap and is discarded here.  When the heap drains
        with the global count short (the roster shrank below what the
        old quotas could deliver), quotas are raised and the under-quota
        active chains re-queued at the current simulated time.
        """
        while True:
            while self._heap:
                group = [
                    entry
                    for entry in self._pop_tick()
                    if self._roster[entry[2]] == ROSTER_ACTIVE
                ]
                if group:
                    return group
            self._recompute_quota(num_samples)
            self._requeue_missing(self._sim_time)
            if not self._heap:
                raise WalkError(
                    "no active chain can make progress toward the sample count; "
                    "the adaptive policy retired too much of the group"
                )

    def _recompute_quota(self, num_samples: int) -> None:
        """Smallest per-chain quota the active roster can fill the run with."""
        active = [i for i, r in enumerate(self._roster) if r == ROSTER_ACTIVE]
        if not active:
            raise WalkError("the adaptive policy left no active chains")
        need = num_samples - len(self._merged)
        quota = -(-num_samples // len(active))  # ceil division
        while sum(max(0, quota - self._collected[i]) for i in active) < need:
            quota += 1
        self._quota = quota

    def _requeue_missing(self, when: float) -> None:
        """Re-queue active under-quota chains that left at an older quota."""
        queued = {entry[2] for entry in self._heap}
        for chain in range(len(self._samplers)):
            if (
                self._roster[chain] == ROSTER_ACTIVE
                and self._collected[chain] < self._quota
                and chain not in queued
            ):
                self._push(chain, when)

    def _maybe_review_roster(self, num_samples: int, when: float) -> None:
        """Run a policy review when the collection round floor crosses it.

        The floor is the minimum collection-step count over working
        (active, under-quota) chains — the batched analogue of the
        burn-in round floor — so reviews happen when *every* working
        chain has contributed fresh observations since the last one.
        """
        policy = self._planner.policy
        working = [
            i
            for i, r in enumerate(self._roster)
            if r == ROSTER_ACTIVE and self._collected[i] < self._quota
        ]
        if not working:
            return
        floor = min(self._collect_steps[i] for i in working)
        if floor < self._next_review:
            return
        self._next_review = floor + policy.evaluate_every
        observations = [
            ChainObservation(
                chain=i,
                roster=self._roster[i],
                timed_steps=self._timed_steps[i],
                latency=self._chain_latency[i],
                collect_steps=self._collect_steps[i],
                collected=self._collected[i],
            )
            for i in range(len(self._samplers))
        ]
        decision = policy.review(observations)
        if not decision:
            return
        for chain in decision.retire:
            self._roster[chain] = ROSTER_RETIRED
            self._planner.on_retire(chain)
        for chain in decision.spawn:
            self._roster[chain] = ROSTER_ACTIVE
            self._push(chain, when)
        self._recompute_quota(num_samples)
        self._requeue_missing(when)

    def _run_burnin_batched(
        self, monitor: GelmanRubinDiagnostic, check_every: int, max_steps: int
    ) -> None:
        self._fleet.drain_dispatches()  # drop anything traced outside the loop
        while True:
            rounds = min(self._burn_rounds)
            if rounds >= max_steps:
                self._r_hat = monitor.r_hat([s.trace for s in self._samplers])
                self._converged = False
                return
            if rounds >= self._next_check:
                traces = [s.trace for s in self._samplers]
                if monitor.converged(traces):
                    self._r_hat = monitor.r_hat(traces)
                    self._converged = True
                    if self._recorder is not None:
                        self._recorder.metrics.series("walk.r_hat").observe(
                            self._sim_time, self._r_hat
                        )
                    return
                if self._recorder is not None:
                    self._recorder.metrics.series("walk.r_hat").observe(
                        self._sim_time, monitor.r_hat(traces)
                    )
                self._next_check = rounds + max(check_every, rounds // 5)
            group = self._pop_tick()
            when = group[-1][0]  # the held group departs together
            self._sim_time = max(self._sim_time, when)
            fetches: List[Tuple[int, Tuple[FetchDispatch, ...]]] = []
            pushes: List[int] = []
            waits: List[Tuple[int, float]] = []
            step_events: Dict[int, TraceEvent] = {}
            for _when, _seq, chain in group:
                floor_before = min(self._burn_rounds)
                self._samplers[chain].step()
                dispatches = self._fleet.drain_dispatches()
                fetches.append((chain, dispatches))
                if self._recorder is not None:
                    step_events[chain] = self._record_step(
                        chain, when, sum(d.latency for d in dispatches)
                    )
                lands_at = self._observe_step(chain, dispatches)
                if lands_at is not None:
                    waits.append((chain, lands_at))
                self._burn_rounds[chain] += 1
                floor = min(self._burn_rounds)
                if self._burn_rounds[chain] - floor >= self._max_lead:
                    self._parked.add(chain)
                else:
                    pushes.append(chain)
                if floor > floor_before and self._parked:
                    for idx in sorted(self._parked):
                        if self._burn_rounds[idx] - floor < self._max_lead:
                            self._parked.discard(idx)
                            pushes.append(idx)
            joined = self._settle_tick(when, fetches)
            if self._planner is not None:
                self._apply_prefetch_waits(waits)
            if step_events:
                self._annotate_tick(step_events, joined)
            if self._planner is not None:
                self._plan_prefetches(when, fetches)
            for chain in pushes:
                self._push(chain, self._ready[chain])
            self._tick_committed(len(group))

    def _run_collect_batched(self, num_samples: int, thinning: int) -> None:
        self._fleet.drain_dispatches()
        self._init_collect_batched(num_samples, thinning)
        while len(self._merged) < num_samples:
            self._collect_tick_batched(num_samples)

    def _init_collect_batched(self, num_samples: int, thinning: int) -> None:
        """(Re-)derive collection bookkeeping: thinning, per-chain tallies, quota."""
        policy = self._planner.policy if self._planner is not None else None
        self._thinning = thinning
        self._collected = [0] * len(self._samplers)
        for chain in self._merged_chain:
            self._collected[chain] += 1
        if policy is not None:
            self._recompute_quota(num_samples)
        else:
            self._quota = -(-num_samples // len(self._samplers))  # ceil division

    def _collect_tick_batched(self, num_samples: int) -> None:
        """Advance collection by exactly one tick (one dispatched group)."""
        thinning = self._thinning
        policy = self._planner.policy if self._planner is not None else None
        if policy is not None:
            group = self._pop_tick_active(num_samples)
        else:
            group = self._pop_tick()
        when = group[-1][0]  # the held group departs together
        self._sim_time = max(self._sim_time, when)
        fetches: List[Tuple[int, Tuple[FetchDispatch, ...]]] = []
        pushes: List[int] = []
        waits: List[Tuple[int, float]] = []
        step_events: Dict[int, TraceEvent] = {}
        events = 0
        for _when, _seq, chain in group:
            if len(self._merged) >= num_samples:
                # The quota filled mid-tick: requeue the unprocessed
                # dispatches so the heap stays a faithful state cut.
                self._push(chain, self._ready[chain])
                continue
            events += 1
            sampler = self._samplers[chain]
            if self._since[chain] >= thinning:
                sample = WalkSample(
                    node=sampler.current,
                    weight=sampler.weight(sampler.current),
                    query_cost=self._api.query_cost,
                    step=sampler.steps,
                )
                self._merged.append(sample)
                self._merged_chain.append(chain)
                self._collected[chain] += 1
                self._since[chain] = 0
                self._ready[chain] = when  # collection reads local state: free
                if self._recorder is not None:
                    self._record_sample(chain, when)
                if self._collected[chain] >= self._quota:
                    # Fair share delivered: the chain leaves the queue.
                    continue
            else:
                sampler.step()
                dispatches = self._fleet.drain_dispatches()
                fetches.append((chain, dispatches))
                if self._recorder is not None:
                    step_events[chain] = self._record_step(
                        chain, when, sum(d.latency for d in dispatches)
                    )
                self._since[chain] += 1
                self._collect_steps[chain] += 1
                lands_at = self._observe_step(chain, dispatches)
                if lands_at is not None:
                    waits.append((chain, lands_at))
            pushes.append(chain)
        joined = self._settle_tick(when, fetches)
        if self._planner is not None:
            self._apply_prefetch_waits(waits)
        if step_events:
            self._annotate_tick(step_events, joined)
        if self._planner is not None:
            self._plan_prefetches(when, fetches)
        for chain in pushes:
            self._push(chain, self._ready[chain])
        self._tick_committed(events)
        if policy is not None:
            self._maybe_review_roster(num_samples, when)

    # ------------------------------------------------------------------
    # incremental collection (service-driven, one tick at a time)
    # ------------------------------------------------------------------
    # The service layer interleaves many tenants' schedulers over one
    # shared fleet: instead of run()'s closed loop, each tenant advances
    # tick by tick under the service's admission policy.  begin_collect +
    # collect_tick execute exactly the code path run() does — the
    # single-tenant equivalence suite pins the two byte for byte.

    @property
    def samples_collected(self) -> int:
        """Samples merged so far (all phases)."""
        return len(self._merged)

    def begin_collect(self, num_samples: int, thinning: int = 1) -> None:
        """Prepare monitor-less collection for tick-at-a-time driving.

        Re-entrant in every state ``run`` supports: a fresh scheduler
        seeds its queue, a restored mid-collection one re-derives its
        quota bookkeeping, and a ``done`` scheduler re-opens when the new
        target exceeds what it already collected (the service's
        incremental-request path).

        Args:
            num_samples: Total sample target across all chains.
            thinning: Per-chain spacing between collected samples.

        Raises:
            ValueError: On non-positive ``num_samples``/``thinning``.
            WalkError: Without batch-coalescing dispatch, or mid-burn-in.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if thinning <= 0:
            raise ValueError("thinning must be positive")
        if self._fleet is None:
            raise WalkError(
                "incremental collection needs batch-coalescing dispatch "
                "(batching=True over a provider fleet)"
            )
        if self._phase == PHASE_BURNIN:
            raise WalkError(
                "this scheduler is mid-burn-in; finish run() with its monitor "
                "before driving it incrementally"
            )
        self._fleet.trace_dispatches(True)
        self._fleet.drain_dispatches()
        if self._phase == PHASE_FRESH:
            self._begin_collect(thinning)
        elif self._phase == PHASE_DONE and len(self._merged) < num_samples:
            self._phase = PHASE_COLLECT
        if self._phase == PHASE_COLLECT:
            self._init_collect_batched(num_samples, thinning)
            # A re-opened scheduler's chains left the queue at the old
            # quota; under-quota active chains resume at the current time.
            self._requeue_missing(self._sim_time)

    def collect_tick(self, num_samples: int) -> bool:
        """Advance one tick toward ``num_samples``; ``True`` when reached.

        Args:
            num_samples: The same target ``begin_collect`` planned for.

        Raises:
            WalkError: When called without :meth:`begin_collect`.
        """
        if self._phase == PHASE_DONE:
            return True
        if self._phase != PHASE_COLLECT:
            raise WalkError("begin_collect must run before collect_tick")
        if len(self._merged) < num_samples:
            self._collect_tick_batched(num_samples)
        if len(self._merged) >= num_samples:
            self._phase = PHASE_DONE
            return True
        return False

    def result(self) -> EventDrivenRun:
        """Build the run result from the current state (incremental driving)."""
        return self._result(None)

    def _result(self, monitor: Optional[GelmanRubinDiagnostic]) -> EventDrivenRun:
        per_chain_samples: List[List[WalkSample]] = [[] for _ in self._samplers]
        for sample, chain in zip(self._merged, self._merged_chain):
            per_chain_samples[chain].append(sample)
        per_chain = [
            SamplingRun(
                samples=per_chain_samples[i],
                burn_in_steps=0,
                total_steps=self._samplers[i].steps,
                query_cost=self._api.query_cost,
                converged=monitor is None
                or (self._r_hat is not None and self._r_hat <= monitor.threshold),
            )
            for i in range(len(self._samplers))
        ]
        telemetry = collect_telemetry(self._api)
        return EventDrivenRun(
            samples=list(self._merged),
            per_chain=per_chain,
            r_hat_at_convergence=self._r_hat,
            queries=self._api.query_cost,
            sim_elapsed=self._sim_time,
            events_processed=self._events,
            latency_spent=telemetry.latency_spent,
            retries=telemetry.retries,
            shards=telemetry.shards,
            chain_steps=self.chain_steps,
            planning=self.planning_summary(),
            telemetry=telemetry,
        )
