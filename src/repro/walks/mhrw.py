"""Metropolis–Hastings random walk with a uniform target distribution.

The standard OSN-sampling MHRW (Gjoka et al.): from ``u``, propose a
uniform neighbor ``v`` and accept with probability ``min(1, k_u / k_v)``;
otherwise stay.  The stationary distribution is uniform, so samples need no
re-weighting — but evaluating the acceptance ratio requires querying the
*proposal*, so rejected proposals still cost queries, which is exactly why
the paper finds MHRW 1.5–8× slower than SRW in query cost.
"""

from __future__ import annotations

from typing import Hashable

from repro.walks.base import RandomWalkSampler

Node = Hashable


class MetropolisHastingsWalk(RandomWalkSampler):
    """Uniform-target MH walk sampler."""

    def step(self) -> Node:
        """Propose a uniform accessible neighbor; accept ``min(1, k_u/k_v)``.

        A private proposal counts as a rejection (the walk holds), which
        preserves the uniform stationary distribution on the accessible
        subgraph.

        On private-free networks with the default degree trace the step
        runs on the fast cached-step lane — same draws (one ``randrange``
        then one ``random``), same acceptance arithmetic on the same
        degrees, same query log and billing as the full path.
        """
        if self._uses_default_trace and not self._api.may_have_private:
            seq = self._current_neighbor_seq()
            if not seq:
                self._stay_fast(0)
                return self._current
            deg_u = len(seq)
            proposal = seq[self._rng.randrange(deg_u)]
            prop_seq = self._api.fetch_seq(proposal)
            deg_v = len(prop_seq)
            if self._rng.random() < min(1.0, deg_u / deg_v):
                self._advance_fast(proposal, deg_v, seq=prop_seq)
            else:
                self._stay_fast(deg_u)
            return self._current
        resp = self._query_current()
        drawn = self._draw_accessible(resp.neighbor_seq)
        if drawn is None:
            self._stay()
            return self.current
        proposal, prop_resp = drawn
        accept = min(1.0, resp.degree / prop_resp.degree)
        if self._rng.random() < accept:
            self._advance(proposal, prop_resp)
        else:
            self._stay()
        return self.current

    def weight(self, node: Node) -> float:
        """1.0 — the MH stationary distribution is already uniform."""
        return 1.0
