"""Metropolis–Hastings random walk with a uniform target distribution.

The standard OSN-sampling MHRW (Gjoka et al.): from ``u``, propose a
uniform neighbor ``v`` and accept with probability ``min(1, k_u / k_v)``;
otherwise stay.  The stationary distribution is uniform, so samples need no
re-weighting — but evaluating the acceptance ratio requires querying the
*proposal*, so rejected proposals still cost queries, which is exactly why
the paper finds MHRW 1.5–8× slower than SRW in query cost.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.walks.base import RandomWalkSampler

Node = Hashable


class MetropolisHastingsWalk(RandomWalkSampler):
    """Uniform-target MH walk sampler."""

    def step(self) -> Node:
        """Propose a uniform accessible neighbor; accept ``min(1, k_u/k_v)``.

        A private proposal counts as a rejection (the walk holds), which
        preserves the uniform stationary distribution on the accessible
        subgraph.

        On private-free networks with the default degree trace the step
        runs on the fast cached-step lane — same draws (one ``randrange``
        then one ``random``), same acceptance arithmetic on the same
        degrees, same query log and billing as the full path.
        """
        if self._uses_default_trace and not self._api.may_have_private:
            seq = self._current_neighbor_seq()
            if not seq:
                self._stay_fast(0)
                return self._current
            deg_u = len(seq)
            proposal = seq[self._rng.randrange(deg_u)]
            prop_seq = self._api.fetch_seq(proposal)
            deg_v = len(prop_seq)
            if self._rng.random() < min(1.0, deg_u / deg_v):
                self._advance_fast(proposal, deg_v, seq=prop_seq)
            else:
                self._stay_fast(deg_u)
            return self._current
        resp = self._query_current()
        drawn = self._draw_accessible(resp.neighbor_seq)
        if drawn is None:
            self._stay()
            return self.current
        proposal, prop_resp = drawn
        accept = min(1.0, resp.degree / prop_resp.degree)
        if self._rng.random() < accept:
            self._advance(proposal, prop_resp)
        else:
            self._stay()
        return self.current

    def predict_next_fetch(self, max_steps: int = 64) -> Optional[Node]:
        """Replay proposal draws *and* acceptance tests to the next fetch.

        MHRW queries every proposal before the accept coin lands, so the
        next fetch is simply the first *uncached* proposal the replayed
        ``randrange`` produces.  Walking past a cached proposal requires
        resolving the accept branch, which is exactly one ``random()``
        against ``min(1, k_u / k_v)`` — both degrees readable from the
        cache — so the replay continues through accepted moves and
        rejected holds alike, bit-for-bit with the live step.

        Returns ``None`` on networks with private users (the redraw loop
        has data-dependent draw counts), at dead ends, or when everything
        within ``max_steps`` proposals is already cached.
        """
        if self._api.may_have_private:
            return None
        cache = self._api.cache
        rng = self._replay_rng_clone()
        cur = self._current
        cur_seq = self._replay_seq_of(cache, cur)
        for _ in range(max_steps):
            if not cur_seq:
                return None
            deg_u = len(cur_seq)
            proposal = cur_seq[rng.randrange(deg_u)]
            prop_seq = cache.neighbor_seq(proposal)
            if prop_seq is None:
                return proposal
            deg_v = len(prop_seq)
            if not deg_v:  # degree-0 proposal: the live accept would fault
                return None
            if rng.random() < min(1.0, deg_u / deg_v):
                cur, cur_seq = proposal, prop_seq
            # rejected proposals hold in place: same node, same sequence
        return None

    def weight(self, node: Node) -> float:
        """1.0 — the MH stationary distribution is already uniform."""
        return 1.0
