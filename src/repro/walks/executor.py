"""Multiprocess chain executor for lock-step collection rounds.

Between collection rounds the chains of a :class:`~repro.walks.parallel.
ParallelWalkers` / :class:`~repro.walks.scheduler.EventDrivenWalkers`
group are independent: each one's next block of steps is a pure function
of its own snapshot state (position, RNG, trace) and the static network.
The PR-2 snapshot codec makes that state transferable, so a block of
``thinning`` rounds can run as one worker-process task per chain —
workers rebuild the network from the dataset registry, step their chain,
and ship the new state back — turning the per-step Python interpreter
floor into per-block process parallelism.

**Billing equivalence.**  Workers bill against throwaway interfaces;
their accounting is discarded.  What each worker returns alongside the
chain state is the *logical query sequence* its block issued, one list
per round.  The driver then replays those sequences against the real
shared interface in serial round order (round 0: chain 0's queries, then
chain 1's, …), which reproduces the §II-B log the serial lock-step run
would have written — same users, same order, same billed flags, same
unique-query cost — because chain draws do not depend on cache contents
and the unique-set union is interleaving-independent within a round
block.  Samples are only taken at block boundaries, so every
:class:`~repro.walks.base.WalkSample.query_cost` matches serial exactly.

**Scope.**  The equivalence argument needs chains whose steps cannot
observe shared mutable state: registry-built networks without private
users, chains without overlays (an MTO chain's rewirings couple chains
through the shared overlay), zero-latency providers (the lock-step
latency bookkeeping has no meaning inside a worker), and no checkpoint
hooks (a hook firing mid-block would snapshot a state the driver never
held).  :meth:`MultiprocessChainExecutor.check_compatible` enforces the
structural half of that contract.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.errors import WalkError
from repro.walks.base import RandomWalkSampler

Node = Hashable


def _engine_name(sampler: RandomWalkSampler) -> Optional[str]:
    from repro.compose import WALK_ENGINES

    for name, cls in WALK_ENGINES.items():
        if type(sampler) is cls:
            return name
    return None


def _run_block(payload: tuple) -> Tuple[dict, List[List[Node]]]:
    """Worker task: step one chain ``rounds`` times on a rebuilt network.

    Returns the chain's post-block state plus the per-round logical query
    users (in issue order), which the driver replays for billing.
    """
    dataset, engine, start, state, rounds = payload
    from repro.compose import WALK_ENGINES
    from repro.datasets.registry import load

    name, seed, scale = dataset
    net = load(name, seed=seed, scale=scale)
    api = net.interface()
    sampler = WALK_ENGINES[engine](api, start=start, seed=0)
    sampler.load_state(state)
    # Warm the current-node memo outside the recorded segment: a restored
    # chain's first step would otherwise log a memo re-read the live
    # serial chain (whose memo is warm) never issues.
    sampler._query_current()
    log = api.log
    per_round: List[List[Node]] = []
    for _ in range(rounds):
        before = len(log)
        sampler.step()
        per_round.append([rec.user for rec in log.tail(len(log) - before)])
    return sampler.state_dict(), per_round


class MultiprocessChainExecutor:
    """Steps a chain group in worker processes, one block at a time.

    Args:
        dataset: Registry reference ``(name, seed, scale)`` workers
            rebuild the network from — it must be the network the chains'
            shared interface serves, or the replayed billing is fiction.
        processes: Worker count; defaults to the CPU count (capped by the
            chain count per block).

    Example:
        >>> executor = MultiprocessChainExecutor(("epinions_like", 0, 0.1))
        >>> # walkers.run(..., executor=executor)
        >>> executor.close()
    """

    def __init__(
        self, dataset: Tuple[str, int, float], processes: Optional[int] = None
    ) -> None:
        name, seed, scale = dataset
        self._dataset = (str(name), int(seed), float(scale))
        self._processes = processes
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self, chains: int) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._processes
            if workers is None:
                workers = max(1, min(chains, os.cpu_count() or 1))
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "MultiprocessChainExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def check_compatible(self, samplers: Sequence[RandomWalkSampler], api) -> None:
        """Raise :class:`WalkError` unless block execution is equivalent.

        Structural requirements: every chain is a registry engine
        (``srw``/``mhrw``/``nbrw``), shares ``api``, carries no overlay,
        and the network has no private users.  (Zero provider latency
        and absent checkpoint hooks are the callers' side of the
        contract — the group drivers check hooks, latency is a
        documented requirement.)
        """
        if api.may_have_private:
            raise WalkError(
                "multiprocess execution needs a private-free network: "
                "redraw loops couple chains through shared refusal state"
            )
        for s in samplers:
            if s.api is not api:
                raise WalkError("all chains must share the executor's interface")
            if getattr(s, "overlay", None) is not None:
                raise WalkError(
                    "overlay chains (MTO) cannot run in worker processes: "
                    "rewirings couple chains through the shared overlay"
                )
            if _engine_name(s) is None:
                raise WalkError(
                    f"chain type {type(s).__name__} is not a registry engine; "
                    "workers cannot rebuild it"
                )

    def step_rounds(
        self, samplers: Sequence[RandomWalkSampler], api, rounds: int
    ) -> None:
        """Advance every chain ``rounds`` lock-step rounds via workers.

        Chains step concurrently in worker processes; the driver then
        replays each round's logical queries against ``api`` in serial
        chain order and loads the returned states, so afterwards the
        group is indistinguishable — positions, RNG streams, traces,
        query log — from having stepped serially.
        """
        if rounds <= 0:
            return
        pool = self._ensure_pool(len(samplers))
        payloads = [
            (self._dataset, _engine_name(s), s.current, s.state_dict(), rounds)
            for s in samplers
        ]
        results = list(pool.map(_run_block, payloads))
        for r in range(rounds):
            for _state, per_round in results:
                for user in per_round[r]:
                    api.fetch_seq(user)
        for sampler, (state, _per_round) in zip(samplers, results):
            sampler.load_state(state)
