"""One result shape for every walk engine.

Historically :class:`~repro.walks.parallel.ParallelWalkers` and
:class:`~repro.walks.scheduler.EventDrivenWalkers` returned structurally
different records (``merged``/``query_cost`` here, extra batch fields
there), so any code consuming a run — telemetry reporting, experiments,
the service layer — had to special-case which engine produced it.

:class:`RunResult` is the shared protocol both engines now return:

* ``samples`` — all chains' samples interleaved in collection order
  (completion order under the event-driven scheduler; at zero latency the
  two coincide);
* ``queries`` — final billed §II-B cost of the shared interface;
* ``latency_spent`` — serial sum of billed provider response latency;
* ``sim_elapsed`` — the engine's simulated wall-clock (lock-step round
  maxima, or the event-time makespan);
* ``chain_steps`` — per-chain committed step counts;
* ``telemetry`` — the full
  :class:`~repro.interface.telemetry.InterfaceTelemetry` capture.

The old spellings (``merged``, ``query_cost``) keep working as read-only
properties but emit :class:`DeprecationWarning` naming the canonical
field; internal code and ``examples/`` are linted clean of them.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional, Tuple

from repro.interface.telemetry import InterfaceTelemetry, ShardTelemetry
from repro.walks.base import SamplingRun, WalkSample

__all__ = ["RunResult", "ParallelRun", "EventDrivenRun"]


@dataclasses.dataclass
class RunResult:
    """Common result of a multi-chain sampling run (any engine).

    Attributes:
        samples: All chains' samples interleaved in collection order.
        per_chain: The individual chains' runs.
        r_hat_at_convergence: The R̂ value when burn-in ended (``None``
            when no monitor was used).
        queries: Final billed §II-B cost of the shared interface.
        sim_elapsed: Simulated wall-clock the run occupied (engine
            semantics: lock-step per-round maxima, or the event-time
            makespan).
        latency_spent: Total provider response latency billed — the
            serial sum over billed fetches; ``sim_elapsed`` is how the
            engine redistributed it.
        chain_steps: Per-chain committed step counts, in chain order, or
            ``None`` when the engine did not track them.
        telemetry: Full interface/fleet telemetry captured at the end of
            the run, or ``None``.
    """

    samples: List[WalkSample]
    per_chain: List[SamplingRun]
    r_hat_at_convergence: Optional[float]
    queries: int
    sim_elapsed: float = 0.0
    latency_spent: float = 0.0
    chain_steps: Optional[Tuple[int, ...]] = None
    telemetry: Optional[InterfaceTelemetry] = None

    # -- deprecated spellings -----------------------------------------
    @property
    def merged(self) -> List[WalkSample]:
        """Deprecated alias for :attr:`samples`."""
        warnings.warn(
            "RunResult.merged is deprecated; read RunResult.samples "
            "(see repro.walks.results)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.samples

    @property
    def query_cost(self) -> int:
        """Deprecated alias for :attr:`queries`."""
        warnings.warn(
            "RunResult.query_cost is deprecated; read RunResult.queries "
            "(see repro.walks.results)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.queries


@dataclasses.dataclass
class ParallelRun(RunResult):
    """Result of a lock-step :class:`~repro.walks.parallel.ParallelWalkers` run."""


@dataclasses.dataclass
class EventDrivenRun(RunResult):
    """Result of an event-driven run, with the scheduler's extra books.

    Attributes:
        events_processed: Dispatched chain actions (steps + collections).
        retries: Flaky-layer retry attempts beyond the first, summed over
            the whole provider stack (0 without flaky layers).
        shards: Per-shard telemetry breakdown keyed by shard index, or
            ``None`` when the interface has no provider fleet.
        planning: Planner accounting (prefetch issued/used/wasted,
            cache-first step counts, roster) when a dispatch planner was
            attached, else ``None``.
    """

    events_processed: int = 0
    retries: int = 0
    shards: Optional[Dict[int, ShardTelemetry]] = None
    planning: Optional[dict] = None
