"""Random-walk samplers over the restrictive interface.

All walkers speak only to a :class:`~repro.interface.api.RestrictedSocialAPI`
— they never touch the graph — so their query costs are exactly what a
third party would pay:

* :class:`~repro.walks.srw.SimpleRandomWalk` — the paper's baseline
  (Definition 1), stationary ∝ degree;
* :class:`~repro.walks.mhrw.MetropolisHastingsWalk` — uniform-target MH
  walk;
* :class:`~repro.walks.rj.RandomJumpWalk` — MHRW with random jumps (needs
  an id space, as the paper notes);
* the MTO-Sampler lives in :mod:`repro.core.mto` and plugs into the same
  base machinery.
"""

from repro.walks.base import RandomWalkSampler, SamplingRun, WalkSample
from repro.walks.crawlers import BFSCrawler, DFSCrawler, SnowballCrawler
from repro.walks.executor import MultiprocessChainExecutor
from repro.walks.mhrw import MetropolisHastingsWalk
from repro.walks.nbrw import NonBacktrackingWalk
from repro.walks.parallel import ParallelWalkers
from repro.walks.results import EventDrivenRun, ParallelRun, RunResult
from repro.walks.rj import RandomJumpWalk
from repro.walks.scheduler import EventDrivenWalkers
from repro.walks.srw import SimpleRandomWalk

__all__ = [
    "RandomWalkSampler",
    "RunResult",
    "SamplingRun",
    "WalkSample",
    "BFSCrawler",
    "DFSCrawler",
    "SnowballCrawler",
    "MetropolisHastingsWalk",
    "MultiprocessChainExecutor",
    "NonBacktrackingWalk",
    "ParallelRun",
    "ParallelWalkers",
    "EventDrivenRun",
    "EventDrivenWalkers",
    "RandomJumpWalk",
    "SimpleRandomWalk",
]
