"""Parallel random walks over one shared interface.

Section VI of the paper observes that MTO "can be applied to each parallel
random walk straightforwardly, since it is a parameter-free and online
algorithm".  This module makes the observation concrete:

* all walkers share one :class:`RestrictedSocialAPI`, so one walker's
  billed query is every walker's cache hit — exactly how a third party
  would run several chains from a single crawler budget;
* MTO walkers can additionally share one *overlay*: a rewiring discovered
  by any chain benefits all of them (pass a common
  :class:`~repro.core.overlay.OverlayGraph` via ``MTOSampler(overlay=…)``);
* convergence is judged across chains with the Gelman–Rubin R̂
  diagnostic, which single-chain monitors cannot do;
* with ``prefetch=True`` every lock-step round batch-fetches, through one
  ``query_many`` call, the nodes the chains are *predicted to actually
  fetch next* (RNG-replay ``predict_next_fetch``) — the "Walk, Not Wait"
  direction of fetching what the chains are about to need.  Because only
  predicted fetches are batched, per-user billing is unchanged and total
  query cost is equal-or-lower than prefetch-off.  Every engine now
  predicts (SRW, MHRW, NBRW, and MTO's overlay replay); chains whose
  next draw still cannot be replayed — private users, an unresolvable
  branch, or an MTO chain whose shared overlay an earlier-stepping
  chain may rewire first — fall back to fetch-on-visit;
* uniform SRW groups can opt into a *vectorized* lock-step lane
  (``vectorized=True``): each round's draws are served by one
  :meth:`~repro.core.adjacency.CompactAdjacency.draw_many` call over a
  mirror of the cached neighborhoods, bit-for-bit identical (same
  per-chain RNG consumption, same query log, same billing) to stepping
  the chains one at a time.  It is off by default — per-chain seeded
  draws cannot be batched, so the memoized per-chain fast lane measures
  faster at every realistic group size.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from repro.convergence.gelman_rubin import GelmanRubinDiagnostic
from repro.core.adjacency import CompactAdjacency
from repro.core.overlay import shared_overlay_of
from repro.errors import SnapshotError, WalkError
from repro.interface.api import BatchQueryResult
from repro.interface.telemetry import collect_telemetry
from repro.walks.base import RandomWalkSampler, SamplingRun, WalkSample
from repro.walks.results import ParallelRun
from repro.walks.srw import SimpleRandomWalk

Node = Hashable


class ParallelWalkers:
    """Drive several samplers over one shared interface in lock-step.

    Args:
        samplers: Two or more walkers constructed over the *same*
            ``RestrictedSocialAPI`` (checked), typically from different
            start nodes.
        prefetch: Before each lock-step round, batch-fetch through
            ``query_many`` the nodes the chains' RNG-replay predictions
            say they will fetch next, so those steps hit the shared
            cache.  Only actual future fetches are billed — query cost
            is equal-or-lower than with prefetch off, and unpredictable
            chains fall back to fetch-on-visit; off by default.
        vectorized: ``True`` routes eligible rounds (a uniform SRW
            group over a private-free network) through one
            :meth:`~repro.core.adjacency.CompactAdjacency.draw_many`
            call — bit-for-bit identical to per-chain stepping (same
            RNG consumption, same query log, same billing).  The
            default ``None`` keeps the per-chain loop: the draws
            themselves cannot be batched (each chain's Mersenne
            ``randrange`` is consumed individually to preserve seeded
            replays), so the gather only amortizes neighbor
            *resolution*, and measured lock-step throughput stays below
            the memoized per-chain fast lane at every group size worth
            running on one interface (0.5–0.65x at 4–128 chains).

    Raises:
        WalkError: With fewer than two samplers or mismatched interfaces,
            or when ``vectorized=True`` and the group is not eligible
            (mixed engines, MTO, or a network with private users).

    Example:
        >>> from repro.datasets import load
        >>> from repro.walks import SimpleRandomWalk
        >>> net = load("epinions_like", seed=0, scale=0.1)
        >>> api = net.interface()
        >>> walkers = ParallelWalkers([
        ...     SimpleRandomWalk(api, start=net.seed_node(i), seed=i)
        ...     for i in range(3)
        ... ])
        >>> result = walkers.run(num_samples=30)
        >>> len(result.samples)
        30
    """

    def __init__(
        self,
        samplers: Sequence[RandomWalkSampler],
        prefetch: bool = False,
        vectorized: Optional[bool] = None,
    ) -> None:
        if len(samplers) < 2:
            raise WalkError("parallel walking needs at least two samplers")
        api = samplers[0].api
        if any(s.api is not api for s in samplers):
            raise WalkError("all samplers must share one interface")
        self._samplers = list(samplers)
        self._api = api
        self._prefetch = prefetch
        # Chains whose engine overrides predict_next_fetch — the only
        # ones a draw-aware batch can ever include.  Every registry
        # engine now overrides it, so the check exists for custom
        # engines that keep the base no-op.  Overlay walkers get one
        # extra guard: a prediction replays the overlay *as it stands at
        # round start*, so an MTO chain is only enrolled when no
        # earlier-stepping chain writes the same overlay — otherwise a
        # rewire landing before its step could invalidate the replay and
        # turn the prefetched query into extra §II-B spend.  (The first
        # chain sharing an overlay always predicts: nothing steps
        # between the batch and its own step.)
        self._predictors = []
        written_overlays: set = set()
        for s in self._samplers:
            overlay = getattr(s, "overlay", None)
            overrides = (
                type(s).predict_next_fetch is not RandomWalkSampler.predict_next_fetch
            )
            if overrides and (overlay is None or id(overlay) not in written_overlays):
                self._predictors.append(s)
            if overlay is not None:
                written_overlays.add(id(overlay))
        # Per-engine prediction accounting: how often a replay resolved
        # to a concrete fetch vs answered None (auditable via
        # planning_summary / SamplingSession.summary).
        self._predict_stats: dict = {}
        # Vectorized lock-step lane: a uniform SRW group over a
        # private-free network can draw every round through one
        # CompactAdjacency.draw_many call against a mirror of the cached
        # neighborhoods — same per-chain RNG consumption, same query
        # log, same billing as per-chain stepping, bit for bit.  Opt-in:
        # per-chain Mersenne draws cannot be batched without breaking
        # seeded replays, so the gather never beats the memoized
        # per-chain fast lane (see the ``vectorized`` doc above).
        eligible = not api.may_have_private and all(
            type(s) is SimpleRandomWalk and s._uses_default_trace
            for s in self._samplers
        )
        if vectorized and not eligible:
            raise WalkError(
                "vectorized lock-step requires a uniform SRW group over "
                "a network without private users"
            )
        self._vector_lane = bool(vectorized) and eligible
        self._mirror: Optional[CompactAdjacency] = CompactAdjacency() if self._vector_lane else None
        # Users already swept into a batch; the network is static, so a
        # once-prefetched user never needs to enter a batch again.
        self._prefetched: set = set()
        self._rounds = 0
        self._sim_elapsed = 0.0
        self._overlay = shared_overlay_of(samplers)
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    @property
    def chains(self) -> Sequence[RandomWalkSampler]:
        """The managed samplers."""
        return tuple(self._samplers)

    @property
    def query_cost(self) -> int:
        """Billed queries of the shared interface."""
        return self._api.query_cost

    @property
    def overlay(self):
        """The overlay all chains share, or ``None``.

        Auto-detected at construction (see
        :func:`~repro.core.overlay.shared_overlay_of`), so a
        :class:`~repro.interface.session.SamplingSession` over a
        shared-overlay MTO group snapshots the overlay without the caller
        passing it explicitly.
        """
        return self._overlay

    @property
    def simulated_elapsed(self) -> float:
        """Simulated seconds of provider latency under lock-step waiting.

        Chains in one round fetch concurrently, so each round contributes
        the *maximum* of its chains' response latencies; a single slow or
        throttled response stalls the whole round — the behavior the
        event-driven scheduler exists to fix.
        """
        return self._sim_elapsed

    def _timed_step(self, sampler: RandomWalkSampler) -> float:
        """Step one chain; returns the provider latency its step incurred."""
        before = self._api.latency_spent
        sampler.step()
        return self._api.latency_spent - before

    def step_all(self) -> List[Node]:
        """Advance every chain by one step; returns the new positions."""
        if self._prefetch and self._predictors:
            before = self._api.latency_spent
            self.prefetch_candidates()
            # A batch is one request burst; its fetches are serialized by
            # the provider model, so the batch contributes its full
            # latency to the round.
            self._sim_elapsed += self._api.latency_spent - before
        if self._vector_lane:
            latencies = self._step_round_vectorized()
        else:
            latencies = [self._timed_step(s) for s in self._samplers]
        self._sim_elapsed += max(latencies)
        positions = [s.current for s in self._samplers]
        self._rounds += 1
        if self._checkpoint_fn is not None and self._rounds % self._checkpoint_every == 0:
            self._checkpoint_fn(self)
        return positions

    def _step_round_vectorized(self) -> List[float]:
        """One lock-step round of SRW draws through a single ``draw_many``.

        The mirror adjacency holds each chain's current neighborhood as
        the immutable tuple the serial fast lane would draw from (rows
        are filled through ``_current_neighbor_seq``, so a cold memo
        costs the same free re-read in both lanes).  ``draw_many``
        consumes exactly one ``randrange(degree)`` per chain in chain
        order — per-chain RNG streams are independent, so the round is
        bit-for-bit identical to stepping the chains one at a time —
        and the follow-up fetches commit in the same chain order,
        keeping the query log and billing identical too.
        """
        mirror = self._mirror
        samplers = self._samplers
        currents = []
        for s in samplers:
            cur = s._current
            if not mirror.has_row(cur):
                mirror.set_row(cur, s._current_neighbor_seq())
            currents.append(cur)
        draws = mirror.draw_many(currents, [s._rng for s in samplers])
        api = self._api
        latencies: List[float] = []
        for s, nxt in zip(samplers, draws):
            before = api.latency_spent
            if nxt is None:
                s._stay_fast(0)
            else:
                nxt_seq = api.fetch_seq(nxt)
                s._advance_fast(nxt, len(nxt_seq), seq=nxt_seq)
            latencies.append(api.latency_spent - before)
        return latencies

    # ------------------------------------------------------------------
    # checkpoint hook + snapshot support
    # ------------------------------------------------------------------
    def set_checkpoint(self, fn, every: int) -> None:
        """Invoke ``fn(self)`` after every ``every``-th lock-step round.

        Fires on :meth:`step_all` boundaries — all chains are between
        steps, so the captured group state is a clean resumable cut.  Use
        this (not per-chain hooks) for parallel checkpointing: one save
        covers every chain plus the shared prefetch bookkeeping.

        Args:
            fn: Callback receiving this :class:`ParallelWalkers`.
            every: Positive round period.

        Raises:
            ValueError: If ``every`` is not positive.
        """
        if every < 1:
            raise ValueError("checkpoint period must be positive")
        self._checkpoint_fn = fn
        self._checkpoint_every = every

    def clear_checkpoint(self) -> None:
        """Remove any installed checkpoint hook."""
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    def state_dict(self) -> dict:
        """Serializable group state: every chain plus prefetch bookkeeping.

        The shared interface and any shared overlay are *not* captured
        here — :class:`~repro.interface.session.SamplingSession` snapshots
        those once for the whole group, keeping one authoritative copy of
        the §II-B billing state.
        """
        return {
            "chains": [s.state_dict() for s in self._samplers],
            "prefetched": set(self._prefetched),
            "rounds": self._rounds,
            "sim_elapsed": self._sim_elapsed,
            "predict_stats": {k: dict(v) for k, v in self._predict_stats.items()},
        }

    def load_state(self, state: dict) -> None:
        """Restore all chains' states captured by :meth:`state_dict`.

        Args:
            state: Output of :meth:`state_dict`.

        Raises:
            SnapshotError: If the chain count differs from this group's.
        """
        chains = state["chains"]
        if len(chains) != len(self._samplers):
            raise SnapshotError(
                f"snapshot holds {len(chains)} chains; this group has {len(self._samplers)}"
            )
        for sampler, chain_state in zip(self._samplers, chains):
            sampler.load_state(chain_state)
        self._prefetched = set(state["prefetched"])
        self._rounds = int(state["rounds"])
        # Absent from snapshots written before latency-aware providers.
        self._sim_elapsed = float(state.get("sim_elapsed", 0.0))
        # Absent from snapshots written before per-engine prediction.
        self._predict_stats = {
            k: dict(v) for k, v in state.get("predict_stats", {}).items()
        }

    def planning_summary(self) -> dict:
        """Prefetch/prediction accounting for this group.

        Mirrors the scheduler planner's summary shape where it overlaps
        so session-level reporting can treat both drivers uniformly.
        """
        return {
            "prefetch_users": len(self._prefetched),
            "prediction": {k: dict(v) for k, v in self._predict_stats.items()},
        }

    def prefetch_candidates(self) -> BatchQueryResult:
        """Batch-materialize each chain's *predicted* next fetch.

        Draw-aware prefetch: every chain is asked, via its RNG-replay
        :meth:`~repro.walks.base.RandomWalkSampler.predict_next_fetch`
        with a **one-step horizon**, whether its very next step will pay
        a provider round trip — and for which node.  Only those nodes
        enter the batch, and each is consumed by its chain's step in the
        same round, so the batch fetches exactly what the round's steps
        would have fetched anyway: prefetch-on query cost equals
        prefetch-off, never more.  (A deeper horizon replays the true
        future path too, but bills the walk's frontier rounds before the
        walk arrives — at any finite cutoff that is strictly *extra*
        cost, the regression this method used to cause at 2x scale by
        batching entire candidate neighborhoods.)  Chains whose next draw
        cannot be replayed — data-dependent branches, private users,
        overlay walkers like MTO whose base prediction answers ``None``
        — contribute nothing and fall back to fetch-on-visit, exactly
        the prefetch-off semantics.

        Private members and budget exhaustion degrade gracefully
        (reported in the result, not raised) — a chain that then trips on
        them handles it exactly as in the unbatched path.
        """
        candidates: dict = {}
        stats = self._predict_stats
        for s in self._predictors:
            target = s.predict_next_fetch(max_steps=1)
            engine = type(s).__name__
            row = stats.get(engine)
            if row is None:
                row = stats[engine] = {"hits": 0, "misses": 0}
            if target is None:
                row["misses"] += 1
                continue
            row["hits"] += 1
            if target not in self._prefetched:
                candidates[target] = None
        if not candidates:
            return BatchQueryResult(
                responses={}, private=(), unknown=(), budget_exhausted=False
            )
        result = self._api.query_many(candidates)
        # Record the swept users only after the batch returns, and never
        # through a local alias of the live set: a checkpoint hook firing
        # mid-round must see either the pre-batch or the post-batch
        # bookkeeping, not a half-mutated set.
        self._prefetched.update(candidates)
        return result

    def run(
        self,
        num_samples: int,
        monitor: Optional[GelmanRubinDiagnostic] = None,
        thinning: int = 1,
        check_every: int = 25,
        max_steps: int = 250_000,
        executor=None,
    ) -> ParallelRun:
        """Burn in until R̂ converges, then collect samples round-robin.

        Args:
            num_samples: Total samples across all chains.
            monitor: Multi-chain diagnostic; ``None`` skips burn-in.
            thinning: Per-chain spacing between collected samples.
            check_every: Lock-step rounds between R̂ evaluations (grows
                geometrically like the single-chain driver).
            max_steps: Per-chain step budget for the burn-in phase.
            executor: Optional
                :class:`~repro.walks.executor.MultiprocessChainExecutor`.
                Collection then runs its ``thinning``-round step blocks in
                worker processes and replays their logical queries here,
                producing the same samples, log, and billing as the serial
                loop (see the executor module for the equivalence
                argument and its restrictions — registry engines only, no
                overlay/private users, zero-latency providers, no
                checkpoint hook).  Burn-in stays serial: the monitor reads
                traces between rounds.

        Raises:
            ValueError: On non-positive ``num_samples``/``thinning``.
            WalkError: If ``executor`` is given but the group violates its
                equivalence restrictions.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if thinning <= 0:
            raise ValueError("thinning must be positive")
        if executor is not None:
            executor.check_compatible(self._samplers, self._api)
            if self._checkpoint_fn is not None:
                raise WalkError(
                    "round checkpoints cannot fire inside executor step blocks; "
                    "clear_checkpoint() before running with an executor"
                )
        r_hat: Optional[float] = None
        if monitor is not None:
            next_check = 0
            rounds = 0
            while rounds < max_steps:
                if rounds >= next_check:
                    traces = [s.trace for s in self._samplers]
                    if monitor.converged(traces):
                        r_hat = monitor.r_hat(traces)
                        break
                    next_check = rounds + max(check_every, rounds // 5)
                self.step_all()
                rounds += 1
            if r_hat is None:
                r_hat = monitor.r_hat([s.trace for s in self._samplers])

        merged: List[WalkSample] = []
        per_chain_samples: List[List[WalkSample]] = [[] for _ in self._samplers]
        if executor is not None:
            # The serial loop below is uniform: `since` starts equal and
            # advances in lock-step, so rounds are all-sample or all-step
            # and collection decomposes into sample rounds separated by
            # `thinning`-round step blocks — which the executor runs in
            # worker processes, replaying their queries for §II-B parity.
            while len(merged) < num_samples:
                for i, sampler in enumerate(self._samplers):
                    if len(merged) >= num_samples:
                        break
                    sample = WalkSample(
                        node=sampler.current,
                        weight=sampler.weight(sampler.current),
                        query_cost=self._api.query_cost,
                        step=sampler.steps,
                    )
                    merged.append(sample)
                    per_chain_samples[i].append(sample)
                if len(merged) >= num_samples:
                    break
                executor.step_rounds(self._samplers, self._api, thinning)
        since = [thinning] * len(self._samplers)
        while len(merged) < num_samples:
            round_latencies: List[float] = []
            stepped_any = False
            for i, sampler in enumerate(self._samplers):
                if len(merged) >= num_samples:
                    break
                if since[i] >= thinning:
                    sample = WalkSample(
                        node=sampler.current,
                        weight=sampler.weight(sampler.current),
                        query_cost=self._api.query_cost,
                        step=sampler.steps,
                    )
                    merged.append(sample)
                    per_chain_samples[i].append(sample)
                    since[i] = 0
                else:
                    round_latencies.append(self._timed_step(sampler))
                    since[i] += 1
                    stepped_any = True
            if not stepped_any and len(merged) < num_samples:
                # Every chain sampled this round without filling the
                # quota: advance everyone once so the next round makes
                # progress.  (Guarded on the quota too: the old bare
                # for…else fired on every non-breaking round, stretching
                # per-chain sample spacing to thinning+1 and billing one
                # extra all-chain step after the final sample.)
                for i, sampler in enumerate(self._samplers):
                    round_latencies.append(self._timed_step(sampler))
                    since[i] += 1
            if round_latencies:
                self._sim_elapsed += max(round_latencies)
        per_chain = [
            SamplingRun(
                samples=per_chain_samples[i],
                burn_in_steps=0,
                total_steps=self._samplers[i].steps,
                query_cost=self._api.query_cost,
                converged=monitor is None or (r_hat is not None and r_hat <= monitor.threshold),
            )
            for i in range(len(self._samplers))
        ]
        telemetry = collect_telemetry(self._api)
        return ParallelRun(
            samples=merged,
            per_chain=per_chain,
            r_hat_at_convergence=r_hat,
            queries=self._api.query_cost,
            sim_elapsed=self._sim_elapsed,
            latency_spent=telemetry.latency_spent,
            chain_steps=tuple(s.steps for s in self._samplers),
            telemetry=telemetry,
        )
