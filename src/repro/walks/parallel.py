"""Parallel random walks over one shared interface.

Section VI of the paper observes that MTO "can be applied to each parallel
random walk straightforwardly, since it is a parameter-free and online
algorithm".  This module makes the observation concrete:

* all walkers share one :class:`RestrictedSocialAPI`, so one walker's
  billed query is every walker's cache hit — exactly how a third party
  would run several chains from a single crawler budget;
* MTO walkers can additionally share one *overlay*: a rewiring discovered
  by any chain benefits all of them (pass a common
  :class:`~repro.core.overlay.OverlayGraph` via ``MTOSampler(overlay=…)``);
* convergence is judged across chains with the Gelman–Rubin R̂
  diagnostic, which single-chain monitors cannot do;
* with ``prefetch=True`` every lock-step round batch-fetches all chains'
  candidate neighborhoods through ``query_many`` ahead of the draws, so
  each chain's subsequent step is a cache hit — the "Walk, Not Wait"
  direction of fetching what the chains are about to need.  Billing
  semantics per user are unchanged; the batch spends budget *earlier*
  (and possibly on candidates never drawn), trading query cost for
  cache-warm chains.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from repro.convergence.gelman_rubin import GelmanRubinDiagnostic
from repro.core.overlay import shared_overlay_of
from repro.errors import SnapshotError, WalkError
from repro.interface.api import BatchQueryResult
from repro.interface.telemetry import collect_telemetry
from repro.walks.base import RandomWalkSampler, SamplingRun, WalkSample
from repro.walks.results import ParallelRun

Node = Hashable


class ParallelWalkers:
    """Drive several samplers over one shared interface in lock-step.

    Args:
        samplers: Two or more walkers constructed over the *same*
            ``RestrictedSocialAPI`` (checked), typically from different
            start nodes.
        prefetch: Batch-fetch every chain's candidate neighborhood through
            ``query_many`` before each lock-step round, so all chains'
            next queries hit the shared cache.  The batch may bill
            neighbors no chain ends up drawing, so query accounting
            differs from the paper's fetch-on-visit semantics; off by
            default.

    Raises:
        WalkError: With fewer than two samplers or mismatched interfaces.

    Example:
        >>> from repro.datasets import load
        >>> from repro.walks import SimpleRandomWalk
        >>> net = load("epinions_like", seed=0, scale=0.1)
        >>> api = net.interface()
        >>> walkers = ParallelWalkers([
        ...     SimpleRandomWalk(api, start=net.seed_node(i), seed=i)
        ...     for i in range(3)
        ... ])
        >>> result = walkers.run(num_samples=30)
        >>> len(result.samples)
        30
    """

    def __init__(self, samplers: Sequence[RandomWalkSampler], prefetch: bool = False) -> None:
        if len(samplers) < 2:
            raise WalkError("parallel walking needs at least two samplers")
        api = samplers[0].api
        if any(s.api is not api for s in samplers):
            raise WalkError("all samplers must share one interface")
        self._samplers = list(samplers)
        self._api = api
        self._prefetch = prefetch
        # Users already swept into a batch; the network is static, so a
        # once-prefetched user never needs to enter a batch again.
        self._prefetched: set = set()
        self._rounds = 0
        self._sim_elapsed = 0.0
        self._overlay = shared_overlay_of(samplers)
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    @property
    def chains(self) -> Sequence[RandomWalkSampler]:
        """The managed samplers."""
        return tuple(self._samplers)

    @property
    def query_cost(self) -> int:
        """Billed queries of the shared interface."""
        return self._api.query_cost

    @property
    def overlay(self):
        """The overlay all chains share, or ``None``.

        Auto-detected at construction (see
        :func:`~repro.core.overlay.shared_overlay_of`), so a
        :class:`~repro.interface.session.SamplingSession` over a
        shared-overlay MTO group snapshots the overlay without the caller
        passing it explicitly.
        """
        return self._overlay

    @property
    def simulated_elapsed(self) -> float:
        """Simulated seconds of provider latency under lock-step waiting.

        Chains in one round fetch concurrently, so each round contributes
        the *maximum* of its chains' response latencies; a single slow or
        throttled response stalls the whole round — the behavior the
        event-driven scheduler exists to fix.
        """
        return self._sim_elapsed

    def _timed_step(self, sampler: RandomWalkSampler) -> float:
        """Step one chain; returns the provider latency its step incurred."""
        before = self._api.latency_spent
        sampler.step()
        return self._api.latency_spent - before

    def step_all(self) -> List[Node]:
        """Advance every chain by one step; returns the new positions."""
        if self._prefetch:
            before = self._api.latency_spent
            self.prefetch_candidates()
            # A batch is one request burst; its fetches are serialized by
            # the provider model, so the batch contributes its full
            # latency to the round.
            self._sim_elapsed += self._api.latency_spent - before
        latencies = [self._timed_step(s) for s in self._samplers]
        self._sim_elapsed += max(latencies)
        positions = [s.current for s in self._samplers]
        self._rounds += 1
        if self._checkpoint_fn is not None and self._rounds % self._checkpoint_every == 0:
            self._checkpoint_fn(self)
        return positions

    # ------------------------------------------------------------------
    # checkpoint hook + snapshot support
    # ------------------------------------------------------------------
    def set_checkpoint(self, fn, every: int) -> None:
        """Invoke ``fn(self)`` after every ``every``-th lock-step round.

        Fires on :meth:`step_all` boundaries — all chains are between
        steps, so the captured group state is a clean resumable cut.  Use
        this (not per-chain hooks) for parallel checkpointing: one save
        covers every chain plus the shared prefetch bookkeeping.

        Args:
            fn: Callback receiving this :class:`ParallelWalkers`.
            every: Positive round period.

        Raises:
            ValueError: If ``every`` is not positive.
        """
        if every < 1:
            raise ValueError("checkpoint period must be positive")
        self._checkpoint_fn = fn
        self._checkpoint_every = every

    def clear_checkpoint(self) -> None:
        """Remove any installed checkpoint hook."""
        self._checkpoint_fn = None
        self._checkpoint_every = 0

    def state_dict(self) -> dict:
        """Serializable group state: every chain plus prefetch bookkeeping.

        The shared interface and any shared overlay are *not* captured
        here — :class:`~repro.interface.session.SamplingSession` snapshots
        those once for the whole group, keeping one authoritative copy of
        the §II-B billing state.
        """
        return {
            "chains": [s.state_dict() for s in self._samplers],
            "prefetched": set(self._prefetched),
            "rounds": self._rounds,
            "sim_elapsed": self._sim_elapsed,
        }

    def load_state(self, state: dict) -> None:
        """Restore all chains' states captured by :meth:`state_dict`.

        Args:
            state: Output of :meth:`state_dict`.

        Raises:
            SnapshotError: If the chain count differs from this group's.
        """
        chains = state["chains"]
        if len(chains) != len(self._samplers):
            raise SnapshotError(
                f"snapshot holds {len(chains)} chains; this group has {len(self._samplers)}"
            )
        for sampler, chain_state in zip(self._samplers, chains):
            sampler.load_state(chain_state)
        self._prefetched = set(state["prefetched"])
        self._rounds = int(state["rounds"])
        # Absent from snapshots written before latency-aware providers.
        self._sim_elapsed = float(state.get("sim_elapsed", 0.0))

    def prefetch_candidates(self) -> BatchQueryResult:
        """Batch-materialize the union of all chains' candidate draws.

        Each chain's next step draws from its current node's neighborhood;
        fetching that union through one ``query_many`` call means the
        subsequent per-chain queries are all cache hits.  Chains that walk
        a rewired overlay (MTO) contribute their *overlay* neighborhood —
        edges the sampler already removed can never be drawn, so billing
        them would inflate query cost for nothing.  Private members and
        budget exhaustion degrade gracefully (reported in the result, not
        raised) — a chain that then trips on them handles it exactly as in
        the unbatched path.
        """
        candidates: dict = {}
        seen = self._prefetched
        cache = self._api.cache
        for s in self._samplers:
            overlay = getattr(s, "overlay", None)
            if overlay is not None and overlay.is_known(s.current):
                seq = overlay.neighbors_seq(s.current)
            else:
                # The current node was queried when the chain arrived on
                # it, so its ordering is in the local cache — read it
                # without going through the response machinery.
                # A capacity-bounded cache may have evicted the entry
                # since the chain arrived; re-reading the current node is
                # free in unique-query cost (the log still knows it).
                seq = cache.neighbor_seq(s.current)
                if seq is None:
                    seq = self._api.query(s.current).neighbor_seq
            for v in seq:
                if v not in seen:
                    candidates[v] = None
        seen.update(candidates)
        return self._api.query_many(candidates)

    def run(
        self,
        num_samples: int,
        monitor: Optional[GelmanRubinDiagnostic] = None,
        thinning: int = 1,
        check_every: int = 25,
        max_steps: int = 250_000,
    ) -> ParallelRun:
        """Burn in until R̂ converges, then collect samples round-robin.

        Args:
            num_samples: Total samples across all chains.
            monitor: Multi-chain diagnostic; ``None`` skips burn-in.
            thinning: Per-chain spacing between collected samples.
            check_every: Lock-step rounds between R̂ evaluations (grows
                geometrically like the single-chain driver).
            max_steps: Per-chain step budget for the burn-in phase.

        Raises:
            ValueError: On non-positive ``num_samples``/``thinning``.
        """
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        if thinning <= 0:
            raise ValueError("thinning must be positive")
        r_hat: Optional[float] = None
        if monitor is not None:
            next_check = 0
            rounds = 0
            while rounds < max_steps:
                if rounds >= next_check:
                    traces = [s.trace for s in self._samplers]
                    if monitor.converged(traces):
                        r_hat = monitor.r_hat(traces)
                        break
                    next_check = rounds + max(check_every, rounds // 5)
                self.step_all()
                rounds += 1
            if r_hat is None:
                r_hat = monitor.r_hat([s.trace for s in self._samplers])

        merged: List[WalkSample] = []
        per_chain_samples: List[List[WalkSample]] = [[] for _ in self._samplers]
        since = [thinning] * len(self._samplers)
        while len(merged) < num_samples:
            round_latencies: List[float] = []
            stepped_any = False
            for i, sampler in enumerate(self._samplers):
                if len(merged) >= num_samples:
                    break
                if since[i] >= thinning:
                    sample = WalkSample(
                        node=sampler.current,
                        weight=sampler.weight(sampler.current),
                        query_cost=self._api.query_cost,
                        step=sampler.steps,
                    )
                    merged.append(sample)
                    per_chain_samples[i].append(sample)
                    since[i] = 0
                else:
                    round_latencies.append(self._timed_step(sampler))
                    since[i] += 1
                    stepped_any = True
            if not stepped_any and len(merged) < num_samples:
                # Every chain sampled this round without filling the
                # quota: advance everyone once so the next round makes
                # progress.  (Guarded on the quota too: the old bare
                # for…else fired on every non-breaking round, stretching
                # per-chain sample spacing to thinning+1 and billing one
                # extra all-chain step after the final sample.)
                for i, sampler in enumerate(self._samplers):
                    round_latencies.append(self._timed_step(sampler))
                    since[i] += 1
            if round_latencies:
                self._sim_elapsed += max(round_latencies)
        per_chain = [
            SamplingRun(
                samples=per_chain_samples[i],
                burn_in_steps=0,
                total_steps=self._samplers[i].steps,
                query_cost=self._api.query_cost,
                converged=monitor is None or (r_hat is not None and r_hat <= monitor.threshold),
            )
            for i in range(len(self._samplers))
        ]
        telemetry = collect_telemetry(self._api)
        return ParallelRun(
            samples=merged,
            per_chain=per_chain,
            r_hat_at_convergence=r_hat,
            queries=self._api.query_cost,
            sim_elapsed=self._sim_elapsed,
            latency_spent=telemetry.latency_spent,
            chain_steps=tuple(s.steps for s in self._samplers),
            telemetry=telemetry,
        )
