"""Random Jump: MHRW mixed with uniform jumps over a known id space.

The paper's fourth algorithm (§I-B, §V-A.3): with probability ``p_jump``
the walk teleports to a uniformly random vertex; otherwise it performs an
MHRW step.  Both components leave the uniform distribution invariant.  As
the paper notes (footnote 5), the jump needs the global id space — "thus
not viable for all online social networks" — so the id universe is an
explicit constructor argument the caller must supply.  The experiments use
``p_jump = 0.5``, matching §V-B.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.errors import PrivateUserError, WalkError
from repro.interface.api import RestrictedSocialAPI
from repro.utils.rng import RngLike
from repro.walks.mhrw import MetropolisHastingsWalk

Node = Hashable


class RandomJumpWalk(MetropolisHastingsWalk):
    """MHRW + uniform random jumps (uniform stationary).

    Args:
        api: Restrictive interface.
        start: Start node.
        id_space: The global user-id universe jumps draw from.  Must be
            non-empty; ids that do not resolve (deleted users) simply cost
            nothing because the jump is retried.
        jump_probability: Per-step teleport probability (paper: 0.5).
        seed: Randomness.

    Raises:
        WalkError: If ``id_space`` is empty.
        ValueError: If ``jump_probability`` is outside [0, 1].
    """

    def __init__(
        self,
        api: RestrictedSocialAPI,
        start: Node,
        id_space: Sequence[Node],
        jump_probability: float = 0.5,
        seed: RngLike = None,
    ) -> None:
        if not id_space:
            raise WalkError("random jump needs a non-empty id space")
        if not 0 <= jump_probability <= 1:
            raise ValueError("jump_probability must be in [0, 1]")
        super().__init__(api, start, seed=seed)
        self._id_space = tuple(id_space)  # immutable: O(1) indexed jumps
        self._jump_probability = jump_probability

    def step(self) -> Node:
        """Teleport with probability ``p_jump``; otherwise MHRW step.

        A jump landing on a private/deleted id (billed once, as on real
        interfaces) degrades into a hold — the behaviour that made RJ
        expensive on the paper's live crawl.
        """
        if self._rng.random() < self._jump_probability:
            target = self._id_space[self._rng.randrange(len(self._id_space))]
            try:
                resp = self._query(target)
            except PrivateUserError:
                self._stay()
                return self.current
            self._advance(target, resp)
            return target
        return super().step()
