"""Benchmark: Figure 8 — long-run KL divergence and query cost.

Expected shape (paper): at the same Geweke threshold, MTO's burn-in query
cost does not exceed SRW's by more than noise, and its sampling bias (KL)
is in the same band or lower.
"""

from repro.experiments import run_fig8


def test_fig8(benchmark, figure_report):
    result = benchmark.pedantic(
        run_fig8,
        kwargs={
            "num_samples": 8000,
            "geweke_threshold": 0.3,
            "runs": 3,
            "scale": 0.4,
            "seed": 0,
            "max_steps": 30_000,
        },
        iterations=1,
        rounds=1,
    )
    figure_report(str(result))
    datasets = sorted({d for d, _ in result.kl})
    assert len(datasets) == 3
    mto_not_worse = 0
    for d in datasets:
        assert result.kl[(d, "SRW")] > 0
        assert result.kl[(d, "MTO")] > 0
        if result.query_cost[(d, "MTO")] <= result.query_cost[(d, "SRW")] * 1.15:
            mto_not_worse += 1
    assert mto_not_worse >= 2  # MTO at/below SRW cost on most datasets
