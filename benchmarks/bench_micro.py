"""Micro-benchmarks: per-operation costs of the hot paths.

These are classic pytest-benchmark timing runs (many iterations) for the
operations that dominate experiment wall-clock: walk steps, the removal
criterion, overlay materialization, conductance search, and SLEM.

``test_walk_engine_profile`` additionally emits a machine-readable
``BENCH_walk_engine.json`` (path overridable via the
``BENCH_WALK_ENGINE_OUT`` environment variable) with steps-per-second and
queries-per-sample for the walk engines — the perf trajectory CI tracks
across PRs.
"""

import gc
import json
import os
import sys
import time
from contextlib import contextmanager

import pytest

from repro.analysis.conductance import min_conductance_exact, sweep_conductance
from repro.analysis.spectral import slem
from repro.compose import (
    FleetSpec,
    PlannerSpec,
    ProviderSpec,
    StackConfig,
    WalkSpec,
    build_fleet,
    build_stack,
)
from repro.core.criteria import removal_criterion
from repro.core.mto import MTOSampler
from repro.datasets import load
from repro.datastore.snapshot import JsonLinesBackend, KeyValueBackend
from repro.experiments import (
    run_fleet_sweep,
    run_history_sweep,
    run_latency_sweep,
    run_tenant_sweep,
    run_warm_history,
)
from repro.generators import barbell_graph, paper_barbell
from repro.interface import RestrictedSocialAPI, collect_telemetry
from repro.obs import (
    SLOWatcher,
    TraceRecorder,
    attribute_run,
    cache_hit_rate_slo,
    diff_traces,
    export_chrome_trace,
    reconcile_attribution,
    reconcile_run,
    retry_rate_slo,
    shard_in_flight_slo,
)
from repro.planning import DispatchPlanner
from repro.interface.session import SamplingSession
from repro.service import SamplingService
from repro.walks import (
    EventDrivenWalkers,
    MetropolisHastingsWalk,
    NonBacktrackingWalk,
    SimpleRandomWalk,
)
from repro.walks.parallel import ParallelWalkers


@pytest.fixture(scope="module")
def network():
    return load("epinions_like", seed=0, scale=0.3)


def test_srw_step(benchmark, network):
    api = network.interface()
    walk = SimpleRandomWalk(api, start=network.seed_node(0), seed=1)
    benchmark(walk.step)


def test_mhrw_step(benchmark, network):
    api = network.interface()
    walk = MetropolisHastingsWalk(api, start=network.seed_node(0), seed=1)
    benchmark(walk.step)


def test_nbrw_step(benchmark, network):
    api = network.interface()
    walk = NonBacktrackingWalk(api, start=network.seed_node(0), seed=1)
    benchmark(walk.step)


def test_mto_step(benchmark, network):
    api = network.interface()
    mto = MTOSampler(api, start=network.seed_node(0), seed=1)
    benchmark(mto.step)


def test_removal_criterion(benchmark):
    benchmark(removal_criterion, 9, 10, 11)


def test_exact_conductance_barbell12(benchmark):
    g = barbell_graph(6)  # 12 nodes → 2^11 Gray-code states
    benchmark(min_conductance_exact, g)


def test_sweep_conductance_standin(benchmark, network):
    benchmark(sweep_conductance, network.graph)


def test_slem_barbell(benchmark):
    g = paper_barbell()
    benchmark(slem, g)


# ----------------------------------------------------------------------
# walk-engine throughput profile (machine-readable trajectory artifact)
# ----------------------------------------------------------------------

# Pre-refactor anchor (PR 1 dev container): the O(k log k) sorted-draw
# engine.  Kept in the artifact so the trajectory has an origin even when
# CI hardware differs.
_PRE_REFACTOR_STEPS_PER_SECOND = {"mto": 61837, "srw": 93390}

_WARMUP_STEPS = 200
_TIMED_STEPS = 8000
_COST_SAMPLES = 500
_PARALLEL_CHAINS = 4
_PARALLEL_ROUNDS = 150


@contextmanager
def _gc_quiesced():
    """Keep ambient GC out of a timed loop.

    Inside a pytest session the interpreter heap is large enough that a
    single gen-2 collection landing in a ~25ms timed window reads as a
    3x engine slowdown; collect up front and pause automatic collection
    so the artifact tracks engine cost, not heap size.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _steps_per_second(sampler, steps=_TIMED_STEPS):
    for _ in range(_WARMUP_STEPS):
        sampler.step()
    with _gc_quiesced():
        t0 = time.perf_counter()
        for _ in range(steps):
            sampler.step()
        return steps / (time.perf_counter() - t0)


def _engine_profile(network, make_sampler):
    throughput = _steps_per_second(make_sampler(network.interface()))
    cost_sampler = make_sampler(network.interface())
    run = cost_sampler.run(num_samples=_COST_SAMPLES)
    return {
        "steps_per_second": round(throughput),
        "us_per_step": round(1e6 / throughput, 2),
        "queries_per_sample": round(run.query_cost / len(run.samples), 4),
        "query_cost": run.query_cost,
    }


def _make_chains(network, name):
    """Chain factory per engine name: 4 chains over one fresh interface."""

    def chains(api):
        if name == "mto":
            shared = None
            built = []
            for i in range(_PARALLEL_CHAINS):
                mto = MTOSampler(api, start=network.seed_node(i), seed=i, overlay=shared)
                shared = mto.overlay
                built.append(mto)
            return built
        engine = {
            "srw": SimpleRandomWalk,
            "mhrw": MetropolisHastingsWalk,
            "nbrw": NonBacktrackingWalk,
        }[name]
        return [
            engine(api, start=network.seed_node(i), seed=i)
            for i in range(_PARALLEL_CHAINS)
        ]

    return chains


def _parallel_profile(network, make_chains, prefetch, repeats=3):
    """Best-of-N parallel throughput (noisy runners; cost is seeded-exact)."""
    best = 0.0
    query_cost = None
    for _ in range(repeats):
        api = network.interface()
        walkers = ParallelWalkers(make_chains(api), prefetch=prefetch)
        for _ in range(20):
            walkers.step_all()
        with _gc_quiesced():
            t0 = time.perf_counter()
            for _ in range(_PARALLEL_ROUNDS):
                walkers.step_all()
            elapsed = time.perf_counter() - t0
        best = max(best, _PARALLEL_ROUNDS * _PARALLEL_CHAINS / elapsed)
        query_cost = api.query_cost
    return {"chain_steps_per_second": round(best), "query_cost": query_cost}


_ENGINE_FACTORIES = {
    "srw": lambda network, api: SimpleRandomWalk(api, start=network.seed_node(0), seed=1),
    "mhrw": lambda network, api: MetropolisHastingsWalk(api, start=network.seed_node(0), seed=1),
    "nbrw": lambda network, api: NonBacktrackingWalk(api, start=network.seed_node(0), seed=1),
    "mto": lambda network, api: MTOSampler(api, start=network.seed_node(0), seed=1),
}


def test_walk_engine_profile(network, figure_report):
    """Emit ``BENCH_walk_engine.json``: the walk engines' perf trajectory.

    Serial steps/s and queries/sample for every engine, plus per-engine
    lock-step parallel throughput with prefetch off and on — the gate
    asserts prefetch-on is equal-or-faster at equal-or-lower §II-B cost
    (the ISSUE 7 regression).
    """
    report = {
        "benchmark": "walk_engine",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "timed_steps": _TIMED_STEPS,
        "engines": {
            name: _engine_profile(network, lambda api, f=factory: f(network, api))
            for name, factory in _ENGINE_FACTORIES.items()
        },
        "parallel": {
            "chains": _PARALLEL_CHAINS,
            "engines": {
                name: {
                    "prefetch_off": _parallel_profile(
                        network, _make_chains(network, name), prefetch=False
                    ),
                    "prefetch_on": _parallel_profile(
                        network, _make_chains(network, name), prefetch=True
                    ),
                }
                for name in _ENGINE_FACTORIES
            },
        },
        "reference": {
            "pre_refactor_steps_per_second": _PRE_REFACTOR_STEPS_PER_SECOND,
            "note": "sorted-draw engine measured on the PR 1 dev container",
        },
    }
    for engine in report["engines"].values():
        assert engine["steps_per_second"] > 0
        assert engine["queries_per_sample"] > 0
    for name, rows in report["parallel"]["engines"].items():
        # Draw-aware prefetch bills only nodes the chains fetch anyway.
        assert rows["prefetch_on"]["query_cost"] <= rows["prefetch_off"]["query_cost"], name

    out_path = os.environ.get("BENCH_WALK_ENGINE_OUT", "BENCH_walk_engine.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"walk engine profile  ->  {out_path}"]
    for name, engine in report["engines"].items():
        lines.append(
            "  {:>4}: {:>8} steps/s   {:.4f} queries/sample".format(
                name, engine["steps_per_second"], engine["queries_per_sample"]
            )
        )
    for name, rows in report["parallel"]["engines"].items():
        lines.append(
            "  parallel {:>4} x{}: {} chain-steps/s (prefetch off), {} (on)".format(
                name,
                report["parallel"]["chains"],
                rows["prefetch_off"]["chain_steps_per_second"],
                rows["prefetch_on"]["chain_steps_per_second"],
            )
        )
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# event-driven scheduler profile (machine-readable artifact)
# ----------------------------------------------------------------------

_SCHED_CHAINS = 8
_SCHED_SAMPLES = 400
_SCHED_SEED = 3


def test_scheduler_profile(network, figure_report):
    """Emit ``BENCH_scheduler.json``: lock-step vs event-driven scheduling.

    The acceptance metric (ISSUE 3): under a seeded heavy-tailed latency
    model the event-driven scheduler collects the same samples at
    identical §II-B query cost for at least 2x less simulated wall-clock
    per sample than lock-step rounds.  Simulated numbers are seeded and
    hardware-independent, so CI gates on them tightly; the wall-time
    events/s figure tracks scheduler overhead loosely.
    """
    sweep = run_latency_sweep(
        network,
        chains=_SCHED_CHAINS,
        num_samples=_SCHED_SAMPLES,
        seed=_SCHED_SEED,
    )
    rows = {row.distribution: row for row in sweep.rows}
    heavy = rows["heavy_tailed"]
    assert heavy.speedup >= 2.0, f"scheduler speedup regressed: {heavy.speedup:.2f}x"

    # Zero-latency determinism probe: the event loop must degenerate to
    # the lock-step round-robin order, bit for bit.
    def chains(api):
        return [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=i)
            for i in range(_SCHED_CHAINS)
        ]

    lock_run = ParallelWalkers(chains(network.interface())).run(num_samples=200)
    t0 = time.perf_counter()
    event_run = EventDrivenWalkers(chains(network.interface())).run(num_samples=200)
    event_elapsed = time.perf_counter() - t0
    bit_for_bit = (
        event_run.samples == lock_run.samples and event_run.queries == lock_run.queries
    )
    assert bit_for_bit

    report = {
        "benchmark": "scheduler",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "chains": _SCHED_CHAINS,
        "num_samples": sweep.num_samples,
        "latency_seed": _SCHED_SEED,
        "zero_latency_bit_for_bit": bit_for_bit,
        "events_per_second": round(event_run.events_processed / event_elapsed),
        "distributions": {
            name: {
                "query_cost": row.query_cost,
                "lockstep_wall_per_sample": round(row.lockstep_wall_per_sample, 6),
                "event_wall_per_sample": round(row.event_wall_per_sample, 6),
                "speedup": round(row.speedup, 4),
            }
            for name, row in rows.items()
        },
    }

    out_path = os.environ.get("BENCH_SCHEDULER_OUT", "BENCH_scheduler.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"scheduler profile  ->  {out_path}"]
    for name, row in rows.items():
        lines.append(
            "  {:>13}: {:.4f} s/sample lock-step, {:.4f} event-driven ({:.2f}x)".format(
                name,
                row.lockstep_wall_per_sample,
                row.event_wall_per_sample,
                row.speedup,
            )
        )
    lines.append(f"  zero-latency bit-for-bit: {bit_for_bit}")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# fleet batch-coalescing profile (machine-readable artifact)
# ----------------------------------------------------------------------

_FLEET_CHAINS = 8
_FLEET_SAMPLES = 400
_FLEET_SHARDS = 4
_FLEET_SKEW = 8.0
_FLEET_SEED = 0


def test_fleet_profile(network, figure_report):
    """Emit ``BENCH_fleet.json``: the sharded-fleet batch-coalescing profile.

    The acceptance metric (ISSUE 4): over a skewed 4-shard fleet with
    per-shard admission limits, batch coalescing collects the same samples
    at identical §II-B query cost for at least 1.5x less simulated
    wall-clock per sample than uncoalesced dispatch (``batch_cap=1``).
    Simulated numbers are seeded and hardware-independent, so CI gates on
    them tightly.
    """
    sweep = run_fleet_sweep(
        network,
        shard_counts=(_FLEET_SHARDS,),
        skews=(_FLEET_SKEW,),
        batch_caps=(1, 8),
        chains=_FLEET_CHAINS,
        num_samples=_FLEET_SAMPLES,
        seed=_FLEET_SEED,
    )
    by_cap = {row.batch_cap: row for row in sweep.rows}
    coalesced = by_cap[8]
    assert coalesced.query_cost == by_cap[1].query_cost
    assert coalesced.speedup_vs_uncoalesced >= 1.5, (
        f"fleet batch-coalescing speedup regressed: "
        f"{coalesced.speedup_vs_uncoalesced:.2f}x"
    )

    # Zero-latency single-shard determinism probe: the batch-coalescing
    # loop over a trivial fleet must reproduce lock-step rounds bit for
    # bit — the ISSUE 4 equivalence criterion.
    def chains(api):
        return [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=i)
            for i in range(_FLEET_CHAINS)
        ]

    lock_run = ParallelWalkers(chains(network.interface())).run(num_samples=200)
    fleet_api = RestrictedSocialAPI(
        build_fleet(FleetSpec(num_shards=1, seed=0), network.graph, profiles=network.profiles)
    )
    batched_run = EventDrivenWalkers(chains(fleet_api), batching=True).run(num_samples=200)
    bit_for_bit = (
        batched_run.samples == lock_run.samples
        and batched_run.queries == lock_run.queries
        and batched_run.sim_elapsed == 0.0
    )
    assert bit_for_bit

    report = {
        "benchmark": "fleet",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "chains": _FLEET_CHAINS,
        "num_samples": sweep.num_samples,
        "num_shards": _FLEET_SHARDS,
        "skew": _FLEET_SKEW,
        "seed": _FLEET_SEED,
        "zero_latency_bit_for_bit": bit_for_bit,
        "caps": {
            str(cap): {
                "query_cost": row.query_cost,
                "wall_per_sample": round(row.wall_per_sample, 6),
                "speedup_vs_uncoalesced": round(row.speedup_vs_uncoalesced, 4),
                "hot_shard_share": round(row.hot_shard_share, 4),
                "max_in_flight": row.max_in_flight,
            }
            for cap, row in by_cap.items()
        },
    }

    out_path = os.environ.get("BENCH_FLEET_OUT", "BENCH_fleet.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"fleet profile  ->  {out_path}"]
    for cap, row in sorted(by_cap.items()):
        lines.append(
            "  cap {:>2}: {:.4f} s/sample at {} queries ({:.2f}x vs uncoalesced, "
            "burst depth <= {})".format(
                cap,
                row.wall_per_sample,
                row.query_cost,
                row.speedup_vs_uncoalesced,
                row.max_in_flight,
            )
        )
    lines.append(f"  zero-latency bit-for-bit: {bit_for_bit}")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# history-aware planning profile (machine-readable artifact)
# ----------------------------------------------------------------------

_PLAN_CHAINS = 8
_PLAN_SAMPLES = 400
_PLAN_SHARDS = 4
_PLAN_SKEW = 8.0
_PLAN_CAP = 16
_PLAN_ADMISSION = 2.0
_PLAN_LOOKAHEAD = 4
_PLAN_SEED = 0

# The per-engine prediction profile (ISSUE 8): every walk engine planned
# at the same lookahead over the same skewed fleet, plus the cross-run
# warm-start comparison.  Shared between the planning and history
# profiles so CI pays for the sweep once.
_HIST_SEED = 2


@pytest.fixture(scope="module")
def warm_history(network):
    return run_warm_history(
        network,
        chains=_PLAN_CHAINS,
        num_samples=_PLAN_SAMPLES,
        lookahead=_PLAN_LOOKAHEAD,
        num_shards=_PLAN_SHARDS,
        skew=_PLAN_SKEW,
        batch_cap=_PLAN_CAP,
        admission_interval=_PLAN_ADMISSION,
        seed=_HIST_SEED,
    )


def _engine_cells(result):
    return {
        row.engine: {
            "query_cost": row.query_cost,
            "baseline_wall": round(row.baseline_wall, 6),
            "planned_wall": round(row.planned_wall, 6),
            "speedup": round(row.speedup, 4),
            "prefetch_issued": row.prefetch_issued,
            "prefetch_used": row.prefetch_used,
            "prediction_hits": row.prediction_hits,
            "prediction_misses": row.prediction_misses,
            "cost_parity": True,  # run_warm_history raises on any mismatch
        }
        for row in result.rows
    }


def test_planning_profile(network, figure_report, warm_history):
    """Emit ``BENCH_planning.json``: the history-aware planning profile.

    The acceptance metric (ISSUE 5): over the seeded skewed fleet the
    dispatch planner (RNG-replay prefetch into open bursts' spare slots
    plus cache-first stepping) collects the same samples at
    equal-or-lower §II-B query cost for at least 1.5x less simulated
    wall-clock than PR-4 batch coalescing alone.  Simulated numbers are
    seeded and hardware-independent, so CI gates on them tightly.
    """
    sweep = run_history_sweep(
        network,
        skews=(_PLAN_SKEW,),
        lookaheads=(0, _PLAN_LOOKAHEAD),
        policies=("off", "adaptive"),
        chains=_PLAN_CHAINS,
        num_samples=_PLAN_SAMPLES,
        num_shards=_PLAN_SHARDS,
        batch_cap=_PLAN_CAP,
        admission_interval=_PLAN_ADMISSION,
        seed=_PLAN_SEED,
    )
    cells = {f"lookahead_{row.lookahead}_{row.policy}": row for row in sweep.rows}
    baseline = cells["lookahead_0_off"]
    planned = cells[f"lookahead_{_PLAN_LOOKAHEAD}_off"]
    assert planned.query_cost <= baseline.query_cost
    assert planned.speedup_vs_plain >= 1.5, (
        f"planning speedup regressed: {planned.speedup_vs_plain:.2f}x"
    )

    # Zero-knob determinism probe: a planner with every knob at zero over
    # a trivial fleet must reproduce lock-step rounds bit for bit — the
    # ISSUE 5 planning-off equivalence criterion.
    def chains(api):
        return [
            SimpleRandomWalk(api, start=network.seed_node(i), seed=i)
            for i in range(_PLAN_CHAINS)
        ]

    lock_run = ParallelWalkers(chains(network.interface())).run(num_samples=200)
    fleet_api = RestrictedSocialAPI(
        build_fleet(FleetSpec(num_shards=1, seed=0), network.graph, profiles=network.profiles)
    )
    zero_knob_run = EventDrivenWalkers(
        chains(fleet_api),
        batching=True,
        planner=DispatchPlanner(lookahead=0, speculation=0),
    ).run(num_samples=200)
    bit_for_bit = (
        zero_knob_run.samples == lock_run.samples
        and zero_knob_run.queries == lock_run.queries
        and zero_knob_run.sim_elapsed == 0.0
    )
    assert bit_for_bit

    report = {
        "benchmark": "planning",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "chains": _PLAN_CHAINS,
        "num_samples": sweep.num_samples,
        "num_shards": _PLAN_SHARDS,
        "skew": _PLAN_SKEW,
        "batch_cap": _PLAN_CAP,
        "admission_interval": _PLAN_ADMISSION,
        "lookahead": _PLAN_LOOKAHEAD,
        "seed": _PLAN_SEED,
        "zero_knob_bit_for_bit": bit_for_bit,
        "engines": _engine_cells(warm_history),
        "cells": {
            name: {
                "query_cost": row.query_cost,
                "wall_per_sample": round(row.wall_per_sample, 6),
                "speedup_vs_plain": round(row.speedup_vs_plain, 4),
                "prefetch_issued": row.prefetch_issued,
                "prefetch_used": row.prefetch_used,
                "prefetch_wasted": row.prefetch_wasted,
                "cache_first_rate": round(row.cache_first_rate, 4),
                "retired_chains": len(row.retired_chains),
            }
            for name, row in cells.items()
        },
    }

    out_path = os.environ.get("BENCH_PLANNING_OUT", "BENCH_planning.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"planning profile  ->  {out_path}"]
    for name, row in cells.items():
        lines.append(
            "  {:>16}: {:.4f} s/sample at {} queries ({:.2f}x vs plain, "
            "{:.0%} cache-first)".format(
                name,
                row.wall_per_sample,
                row.query_cost,
                row.speedup_vs_plain,
                row.cache_first_rate,
            )
        )
    for name, cell in report["engines"].items():
        lines.append(
            "  engine {:>4}: {} queries ({:.2f}x planned, "
            "prefetch {}/{}, predict {}/{})".format(
                name,
                cell["query_cost"],
                cell["speedup"],
                cell["prefetch_issued"],
                cell["prefetch_used"],
                cell["prediction_hits"],
                cell["prediction_misses"],
            )
        )
    lines.append(f"  zero-knob bit-for-bit: {bit_for_bit}")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# cross-run warm-start history profile (machine-readable artifact)
# ----------------------------------------------------------------------

_HIST_PROBE_SAMPLES = 200
_HIST_MIN_SPEEDUP = 1.5


def test_history_profile(network, figure_report, warm_history):
    """Emit ``BENCH_history.json``: per-engine prediction + warm starts.

    The acceptance metrics (ISSUE 8): every walk engine planned at
    ``speculation=0`` bills the identical §II-B query set as its
    planner-free baseline (``run_warm_history`` raises otherwise), MHRW
    and NBRW gain at least 1.5x simulated wall-clock from predictive
    prefetch on the skewed fleet, and a second run warm-started from a
    recorded :class:`~repro.datastore.history.HistoryStore` artifact
    spends strictly fewer queries than the same run cold while staying
    per-chain bit-for-bit identical.  A per-engine zero-knob probe rides
    along: a planner with every knob at zero over a trivial fleet must
    reproduce lock-step rounds exactly for all four engines.
    """
    rows = {row.engine: row for row in warm_history.rows}
    for name in ("mhrw", "nbrw"):
        assert rows[name].speedup >= _HIST_MIN_SPEEDUP, (
            f"{name} prediction speedup regressed: {rows[name].speedup:.2f}x"
        )
    warm = warm_history.warm
    assert warm.bit_for_bit
    assert warm.savings > 0
    assert warm.warm_hits > 0

    # Per-engine zero-knob probe: planner with every knob at zero over a
    # trivial fleet == lock-step rounds, bit for bit, for every engine.
    zero_knob = {}
    for name in _ENGINE_FACTORIES:
        lock_run = ParallelWalkers(
            _make_chains(network, name)(network.interface())
        ).run(num_samples=_HIST_PROBE_SAMPLES)
        fleet_api = RestrictedSocialAPI(
            build_fleet(
                FleetSpec(num_shards=1, seed=0), network.graph, profiles=network.profiles
            )
        )
        zero_knob_run = EventDrivenWalkers(
            _make_chains(network, name)(fleet_api),
            batching=True,
            planner=DispatchPlanner(lookahead=0, speculation=0),
        ).run(num_samples=_HIST_PROBE_SAMPLES)
        zero_knob[name] = (
            zero_knob_run.samples == lock_run.samples
            and zero_knob_run.queries == lock_run.queries
            and zero_knob_run.sim_elapsed == 0.0
        )
        assert zero_knob[name], name

    report = {
        "benchmark": "history",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "chains": _PLAN_CHAINS,
        "num_samples": warm_history.num_samples,
        "num_shards": _PLAN_SHARDS,
        "skew": _PLAN_SKEW,
        "batch_cap": _PLAN_CAP,
        "admission_interval": _PLAN_ADMISSION,
        "lookahead": _PLAN_LOOKAHEAD,
        "seed": _HIST_SEED,
        "zero_knob_bit_for_bit": zero_knob,
        "engines": _engine_cells(warm_history),
        "warm_start": {
            "recorded_users": warm.recorded_users,
            "cold_cost": warm.cold_cost,
            "warm_cost": warm.warm_cost,
            "savings": warm.savings,
            "warm_users": warm.warm_users,
            "warm_hits": warm.warm_hits,
            "bit_for_bit": warm.bit_for_bit,
        },
    }

    out_path = os.environ.get("BENCH_HISTORY_OUT", "BENCH_history.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"history profile  ->  {out_path}"]
    for name, cell in report["engines"].items():
        lines.append(
            "  {:>4}: {} queries, {:.1f}s -> {:.1f}s ({:.2f}x), "
            "predict {}/{}".format(
                name,
                cell["query_cost"],
                cell["baseline_wall"],
                cell["planned_wall"],
                cell["speedup"],
                cell["prediction_hits"],
                cell["prediction_misses"],
            )
        )
    lines.append(
        "  warm start: cold {} vs warm {} queries (saved {}, {} warm hits)".format(
            warm.cold_cost, warm.warm_cost, warm.savings, warm.warm_hits
        )
    )
    lines.append(f"  zero-knob bit-for-bit: {zero_knob}")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# snapshot/restore throughput profile (machine-readable artifact)
# ----------------------------------------------------------------------

_SNAPSHOT_WALK_STEPS = 4000
_SNAPSHOT_ITERS = 25


def _timed_ops_per_second(fn, iters=_SNAPSHOT_ITERS):
    fn()  # warm-up (first call may touch cold paths)
    t0 = time.perf_counter()
    for _ in range(iters):
        fn()
    return iters / (time.perf_counter() - t0)


def test_snapshot_profile(network, figure_report, tmp_path):
    """Emit ``BENCH_snapshot.json``: snapshot/restore throughput profile.

    Measures, on a walked-in MTO state (overlay + cache + log + RNG):
    capture into a payload, save through the JSON-lines and key-value
    backends, read+restore into a fresh interface/sampler, and the
    snapshot's on-disk footprint.
    """
    api = network.interface()
    mto = MTOSampler(api, start=network.seed_node(0), seed=1)
    for _ in range(_SNAPSHOT_WALK_STEPS):
        mto.step()

    jsonl_path = tmp_path / "bench.snapshot.jsonl"
    jsonl = JsonLinesBackend(jsonl_path)
    kv = KeyValueBackend()
    session = SamplingSession(api, mto, jsonl)

    capture_ops = _timed_ops_per_second(session.capture)
    save_jsonl_ops = _timed_ops_per_second(lambda: jsonl.write(session.capture()))
    save_kv_ops = _timed_ops_per_second(lambda: kv.write(session.capture()))

    restore_api = network.interface()
    restore_mto = MTOSampler(restore_api, start=network.seed_node(0), seed=1)
    restore_session = SamplingSession(restore_api, restore_mto, jsonl)
    restore_jsonl_ops = _timed_ops_per_second(restore_session.resume)
    restore_kv_session = SamplingSession(restore_api, restore_mto, kv)
    restore_kv_ops = _timed_ops_per_second(restore_kv_session.resume)
    assert restore_mto.steps == mto.steps

    snapshot_bytes = os.path.getsize(jsonl_path)
    report = {
        "benchmark": "snapshot",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "walk_steps": _SNAPSHOT_WALK_STEPS,
        "state": {
            "known_nodes": sum(1 for _ in mto.overlay.known_nodes()),
            "query_cost": api.query_cost,
            "total_queries": api.total_queries,
            "snapshot_bytes": snapshot_bytes,
        },
        "ops_per_second": {
            "capture": round(capture_ops, 2),
            "save_jsonl": round(save_jsonl_ops, 2),
            "save_kv": round(save_kv_ops, 2),
            "restore_jsonl": round(restore_jsonl_ops, 2),
            "restore_kv": round(restore_kv_ops, 2),
        },
    }
    for ops in report["ops_per_second"].values():
        assert ops > 0

    out_path = os.environ.get("BENCH_SNAPSHOT_OUT", "BENCH_snapshot.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"snapshot profile  ->  {out_path}"]
    lines.append(
        "  state: {} known nodes, {} unique queries, {:.1f} KiB on disk".format(
            report["state"]["known_nodes"], api.query_cost, snapshot_bytes / 1024
        )
    )
    for op, rate in report["ops_per_second"].items():
        lines.append(f"  {op:>14}: {rate:>8.1f} ops/s")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# multi-tenant service profile (machine-readable artifact)
# ----------------------------------------------------------------------

_SERVICE_TENANTS = 8
_SERVICE_SKEW = 10.0
_SERVICE_SAMPLES = 40
_SERVICE_SEED = 0
_SERVICE_FAIR_RATIO_CEILING = 3.0


def test_service_profile(network, figure_report):
    """Emit ``BENCH_service.json``: the multi-tenant service profile.

    The acceptance metric (ISSUE 6): on an 8-tenant workload where one
    tenant requests 10x everyone else's samples, deficit-round-robin
    admission bounds every tenant's p95 simulated wall-clock per sample
    within 3x of its fair share, at equal-or-lower total §II-B cost than
    FCFS run-to-completion.  Two bit-for-bit probes ride along: a
    single-tenant service must reproduce the direct ``build_stack`` run
    exactly, and a hibernated session must resume indistinguishably from
    one that never hibernated.
    """
    sweep = run_tenant_sweep(
        network,
        tenant_counts=(_SERVICE_TENANTS,),
        skews=(_SERVICE_SKEW,),
        num_samples=_SERVICE_SAMPLES,
        seed=_SERVICE_SEED,
    )
    modes = {("drr" if row.fairness else "fcfs"): row for row in sweep.rows}
    fair, fcfs = modes["drr"], modes["fcfs"]
    assert fair.total_samples == fcfs.total_samples
    assert fair.total_query_cost <= fcfs.total_query_cost, (
        f"fair admission raised the §II-B bill: "
        f"{fair.total_query_cost} vs {fcfs.total_query_cost}"
    )
    assert fair.max_ratio <= _SERVICE_FAIR_RATIO_CEILING, (
        f"fairness bound regressed: worst tenant at {fair.max_ratio:.2f}x "
        f"fair share (ceiling {_SERVICE_FAIR_RATIO_CEILING}x)"
    )

    # Single-tenant equivalence probe: a service hosting one tenant with
    # the default admission policy must reproduce the direct
    # ``build_stack(...).run(...)`` result bit for bit.
    solo_config = StackConfig(
        fleet=FleetSpec(
            num_shards=4,
            seed=3,
            provider=ProviderSpec(
                latency_distribution="constant", latency_scale=0.5
            ),
        ),
        walk=WalkSpec(engine="srw", chains=4, seed=11),
    )
    direct = build_stack(solo_config, network).run(num_samples=120)
    solo_service = SamplingService(network, fleet=solo_config.fleet)
    solo_service.register("solo", solo_config)
    solo_service.request("solo", 120)
    solo_service.run_pending()
    solo = solo_service.tenant("solo").stack.walkers.result()
    single_tenant_bit_for_bit = (
        solo.samples == direct.samples
        and solo.queries == direct.queries
        and solo.sim_elapsed == direct.sim_elapsed
    )
    assert single_tenant_bit_for_bit

    # Hibernate/resume probe: spill mid-request, wake, finish — the
    # result must match a twin service that never hibernated.
    def _run_split(hibernate):
        service = SamplingService(network, fleet=solo_config.fleet)
        service.register("t", solo_config)
        service.request("t", 60)
        service.run_pending()
        if hibernate:
            service.hibernate("t")
        service.request("t", 60)
        service.run_pending()
        return service.tenant("t").stack.walkers.result()

    spilled, straight = _run_split(True), _run_split(False)
    hibernate_resume_bit_for_bit = (
        spilled.samples == straight.samples
        and spilled.queries == straight.queries
        and spilled.sim_elapsed == straight.sim_elapsed
    )
    assert hibernate_resume_bit_for_bit

    report = {
        "benchmark": "service",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "tenants": _SERVICE_TENANTS,
        "skew": _SERVICE_SKEW,
        "num_samples": sweep.num_samples,
        "quantum": sweep.quantum,
        "seed": _SERVICE_SEED,
        "single_tenant_bit_for_bit": single_tenant_bit_for_bit,
        "hibernate_resume_bit_for_bit": hibernate_resume_bit_for_bit,
        "modes": {
            label: {
                "total_samples": row.total_samples,
                "total_query_cost": row.total_query_cost,
                "clock": round(row.clock, 6),
                "fair_share": round(row.fair_share, 6),
                "max_ratio": round(row.max_ratio, 4),
                "hot_ratio": round(row.hot_ratio, 4),
                "shared_cache_hits": row.shared_cache_hits,
            }
            for label, row in modes.items()
        },
    }

    out_path = os.environ.get("BENCH_SERVICE_OUT", "BENCH_service.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"service profile  ->  {out_path}"]
    for label in ("drr", "fcfs"):
        row = modes[label]
        lines.append(
            "  {:>4}: {} queries, clock {:.1f}s, worst tenant {:.2f}x fair "
            "share (hot {:.2f}x)".format(
                label, row.total_query_cost, row.clock, row.max_ratio, row.hot_ratio
            )
        )
    lines.append(f"  single-tenant bit-for-bit: {single_tenant_bit_for_bit}")
    lines.append(f"  hibernate/resume bit-for-bit: {hibernate_resume_bit_for_bit}")
    figure_report("\n".join(lines))


# ----------------------------------------------------------------------
# observability profile (machine-readable trajectory artifact)
# ----------------------------------------------------------------------

_OBS_SAMPLES = 120
_OBS_OVERHEAD_REPEATS = 5
_OBS_OVERHEAD_CEILING = 1.10


def _obs_stack_config():
    """The traced reference stack: skewed 3-shard fleet, 4 SRW chains."""
    return StackConfig(
        fleet=FleetSpec(
            num_shards=3,
            seed=5,
            weights=(0.6, 0.3, 0.1),
            shard_latency_spread=1.0,
            provider=ProviderSpec(
                latency_distribution="constant", latency_scale=0.5
            ),
        ),
        walk=WalkSpec(engine="srw", chains=4, seed=11),
        planner=PlannerSpec(lookahead=2),
    )


def _obs_serial_sps(network):
    """Best-of-N serial SRW steps/s, recorder off vs on.

    The two configurations alternate within each repeat so frequency
    scaling or a noisy neighbour hits both sides equally — the ratio is
    what the gate reads, not the absolute numbers.
    """
    best = {"off": 0.0, "on": 0.0}
    for _ in range(_OBS_OVERHEAD_REPEATS):
        for label in ("off", "on"):
            api = network.interface()
            if label == "on":
                api.set_recorder(TraceRecorder())
            walk = SimpleRandomWalk(api, start=network.seed_node(0), seed=1)
            best[label] = max(best[label], _steps_per_second(walk, steps=2 * _TIMED_STEPS))
    return best["off"], best["on"]


def test_obs_profile(network, figure_report):
    """Emit ``BENCH_obs.json``: the observability subsystem's profile.

    Three gated properties (ISSUE 9): attaching a recorder must not
    change a seeded fleet run's results bit for bit, replaying the trace
    must reproduce the §II-B bill and the per-shard books exactly, and
    the recorder-on serial SRW microbench may cost at most 10% over
    recorder-off.  The traced fleet run's Perfetto timeline is exported
    as a CI artifact (``TRACE_FLEET_OUT``).
    """
    config = _obs_stack_config()
    plain = build_stack(config, network).run(num_samples=_OBS_SAMPLES)
    recorder = TraceRecorder()
    stack = build_stack(config, network, recorder=recorder)
    traced = stack.run(num_samples=_OBS_SAMPLES)
    recorder_on_bit_for_bit = (
        traced.samples == plain.samples
        and traced.queries == plain.queries
        and traced.sim_elapsed == plain.sim_elapsed
    )
    assert recorder_on_bit_for_bit, "attaching a recorder changed the run"

    problems = reconcile_run(recorder, collect_telemetry(stack.api))
    assert problems == [], f"trace failed reconciliation: {problems}"

    trace_path = os.environ.get("TRACE_FLEET_OUT", "TRACE_fleet.json")
    export_chrome_trace(recorder, trace_path)

    off_sps, on_sps = _obs_serial_sps(network)
    overhead_ratio = off_sps / on_sps
    assert overhead_ratio <= _OBS_OVERHEAD_CEILING, (
        f"recorder-on serial SRW costs {overhead_ratio:.2f}x recorder-off "
        f"(ceiling {_OBS_OVERHEAD_CEILING}x)"
    )

    report = {
        "benchmark": "obs",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "num_samples": _OBS_SAMPLES,
        "recorder_on_bit_for_bit": recorder_on_bit_for_bit,
        "reconciled": not problems,
        "trace_events": len(recorder),
        "events_by_name": recorder.summary()["by_name"],
        "query_cost": traced.queries,
        "recorder_off_steps_per_second": round(off_sps),
        "recorder_on_steps_per_second": round(on_sps),
        "overhead_ratio": round(overhead_ratio, 4),
    }

    out_path = os.environ.get("BENCH_OBS_OUT", "BENCH_obs.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    figure_report(
        "obs profile  ->  {}\n"
        "  recorder-on bit-for-bit: {}\n"
        "  trace: {} events reconciled against {} §II-B queries\n"
        "  serial SRW: {:.0f} steps/s off, {:.0f} steps/s on "
        "({:.2f}x overhead)\n"
        "  timeline: {}".format(
            out_path,
            recorder_on_bit_for_bit,
            len(recorder),
            traced.queries,
            off_sps,
            on_sps,
            overhead_ratio,
            trace_path,
        )
    )


# ----------------------------------------------------------------------
# causal profiler profile (machine-readable trajectory artifact)
# ----------------------------------------------------------------------

_CAUSALITY_WATCH_REPEATS = 5
_CAUSALITY_WATCH_CEILING = 1.10


def _causality_config(planner=True):
    """The obs reference stack, with the prefetch planner toggleable."""
    config = _obs_stack_config()
    return StackConfig(
        fleet=config.fleet,
        walk=config.walk,
        planner=PlannerSpec(lookahead=2) if planner else None,
    )


def _causality_watcher(recorder):
    """The reference SLO set the watched runs poll."""
    return SLOWatcher(
        recorder,
        [
            cache_hit_rate_slo(0.99, min_count=10),
            shard_in_flight_slo(0, 6.0),
            retry_rate_slo(0.5, min_count=10),
        ],
    )


def _causality_run(network, planner=True, watch=False):
    """One seeded traced run; returns (recorder, stack, result, watcher)."""
    recorder = TraceRecorder()
    stack = build_stack(_causality_config(planner), network, recorder=recorder)
    watcher = None
    if watch:
        watcher = _causality_watcher(recorder)
        stack.walkers.set_watcher(watcher)
    result = stack.run(num_samples=_OBS_SAMPLES)
    return recorder, stack, result, watcher


def _causality_watch_seconds(network):
    """Best-of-N wall seconds for the traced run, watcher off vs on.

    Alternating within each repeat so machine noise hits both sides
    equally; the gate reads the ratio of the two minima.
    """
    best = {"off": float("inf"), "on": float("inf")}
    for _ in range(_CAUSALITY_WATCH_REPEATS):
        for label in ("off", "on"):
            with _gc_quiesced():
                t0 = time.perf_counter()
                _causality_run(network, watch=(label == "on"))
                best[label] = min(best[label], time.perf_counter() - t0)
    return best["off"], best["on"]


def test_obs_causality_profile(network, figure_report):
    """Emit ``BENCH_obs_causality.json``: the causal profiler's profile.

    Three gated properties (ISSUE 10): the critical-path attribution
    must tile the run's simulated wall-clock bit-for-bit and reconcile
    against the telemetry books, the planner-on/off trace diff must name
    planner prefetching as the dominant causal driver, and attaching an
    SLO watcher must leave samples and billing bit-for-bit identical at
    no more than 10% real-time overhead.  The profiled trace is exported
    as a CI artifact (``TRACE_CAUSALITY_OUT``).
    """
    from repro.interface.telemetry import collect_telemetry as _telemetry
    from repro.obs import export_jsonl

    recorder_on, stack_on, result_on, _ = _causality_run(network, planner=True)
    attribution = attribute_run(recorder_on)
    attribution_reconciles = (
        attribution.wall_clock == stack_on.walkers.simulated_elapsed
        and reconcile_attribution(attribution, telemetry=_telemetry(stack_on.api)) == []
    )
    assert attribution_reconciles, "critical-path attribution failed to reconcile"

    recorder_off, _, result_off, _ = _causality_run(network, planner=False)
    diff = diff_traces(
        recorder_off, recorder_on, label_a="planner-off", label_b="planner-on"
    )
    assert diff.dominant_driver == "planner_prefetch", (
        f"trace diff blamed {diff.dominant_driver!r}, expected planner prefetch"
    )

    _, _, watched, watcher = _causality_run(network, planner=True, watch=True)
    watcher_bit_for_bit = (
        watched.samples == result_on.samples
        and watched.queries == result_on.queries
        and watched.sim_elapsed == result_on.sim_elapsed
    )
    assert watcher_bit_for_bit, "attaching an SLO watcher changed the run"

    off_seconds, on_seconds = _causality_watch_seconds(network)
    watcher_overhead_ratio = on_seconds / off_seconds
    assert watcher_overhead_ratio <= _CAUSALITY_WATCH_CEILING, (
        f"watcher-on run costs {watcher_overhead_ratio:.2f}x watcher-off "
        f"(ceiling {_CAUSALITY_WATCH_CEILING}x)"
    )

    trace_path = os.environ.get("TRACE_CAUSALITY_OUT", "TRACE_causality.jsonl")
    export_jsonl(recorder_on, trace_path)

    report = {
        "benchmark": "obs_causality",
        "dataset": {"name": "epinions_like", "seed": 0, "scale": 0.3},
        "python": ".".join(str(p) for p in sys.version_info[:3]),
        "num_samples": _OBS_SAMPLES,
        "attribution_reconciles": attribution_reconciles,
        "wall_clock": attribution.wall_clock,
        "categories": {k: round(v, 6) for k, v in attribution.categories.items()},
        "counts": dict(attribution.counts),
        "path_segments": attribution.counts["path_segments"],
        "diff": diff.to_dict(),
        "dominant_driver": diff.dominant_driver,
        "watcher_bit_for_bit": watcher_bit_for_bit,
        "watcher_breaches": len(watcher.breaches),
        "watcher_overhead_ratio": round(watcher_overhead_ratio, 4),
    }

    out_path = os.environ.get("BENCH_OBS_CAUSALITY_OUT", "BENCH_obs_causality.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    figure_report(
        "causality profile  ->  {}\n"
        "  attribution: {:.3f}s wall tiled into {} exclusive segments, "
        "reconciled {}\n"
        "  diff: planner-on {:+.3f}s vs planner-off, dominant driver {}\n"
        "  watcher: bit-for-bit {}, {} breaches, {:.2f}x overhead\n"
        "  trace: {}".format(
            out_path,
            attribution.wall_clock,
            attribution.counts["path_segments"],
            attribution_reconciles,
            diff.wall_delta,
            diff.dominant_driver,
            watcher_bit_for_bit,
            len(watcher.breaches),
            watcher_overhead_ratio,
            trace_path,
        )
    )
