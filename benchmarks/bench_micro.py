"""Micro-benchmarks: per-operation costs of the hot paths.

These are classic pytest-benchmark timing runs (many iterations) for the
operations that dominate experiment wall-clock: walk steps, the removal
criterion, overlay materialization, conductance search, and SLEM.
"""

import pytest

from repro.analysis.conductance import min_conductance_exact, sweep_conductance
from repro.analysis.spectral import slem
from repro.core.criteria import removal_criterion
from repro.core.mto import MTOSampler
from repro.datasets import load
from repro.generators import barbell_graph, paper_barbell
from repro.interface import RestrictedSocialAPI
from repro.walks import SimpleRandomWalk


@pytest.fixture(scope="module")
def network():
    return load("epinions_like", seed=0, scale=0.3)


def test_srw_step(benchmark, network):
    api = network.interface()
    walk = SimpleRandomWalk(api, start=network.seed_node(0), seed=1)
    benchmark(walk.step)


def test_mto_step(benchmark, network):
    api = network.interface()
    mto = MTOSampler(api, start=network.seed_node(0), seed=1)
    benchmark(mto.step)


def test_removal_criterion(benchmark):
    benchmark(removal_criterion, 9, 10, 11)


def test_exact_conductance_barbell12(benchmark):
    g = barbell_graph(6)  # 12 nodes → 2^11 Gray-code states
    benchmark(min_conductance_exact, g)


def test_sweep_conductance_standin(benchmark, network):
    benchmark(sweep_conductance, network.graph)


def test_slem_barbell(benchmark):
    g = paper_barbell()
    benchmark(slem, g)
