"""Benchmark: the running example (barbell rewiring pipeline, §II–III)."""

from repro.experiments import run_running_example


def test_running_example(benchmark, figure_report):
    result = benchmark.pedantic(
        run_running_example, kwargs={"seed": 0, "walk_overlay": True}, iterations=1, rounds=1
    )
    figure_report(str(result))
    # Paper: Φ(G) = 0.018; rewiring must monotonically improve it.
    assert abs(result.phi_g - 1 / 56) < 1e-9
    assert result.phi_g_star >= result.phi_g
    assert result.phi_g_star_star >= result.phi_g_star - 1e-12
    # The mixing bound must shrink (paper reports −89% / −97%; the strict
    # Theorem 3 fixpoint yields a smaller but strictly positive cut —
    # see EXPERIMENTS.md).
    assert 0 < result.mixing_reduction_removal < 1
    assert result.mixing_reduction_overall >= result.mixing_reduction_removal - 1e-12
