"""Benchmark: Figure 9 — Geweke threshold sweep on Slashdot B.

Expected shape (paper): query cost decreases as the threshold loosens;
bias (KL) trends the other way; MTO's bias stays at or below SRW's band.
"""

from repro.experiments import run_fig9


def test_fig9(benchmark, figure_report):
    result = benchmark.pedantic(
        run_fig9,
        kwargs={
            "thresholds": (0.2, 0.4, 0.6, 0.8),
            "num_samples": 6000,
            "runs": 3,
            "scale": 0.4,
            "seed": 0,
            "max_steps": 30_000,
        },
        iterations=1,
        rounds=1,
    )
    figure_report(str(result))
    # Cost is non-increasing in the threshold (within 20% noise), for both.
    for series in (result.qc_srw, result.qc_mto):
        assert series[-1] <= series[0] * 1.2
    # The strictest threshold yields the least bias for each sampler.
    assert result.kl_srw[0] <= max(result.kl_srw) + 1e-9
    assert result.kl_mto[0] <= max(result.kl_mto) + 1e-9
