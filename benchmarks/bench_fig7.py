"""Benchmark: Figure 7 — query cost vs relative error, four samplers.

Expected shape (paper): MTO needs fewer queries than SRW at the strict
end of the error axis on every dataset; MHRW costs more than SRW.
"""

from repro.experiments import run_fig7


def test_fig7(benchmark, figure_report):
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"runs": 12, "num_samples": 1500, "scale": 0.5, "seed": 0},
        iterations=1,
        rounds=1,
    )
    figure_report(str(result))

    wins = 0
    comparisons = 0
    for name, (errors, series) in result.datasets.items():
        # Strictest error level is the last grid entry.
        srw_cost = series["SRW"][-1]
        mto_cost = series["MTO"][-1]
        comparisons += 1
        if mto_cost <= srw_cost * 1.1:
            wins += 1
        # Cost grids are non-decreasing toward stricter errors.
        for s in series.values():
            assert s[-1] >= s[0] - 1e-9
    # MTO at or below SRW (within 10%) at the strict end on a majority of
    # datasets — the paper's headline ordering.
    assert wins * 2 >= comparisons
