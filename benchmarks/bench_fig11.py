"""Benchmark: Figure 11 — the Google Plus (online network) protocol.

Expected shape (paper): SRW and MTO converge to compatible values (11a);
MTO spends fewer queries than SRW at most error levels for the average
degree (11b) and stays competitive for the self-description length (11c).
"""

from repro.experiments import run_fig11


def test_fig11(benchmark, figure_report):
    result = benchmark.pedantic(
        run_fig11,
        kwargs={"runs": 8, "num_samples": 2500, "scale": 0.5, "seed": 0},
        iterations=1,
        rounds=1,
    )
    figure_report(str(result))
    srw_val = result.converged_degree["SRW"]
    mto_val = result.converged_degree["MTO"]
    # The two samplers must agree on the presumptive truth within 15%.
    assert abs(srw_val - mto_val) / srw_val < 0.15
    # Panels (b)+(c): compare only non-trivial error levels (loose levels
    # are satisfied within a handful of queries for every sampler, so
    # their ordering is noise).  The converged-value protocol makes any
    # single panel noisy run-to-run — the paper's own panels share one
    # crawl — so the check pools both aggregates and allows 40% slack;
    # EXPERIMENTS.md reports the per-panel numbers.
    contested = [
        (s, m)
        for costs in (result.degree_costs, result.desc_costs)
        for s, m in zip(costs["SRW"], costs["MTO"])
        if max(s, m) >= 20
    ]
    assert contested, "error grid never left the trivial regime"
    srw_mean = sum(s for s, _ in contested) / len(contested)
    mto_mean = sum(m for _, m in contested) / len(contested)
    assert mto_mean <= srw_mean * 1.4
