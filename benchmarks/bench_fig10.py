"""Benchmark: Figure 10 — theoretical mixing time on latent space graphs.

Expected shape (paper): every MTO variant's overlay mixes no slower than
the original graph; MTO_Both is the fastest of the three; the Theorem 6
bound is conservative (sits between Original and the measured overlays).
"""

import math

from repro.experiments import run_fig10


def test_fig10(benchmark, figure_report):
    result = benchmark.pedantic(
        run_fig10,
        kwargs={"node_counts": (50, 55, 60, 65, 70, 75), "runs": 3, "seed": 0},
        iterations=1,
        rounds=1,
    )
    figure_report(str(result))
    n_points = len(result.node_counts)
    both_wins = rm_ok = 0
    for i in range(n_points):
        original = result.series["Original"][i]
        assert math.isfinite(original)
        # Theorem 6's bound predicts an improvement.
        assert result.series["Theoretical"][i] <= original + 1e-9
        if result.series["MTO_Both"][i] <= original * 1.05:
            both_wins += 1
        if result.series["MTO_RM"][i] <= original * 1.05:
            rm_ok += 1
    # MTO never decreases conductance, so its mixing time should be at or
    # below the original on (nearly) every point.
    assert both_wins >= n_points - 1
    assert rm_ok >= n_points - 1
