"""Benchmark: regenerate Table I (dataset statistics)."""

from repro.experiments import run_table1


def test_table1(benchmark, figure_report):
    result = benchmark.pedantic(
        run_table1, kwargs={"seed": 0, "scale": 0.5}, iterations=1, rounds=1
    )
    figure_report(str(result))
    assert len(result.rows) == 4
    for row in result.rows:
        assert row.num_nodes > 0
        assert row.num_edges > row.num_nodes  # denser than a tree
        # OSN signature: small effective diameter, non-trivial clustering.
        assert row.effective_diameter_90 < 10
        assert row.average_clustering > 0.2
