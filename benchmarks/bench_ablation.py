"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three axes, each measured on the Epinions-like stand-in:

1. **Rewiring rules** — removal only / replacement only / both / neither
   (= plain lazy-less SRW): trace-side mixing (integrated autocorrelation
   time of the degree trace) per configuration;
2. **Theorem 5 degree cache** — removals certified with and without the
   cached-degree extension;
3. **Algorithm 1's lazy coin** — query cost per committed move with the
   literal lazy loop vs. the default.
"""

import pytest

from repro.analysis.walk_stats import integrated_autocorrelation_time
from repro.core.mto import MTOSampler
from repro.datasets import load
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def network():
    return load("epinions_like", seed=0, scale=0.4)


def _trace_iat(network, steps=4000, **mto_kwargs) -> tuple:
    api = network.interface()
    sampler = MTOSampler(api, start=network.seed_node(3), seed=11, **mto_kwargs)
    for _ in range(steps):
        sampler.step()
    iat = integrated_autocorrelation_time(list(sampler.trace))
    return iat, api.query_cost, sampler.overlay.removal_count


def test_ablation_rewiring_rules(benchmark, figure_report, network):
    def run():
        rows = []
        for label, kwargs in [
            ("both", {}),
            ("removal_only", {"enable_replacement": False}),
            ("replacement_only", {"enable_removal": False}),
            ("neither (SRW)", {"enable_removal": False, "enable_replacement": False}),
        ]:
            iat, cost, removals = _trace_iat(network, **kwargs)
            rows.append((label, iat, cost, removals))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    figure_report(
        format_table(
            ["config", "trace_IAT", "query_cost", "removals"],
            rows,
            title="Ablation — rewiring rules (Epinions-like, 4000 steps)",
        )
    )
    by_label = {label: iat for label, iat, _, _ in rows}
    # Removal must not make mixing worse than the plain walk by more than
    # noise; it usually improves it.
    assert by_label["removal_only"] <= by_label["neither (SRW)"] * 1.5


def test_ablation_degree_cache(benchmark, figure_report, network):
    def run():
        rows = []
        for label, kwargs in [
            ("theorem3_only", {"use_degree_cache": False}),
            ("theorem5_cache", {"use_degree_cache": True}),
        ]:
            iat, cost, removals = _trace_iat(network, **kwargs)
            rows.append((label, iat, cost, removals))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    figure_report(
        format_table(
            ["config", "trace_IAT", "query_cost", "removals"],
            rows,
            title="Ablation — Theorem 5 degree cache",
        )
    )
    # Per-run removal counts are stochastic (the walks diverge after the
    # first differing decision), so the dominance claim — Theorem 5 with
    # knowledge certifies a superset of Theorem 3 — is checked
    # deterministically per edge on the underlying graph.
    from repro.core.criteria import is_removable

    g = network.graph
    degrees = {v: g.degree(v) for v in g.nodes()}
    t3 = {e for e in g.edges() if is_removable(g, *e)}
    t5 = {e for e in g.edges() if is_removable(g, *e, cached_degrees=degrees)}
    assert t3 <= t5
    assert len(t5) >= len(t3)


def test_ablation_lazy_coin(benchmark, figure_report, network):
    def run():
        rows = []
        for label, kwargs in [("non_lazy (default)", {}), ("lazy (Algorithm 1)", {"lazy": True})]:
            api = network.interface()
            sampler = MTOSampler(
                api, start=network.seed_node(5), seed=13, **kwargs
            )
            for _ in range(1500):
                sampler.step()
            rows.append((label, api.query_cost, api.query_cost / 1500))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    figure_report(
        format_table(
            ["config", "query_cost", "cost_per_move"],
            rows,
            title="Ablation — Algorithm 1's lazy coin (1500 committed moves)",
        )
    )
    cost = {label: c for label, c, _ in rows}
    # The lazy loop bills at least as many unique queries per move.
    assert cost["lazy (Algorithm 1)"] >= cost["non_lazy (default)"] * 0.9
