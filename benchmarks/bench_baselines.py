"""Benchmark: all samplers head-to-head, including the related-work ones.

Not a paper figure — an extension table comparing the paper's four
algorithms plus the non-backtracking walk (ref. [14]) and a naive BFS
crawler at a fixed query budget, reporting each estimator's relative error
for the average degree.  Demonstrates the two facts the paper leans on:
crawlers are biased, and walk choice changes cost.
"""


from repro.aggregates.queries import AggregateQuery, ground_truth
from repro.core.estimators import estimate
from repro.datasets import load
from repro.errors import DeadEndError
from repro.experiments.runner import make_sampler
from repro.utils.tables import format_table
from repro.walks import BFSCrawler


def test_all_samplers_at_fixed_budget(benchmark, figure_report):
    net = load("epinions_like", seed=0, scale=0.4)
    query = AggregateQuery.average_degree()
    truth = ground_truth(query, net.graph)
    budget = 400

    def run():
        rows = []
        for name in ("SRW", "MTO", "MHRW", "RJ", "NBRW"):
            errs = []
            for seed in range(5):
                sampler = make_sampler(name, net, seed=seed)
                result = sampler.run(num_samples=3000, max_steps=20_000)
                # truncate samples to the fixed budget
                samples = [s for s in result.samples if s.query_cost <= budget]
                if not samples:
                    continue
                est = estimate(query, samples, sampler.api)
                errs.append(abs(est.estimate - truth) / truth)
            rows.append((name, sum(errs) / len(errs)))
        # Naive BFS crawl with an unweighted mean — the biased baseline.
        bfs_errs = []
        for seed in range(5):
            api = net.interface()
            crawler = BFSCrawler(api, start=net.seed_node(seed), seed=seed)
            degrees = []
            try:
                while api.query_cost < budget:
                    node = crawler.step()
                    degrees.append(net.graph.degree(node))
            except DeadEndError:
                pass
            bfs_errs.append(abs(sum(degrees) / len(degrees) - truth) / truth)
        rows.append(("BFS (naive)", sum(bfs_errs) / len(bfs_errs)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    figure_report(
        format_table(
            ["sampler", "mean_rel_error"],
            rows,
            title=f"Extension — all samplers at a {budget}-query budget "
            f"(avg degree, truth {truth:.2f})",
        )
    )
    errors = dict(rows)
    # The walk-based estimators must all beat the naive BFS crawl.
    for name in ("SRW", "MTO", "NBRW"):
        assert errors[name] < errors["BFS (naive)"]
