"""Benchmark-regression gate: fresh ``BENCH_*.json`` vs committed baselines.

CI regenerates the machine-readable benchmark profiles on every run; this
script compares them against the baselines committed under
``benchmarks/baselines/`` and exits non-zero on regression, so a PR that
slows a hot path or erodes the scheduler's latency win fails its build.

Two kinds of metrics, two kinds of tolerance:

* **wall-time metrics** (steps/s) vary with CI hardware — the gate only
  fails when a fresh value drops below ``1 - throughput_tolerance``
  (default 50%) of baseline, a band wide enough for runner jitter but
  narrow enough to catch an accidental O(k log k) hot path;
* **simulated metrics** (queries/sample, scheduler wall-clock per sample,
  speedup) are seeded and hardware-independent — they are gated inside a
  tight ``simulated_tolerance`` band (default 2%), the scheduler speedup
  additionally has the ISSUE 3 hard floor of 2x, the fleet
  batch-coalescing speedup the ISSUE 4 hard floor of 1.5x, the
  history-aware planning speedup the ISSUE 5 hard floor of 1.5x at
  equal-or-lower §II-B cost, the multi-tenant service profile the
  ISSUE 6 hard ceiling of 3x fair share on the worst tenant's p95
  per-sample pace at equal-or-lower §II-B cost than FCFS, the
  walk-engine parallel rows the ISSUE 7 requirement that prefetch-on is
  equal-or-faster than prefetch-off (same-run comparison, slim jitter
  band) at equal-or-lower §II-B cost, and the history profile the
  ISSUE 8 requirements: per-engine §II-B cost parity under cost-neutral
  planning, a 1.5x prediction-speedup floor for MHRW/NBRW, per-engine
  zero-knob bit-for-bit probes, and strictly positive warm-start
  savings with per-chain bit-for-bit warm determinism; the
  observability profile carries the ISSUE 9 requirements: attaching a
  trace recorder must leave a seeded fleet run bit-for-bit identical,
  replaying its trace must reproduce the §II-B bill exactly, and the
  recorder-on serial microbench may cost at most 10% over recorder-off
  (a same-run ratio, so it is hardware-independent enough to gate); the
  causal-profiler profile carries the ISSUE 10 requirements: the
  critical-path attribution must tile the simulated wall-clock exactly
  against the telemetry books, the planner-on/off reference diff must
  blame planner prefetching, and an attached SLO watcher must be
  bit-for-bit invisible at no more than 10% wall-time overhead.  When a
  planning/service/obs check fails with both causality traces on disk,
  the gate appends a one-paragraph critical-path diff explaining which
  category moved.

Usage::

    python benchmarks/regression_gate.py --baseline-dir benchmarks/baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

#: Hard floor on the heavy-tailed scheduler speedup (ISSUE 3 acceptance).
MIN_SCHEDULER_SPEEDUP = 2.0

#: Hard floor on the fleet batch-coalescing speedup (ISSUE 4 acceptance).
MIN_FLEET_BATCH_SPEEDUP = 1.5

#: Hard floor on the history-aware planning speedup (ISSUE 5 acceptance).
MIN_PLANNING_SPEEDUP = 1.5

#: Hard floor on the data-dependent engines' prediction speedup over the
#: skewed fleet (ISSUE 8 acceptance).  SRW already clears it; MHRW and
#: NBRW are the engines whose §II-B fetches only became predictable with
#: auxiliary-state replay, so they are the gated pair.
MIN_HISTORY_ENGINE_SPEEDUP = 1.5

#: Engines gated on the history-profile speedup floor.
HISTORY_SPEEDUP_ENGINES = ("mhrw", "nbrw")

#: Hard ceiling on the worst tenant's p95 pace over fair share under
#: deficit-round-robin admission (ISSUE 6 acceptance).
MAX_SERVICE_FAIR_RATIO = 3.0

#: Hard ceiling on the recorder-on / recorder-off serial SRW throughput
#: ratio (ISSUE 9 acceptance).  Both runs execute back to back on one
#: runner, so — like the prefetch parity floor — the ratio gates real
#: instrumentation cost, not CI hardware.
MAX_OBS_OVERHEAD_RATIO = 1.10

#: Hard ceiling on the watcher-on / watcher-off traced-run wall-time
#: ratio (ISSUE 10 acceptance).  Interleaved best-of-N on one runner, so
#: the ratio gates real SLO-poll cost, not CI hardware.
MAX_WATCHER_OVERHEAD_RATIO = 1.10

#: The causal driver the planner-on/off reference diff must name
#: (ISSUE 10 acceptance): planner prefetching converts provider round
#: trips into free cache-hit steps, and the diff must say so.
EXPECTED_DIFF_DRIVER = "planner_prefetch"

#: Same-process prefetch-on/prefetch-off throughput parity floor (ISSUE 7
#: acceptance).  Both runs execute back to back on one runner, so the
#: band only needs to absorb genuine prediction work: since ISSUE 8 every
#: engine replays its own RNG (MTO replays overlay branches) per round,
#: which on the zero-latency bench fixture is measurable overhead traded
#: against round trips that cost nothing here.  The floor still catches
#: the 2x-slower over-fetching pathology the gate was built for.
MIN_PREFETCH_THROUGHPUT_PARITY = 0.7

#: Engines whose parallel rows are gated on throughput parity.  Every
#: engine now carries a real replay predictor (ISSUE 8), so prediction
#: work per round is genuine overhead traded against round trips that
#: cost nothing on the zero-latency bench fixture; parallel MTO — the
#: ISSUE 7 headline regression — stays gated as the canary while the
#: other engines are gated on §II-B cost parity only.
PREFETCH_PARITY_ENGINES = ("mto",)


def _load(path: Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def check_walk_engine(
    fresh: dict,
    baseline: dict,
    throughput_tolerance: float = 0.5,
    simulated_tolerance: float = 0.02,
) -> List[str]:
    """Failures for the walk-engine profile (empty list = gate passes)."""
    failures = []
    for name, base_engine in baseline.get("engines", {}).items():
        fresh_engine = fresh.get("engines", {}).get(name)
        if fresh_engine is None:
            failures.append(f"walk_engine: engine {name!r} missing from fresh profile")
            continue
        floor = base_engine["steps_per_second"] * (1.0 - throughput_tolerance)
        if fresh_engine["steps_per_second"] < floor:
            failures.append(
                "walk_engine: {} throughput regressed: {} steps/s < {:.0f} "
                "({}% band around baseline {})".format(
                    name,
                    fresh_engine["steps_per_second"],
                    floor,
                    int(throughput_tolerance * 100),
                    base_engine["steps_per_second"],
                )
            )
        base_qps = base_engine["queries_per_sample"]
        drift = abs(fresh_engine["queries_per_sample"] - base_qps)
        if drift > simulated_tolerance * base_qps:
            failures.append(
                "walk_engine: {} queries/sample drifted: {} vs baseline {} "
                "(simulated metric, tolerance {:.0%})".format(
                    name,
                    fresh_engine["queries_per_sample"],
                    base_qps,
                    simulated_tolerance,
                )
            )
    # Per-engine parallel rows: prefetch-on must be equal-or-faster at
    # equal-or-lower §II-B cost (ISSUE 7), and each engine's prefetch-off
    # throughput must hold its hardware-banded floor vs baseline.
    fresh_parallel = fresh.get("parallel", {}).get("engines", {})
    for name, base_rows in baseline.get("parallel", {}).get("engines", {}).items():
        fresh_rows = fresh_parallel.get(name)
        if fresh_rows is None:
            failures.append(f"walk_engine: parallel engine {name!r} missing from fresh profile")
            continue
        off, on = fresh_rows["prefetch_off"], fresh_rows["prefetch_on"]
        if on["query_cost"] > off["query_cost"]:
            failures.append(
                "walk_engine: parallel {} prefetch raised the §II-B bill: "
                "{} vs {} with prefetch off".format(
                    name, on["query_cost"], off["query_cost"]
                )
            )
        parity_floor = MIN_PREFETCH_THROUGHPUT_PARITY * off["chain_steps_per_second"]
        if name in PREFETCH_PARITY_ENGINES and on["chain_steps_per_second"] < parity_floor:
            failures.append(
                "walk_engine: parallel {} prefetch-on throughput {} chain-steps/s "
                "below {:.0f} ({:.0%} of same-run prefetch-off {})".format(
                    name,
                    on["chain_steps_per_second"],
                    parity_floor,
                    MIN_PREFETCH_THROUGHPUT_PARITY,
                    off["chain_steps_per_second"],
                )
            )
        base_off = base_rows["prefetch_off"]
        floor = base_off["chain_steps_per_second"] * (1.0 - throughput_tolerance)
        if off["chain_steps_per_second"] < floor:
            failures.append(
                "walk_engine: parallel {} throughput regressed: {} chain-steps/s "
                "< {:.0f} ({}% band around baseline {})".format(
                    name,
                    off["chain_steps_per_second"],
                    floor,
                    int(throughput_tolerance * 100),
                    base_off["chain_steps_per_second"],
                )
            )
        drift = abs(off["query_cost"] - base_off["query_cost"])
        if drift > simulated_tolerance * base_off["query_cost"]:
            failures.append(
                "walk_engine: parallel {} query cost drifted: {} vs baseline {} "
                "(simulated metric, tolerance {:.0%})".format(
                    name, off["query_cost"], base_off["query_cost"], simulated_tolerance
                )
            )
    return failures


def check_scheduler(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    min_speedup: float = MIN_SCHEDULER_SPEEDUP,
) -> List[str]:
    """Failures for the scheduler profile (empty list = gate passes)."""
    failures = []
    if not fresh.get("zero_latency_bit_for_bit", False):
        failures.append("scheduler: zero-latency bit-for-bit equivalence no longer holds")
    heavy = fresh.get("distributions", {}).get("heavy_tailed")
    if heavy is None:
        return failures + ["scheduler: heavy_tailed distribution missing from fresh profile"]
    if heavy["speedup"] < min_speedup:
        failures.append(
            f"scheduler: heavy-tailed speedup {heavy['speedup']:.2f}x "
            f"below the {min_speedup:.1f}x floor"
        )
    for name, base_row in baseline.get("distributions", {}).items():
        fresh_row = fresh.get("distributions", {}).get(name)
        if fresh_row is None:
            failures.append(f"scheduler: distribution {name!r} missing from fresh profile")
            continue
        for metric in ("event_wall_per_sample", "speedup", "query_cost"):
            base_value = base_row[metric]
            allowed = simulated_tolerance * abs(base_value)
            # wall-clock and cost regress upward; speedup regresses downward
            worse = (
                base_value - fresh_row[metric]
                if metric == "speedup"
                else fresh_row[metric] - base_value
            )
            if worse > allowed:
                failures.append(
                    "scheduler: {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        name, metric, fresh_row[metric], base_value, simulated_tolerance
                    )
                )
    return failures


def check_fleet(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    min_speedup: float = MIN_FLEET_BATCH_SPEEDUP,
) -> List[str]:
    """Failures for the fleet profile (empty list = gate passes)."""
    failures = []
    if not fresh.get("zero_latency_bit_for_bit", False):
        failures.append("fleet: zero-latency bit-for-bit equivalence no longer holds")
    coalesced = fresh.get("caps", {}).get("8")
    uncoalesced = fresh.get("caps", {}).get("1")
    if coalesced is None or uncoalesced is None:
        return failures + ["fleet: cap rows missing from fresh profile"]
    if coalesced["query_cost"] != uncoalesced["query_cost"]:
        failures.append(
            "fleet: coalescing changed the §II-B bill: {} vs {}".format(
                coalesced["query_cost"], uncoalesced["query_cost"]
            )
        )
    if coalesced["speedup_vs_uncoalesced"] < min_speedup:
        failures.append(
            f"fleet: batch-coalescing speedup {coalesced['speedup_vs_uncoalesced']:.2f}x "
            f"below the {min_speedup:.1f}x floor"
        )
    for cap, base_row in baseline.get("caps", {}).items():
        fresh_row = fresh.get("caps", {}).get(cap)
        if fresh_row is None:
            failures.append(f"fleet: cap {cap!r} missing from fresh profile")
            continue
        for metric in ("wall_per_sample", "speedup_vs_uncoalesced", "query_cost"):
            base_value = base_row[metric]
            allowed = simulated_tolerance * abs(base_value)
            # wall-clock and cost regress upward; speedup regresses downward
            worse = (
                base_value - fresh_row[metric]
                if metric == "speedup_vs_uncoalesced"
                else fresh_row[metric] - base_value
            )
            if worse > allowed:
                failures.append(
                    "fleet: cap {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        cap, metric, fresh_row[metric], base_value, simulated_tolerance
                    )
                )
    return failures


def check_planning(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    min_speedup: float = MIN_PLANNING_SPEEDUP,
) -> List[str]:
    """Failures for the planning profile (empty list = gate passes)."""
    failures = []
    if not fresh.get("zero_knob_bit_for_bit", False):
        failures.append("planning: zero-knob bit-for-bit equivalence no longer holds")
    plain = fresh.get("cells", {}).get("lookahead_0_off")
    lookahead = fresh.get("lookahead")
    planned = fresh.get("cells", {}).get(f"lookahead_{lookahead}_off")
    if plain is None or planned is None:
        return failures + ["planning: baseline/planned cells missing from fresh profile"]
    if planned["query_cost"] > plain["query_cost"]:
        failures.append(
            "planning: prefetch raised the §II-B bill: {} vs {}".format(
                planned["query_cost"], plain["query_cost"]
            )
        )
    if planned["prefetch_issued"] != (
        planned["prefetch_used"] + planned["prefetch_wasted"]
    ):
        failures.append(
            "planning: prefetch ledger does not balance: {} issued vs {} used + {} wasted".format(
                planned["prefetch_issued"],
                planned["prefetch_used"],
                planned["prefetch_wasted"],
            )
        )
    if planned["speedup_vs_plain"] < min_speedup:
        failures.append(
            f"planning: speedup {planned['speedup_vs_plain']:.2f}x "
            f"below the {min_speedup:.1f}x floor"
        )
    # Per-engine prediction rows (ISSUE 8): cost-neutral planning must
    # hold §II-B cost parity for every engine, and neither the cost nor
    # the prediction speedup may drift past the simulated band.
    for name, base_cell in baseline.get("engines", {}).items():
        fresh_cell = fresh.get("engines", {}).get(name)
        if fresh_cell is None:
            failures.append(f"planning: engine {name!r} missing from fresh profile")
            continue
        if not fresh_cell.get("cost_parity", False):
            failures.append(
                f"planning: engine {name} lost §II-B cost parity under planning"
            )
        for metric, regresses_up in (("query_cost", True), ("speedup", False)):
            base_value = base_cell[metric]
            allowed = simulated_tolerance * abs(base_value)
            worse = (
                fresh_cell[metric] - base_value
                if regresses_up
                else base_value - fresh_cell[metric]
            )
            if worse > allowed:
                failures.append(
                    "planning: engine {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        name, metric, fresh_cell[metric], base_value, simulated_tolerance
                    )
                )
    for cell, base_row in baseline.get("cells", {}).items():
        fresh_row = fresh.get("cells", {}).get(cell)
        if fresh_row is None:
            failures.append(f"planning: cell {cell!r} missing from fresh profile")
            continue
        for metric in ("wall_per_sample", "speedup_vs_plain", "query_cost"):
            base_value = base_row[metric]
            allowed = simulated_tolerance * abs(base_value)
            # wall-clock and cost regress upward; speedup regresses downward
            worse = (
                base_value - fresh_row[metric]
                if metric == "speedup_vs_plain"
                else fresh_row[metric] - base_value
            )
            if worse > allowed:
                failures.append(
                    "planning: cell {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        cell, metric, fresh_row[metric], base_value, simulated_tolerance
                    )
                )
    return failures


def check_history(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    min_engine_speedup: float = MIN_HISTORY_ENGINE_SPEEDUP,
) -> List[str]:
    """Failures for the warm-history profile (empty list = gate passes)."""
    failures = []
    zero_knob = fresh.get("zero_knob_bit_for_bit", {})
    for name, held in sorted(zero_knob.items()):
        if not held:
            failures.append(
                f"history: {name} zero-knob bit-for-bit equivalence no longer holds"
            )
    for name, base_cell in baseline.get("engines", {}).items():
        fresh_cell = fresh.get("engines", {}).get(name)
        if fresh_cell is None:
            failures.append(f"history: engine {name!r} missing from fresh profile")
            continue
        if not fresh_cell.get("cost_parity", False):
            failures.append(
                f"history: engine {name} lost §II-B cost parity under planning"
            )
        if zero_knob and name not in zero_knob:
            failures.append(f"history: engine {name} has no zero-knob probe result")
        if (
            name in HISTORY_SPEEDUP_ENGINES
            and fresh_cell["speedup"] < min_engine_speedup
        ):
            failures.append(
                "history: {} prediction speedup {:.2f}x below the {:.1f}x floor".format(
                    name, fresh_cell["speedup"], min_engine_speedup
                )
            )
        for metric, regresses_up in (("query_cost", True), ("speedup", False)):
            base_value = base_cell[metric]
            allowed = simulated_tolerance * abs(base_value)
            worse = (
                fresh_cell[metric] - base_value
                if regresses_up
                else base_value - fresh_cell[metric]
            )
            if worse > allowed:
                failures.append(
                    "history: engine {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        name, metric, fresh_cell[metric], base_value, simulated_tolerance
                    )
                )
    warm = fresh.get("warm_start")
    if warm is None:
        return failures + ["history: warm_start section missing from fresh profile"]
    if not warm.get("bit_for_bit", False):
        failures.append(
            "history: warm-started run diverged from cold (per-chain bit-for-bit)"
        )
    if warm.get("warm_cost", 0) >= warm.get("cold_cost", 0):
        failures.append(
            "history: warm start saved nothing: {} warm vs {} cold §II-B queries".format(
                warm.get("warm_cost"), warm.get("cold_cost")
            )
        )
    base_warm = baseline.get("warm_start", {})
    if base_warm:
        base_savings = base_warm.get("savings", 0)
        allowed = simulated_tolerance * abs(base_savings)
        if base_savings - warm.get("savings", 0) > allowed:
            failures.append(
                "history: warm-start savings regressed: {} vs baseline {} "
                "(simulated metric, tolerance {:.0%})".format(
                    warm.get("savings"), base_savings, simulated_tolerance
                )
            )
    return failures


def check_service(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    max_fair_ratio: float = MAX_SERVICE_FAIR_RATIO,
) -> List[str]:
    """Failures for the multi-tenant service profile (empty list = pass)."""
    failures = []
    for probe in ("single_tenant_bit_for_bit", "hibernate_resume_bit_for_bit"):
        if not fresh.get(probe, False):
            failures.append(
                f"service: {probe.replace('_', ' ')} equivalence no longer holds"
            )
    fair = fresh.get("modes", {}).get("drr")
    fcfs = fresh.get("modes", {}).get("fcfs")
    if fair is None or fcfs is None:
        return failures + ["service: drr/fcfs mode rows missing from fresh profile"]
    if fair["max_ratio"] > max_fair_ratio:
        failures.append(
            f"service: fair admission leaves the worst tenant at "
            f"{fair['max_ratio']:.2f}x fair share, above the "
            f"{max_fair_ratio:.1f}x ceiling"
        )
    if fair["total_query_cost"] > fcfs["total_query_cost"]:
        failures.append(
            "service: fair admission raised the §II-B bill: {} vs {} under FCFS".format(
                fair["total_query_cost"], fcfs["total_query_cost"]
            )
        )
    for mode, base_row in baseline.get("modes", {}).items():
        fresh_row = fresh.get("modes", {}).get(mode)
        if fresh_row is None:
            failures.append(f"service: mode {mode!r} missing from fresh profile")
            continue
        metrics = ("total_query_cost", "clock")
        if mode == "drr":
            # the FCFS ratio is the (deliberately bad) contrast point, not
            # a gated quantity — only the fair row's ratio may not creep up
            metrics += ("max_ratio",)
        for metric in metrics:
            base_value = base_row[metric]
            allowed = simulated_tolerance * abs(base_value)
            if fresh_row[metric] - base_value > allowed:
                failures.append(
                    "service: {} {} regressed: {} vs baseline {} "
                    "(simulated metric, tolerance {:.0%})".format(
                        mode, metric, fresh_row[metric], base_value, simulated_tolerance
                    )
                )
    return failures


def check_obs(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    max_overhead: float = MAX_OBS_OVERHEAD_RATIO,
) -> List[str]:
    """Failures for the observability profile (empty list = gate passes)."""
    failures = []
    if not fresh.get("recorder_on_bit_for_bit", False):
        failures.append(
            "obs: attaching a recorder changed the seeded fleet run "
            "(recorder-on bit-for-bit equivalence no longer holds)"
        )
    if not fresh.get("reconciled", False):
        failures.append(
            "obs: trace replay no longer reproduces the §II-B bill "
            "and per-shard books exactly"
        )
    overhead = fresh.get("overhead_ratio")
    if overhead is None:
        failures.append("obs: overhead_ratio missing from fresh profile")
    elif overhead > max_overhead:
        failures.append(
            f"obs: recorder-on serial throughput costs {overhead:.2f}x "
            f"recorder-off, above the {max_overhead:.2f}x ceiling"
        )
    # Event count and §II-B cost of the traced reference run are seeded
    # simulated metrics: drift means the instrumentation coverage (or the
    # run itself) changed.
    for metric in ("trace_events", "query_cost"):
        base_value = baseline.get(metric)
        fresh_value = fresh.get(metric)
        if base_value is None:
            continue
        if fresh_value is None:
            failures.append(f"obs: {metric} missing from fresh profile")
            continue
        if abs(fresh_value - base_value) > simulated_tolerance * abs(base_value):
            failures.append(
                "obs: {} drifted: {} vs baseline {} "
                "(simulated metric, tolerance {:.0%})".format(
                    metric, fresh_value, base_value, simulated_tolerance
                )
            )
    return failures


def check_obs_causality(
    fresh: dict,
    baseline: dict,
    simulated_tolerance: float = 0.02,
    max_overhead: float = MAX_WATCHER_OVERHEAD_RATIO,
) -> List[str]:
    """Failures for the causal-profiler profile (empty list = pass)."""
    failures = []
    if not fresh.get("attribution_reconciles", False):
        failures.append(
            "obs_causality: critical-path attribution no longer tiles the "
            "simulated wall-clock bit-for-bit against the telemetry books"
        )
    if not fresh.get("watcher_bit_for_bit", False):
        failures.append(
            "obs_causality: attaching an SLO watcher changed the seeded run "
            "(watcher bit-for-bit equivalence no longer holds)"
        )
    overhead = fresh.get("watcher_overhead_ratio")
    if overhead is None:
        failures.append("obs_causality: watcher_overhead_ratio missing from fresh profile")
    elif overhead > max_overhead:
        failures.append(
            f"obs_causality: watcher-on run costs {overhead:.2f}x watcher-off, "
            f"above the {max_overhead:.2f}x ceiling"
        )
    driver = fresh.get("dominant_driver")
    if driver != EXPECTED_DIFF_DRIVER:
        failures.append(
            f"obs_causality: planner-on/off diff blamed {driver!r}, "
            f"expected {EXPECTED_DIFF_DRIVER!r}"
        )
    # The profiled run is seeded: its wall-clock and critical-path shape
    # are simulated metrics — drift means the causal account changed.
    for metric in ("wall_clock", "path_segments"):
        base_value = baseline.get(metric)
        fresh_value = fresh.get(metric)
        if base_value is None:
            continue
        if fresh_value is None:
            failures.append(f"obs_causality: {metric} missing from fresh profile")
            continue
        if abs(fresh_value - base_value) > simulated_tolerance * abs(base_value):
            failures.append(
                "obs_causality: {} drifted: {} vs baseline {} "
                "(simulated metric, tolerance {:.0%})".format(
                    metric, fresh_value, base_value, simulated_tolerance
                )
            )
    return failures


#: Gate sections whose failures are worth a causal second opinion.
_HINTED_PREFIXES = ("planning:", "service:", "obs:", "obs_causality:")


def critical_path_hint(
    fresh_dir: Path, baseline_dir: Path, trace_name: str = "TRACE_causality.jsonl"
) -> "str | None":
    """One-paragraph causal diff of the baseline vs fresh reference trace.

    When a planning/service/obs check fails and both the committed and
    the freshly generated causality traces are on disk, this diffs them
    (:func:`repro.obs.diff.diff_traces`) so the failure report says
    *which critical-path category moved* instead of just which number.
    Returns ``None`` when either trace (or the ``repro`` package) is
    unavailable — the hint is best-effort, never a gate failure of its
    own.
    """
    baseline_trace = baseline_dir / trace_name
    fresh_trace = fresh_dir / trace_name
    if not baseline_trace.exists() or not fresh_trace.exists():
        return None
    try:
        # CI invokes this script without PYTHONPATH=src; reach the
        # in-repo package relative to this file before giving up.
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.obs import diff_traces, read_jsonl

        events_base, _ = read_jsonl(baseline_trace)
        events_fresh, _ = read_jsonl(fresh_trace)
        return diff_traces(
            events_base, events_fresh, label_a="baseline", label_b="fresh"
        ).explain()
    except Exception:
        return None


def run_gate(
    fresh_dir: Path,
    baseline_dir: Path,
    throughput_tolerance: float = 0.5,
    simulated_tolerance: float = 0.02,
) -> List[str]:
    """Compare every gated profile; returns the list of failures."""
    failures = []
    pairs = [
        ("BENCH_walk_engine.json", check_walk_engine, {"throughput_tolerance": throughput_tolerance}),
        ("BENCH_scheduler.json", check_scheduler, {}),
        ("BENCH_fleet.json", check_fleet, {}),
        ("BENCH_planning.json", check_planning, {}),
        ("BENCH_history.json", check_history, {}),
        ("BENCH_service.json", check_service, {}),
        ("BENCH_obs.json", check_obs, {}),
        ("BENCH_obs_causality.json", check_obs_causality, {}),
    ]
    for filename, check, extra in pairs:
        baseline_path = baseline_dir / filename
        fresh_path = fresh_dir / filename
        if not baseline_path.exists():
            failures.append(f"gate: committed baseline {baseline_path} is missing")
            continue
        if not fresh_path.exists():
            failures.append(f"gate: fresh profile {fresh_path} was not generated")
            continue
        failures.extend(
            check(
                _load(fresh_path),
                _load(baseline_path),
                simulated_tolerance=simulated_tolerance,
                **extra,
            )
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir", type=Path, default=Path("."), help="directory with fresh BENCH_*.json"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory with committed baselines",
    )
    parser.add_argument(
        "--throughput-tolerance",
        type=float,
        default=0.5,
        help="allowed fractional drop for wall-time metrics (CI hardware varies)",
    )
    parser.add_argument(
        "--simulated-tolerance",
        type=float,
        default=0.02,
        help="allowed fractional drift for seeded simulated metrics",
    )
    args = parser.parse_args(argv)
    failures = run_gate(
        args.fresh_dir,
        args.baseline_dir,
        throughput_tolerance=args.throughput_tolerance,
        simulated_tolerance=args.simulated_tolerance,
    )
    if failures:
        print("benchmark regression gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        if any(f.startswith(_HINTED_PREFIXES) for f in failures):
            hint = critical_path_hint(args.fresh_dir, args.baseline_dir)
            if hint:
                print(f"  critical-path hint: {hint}")
        return 1
    print("benchmark regression gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
