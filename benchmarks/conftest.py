"""Benchmark-suite plumbing.

Each figure benchmark registers its rendered table/series through the
``figure_report`` fixture; ``pytest_terminal_summary`` prints everything at
the end of the run, so ``pytest benchmarks/ --benchmark-only | tee
bench_output.txt`` captures the same rows the paper reports without
needing ``-s``.
"""

from __future__ import annotations

from typing import List

import pytest

_REPORTS: List[str] = []


def pytest_sessionstart(session):
    # The module global survives repeated in-process runs (pytest.main in a
    # loop, pytest-xdist workers re-importing); reset per session so report
    # tables are not duplicated across runs.
    _REPORTS.clear()


@pytest.fixture
def figure_report():
    """Callable that registers a rendered experiment report for printing."""

    def _register(text: str) -> None:
        _REPORTS.append(text)

    return _register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper tables & figures (reproduced)")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
