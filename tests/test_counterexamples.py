"""Tests for the Corollary 1/2 tightness constructions."""

import pytest

from repro.analysis.conductance import cut_conductance, min_conductance_exact
from repro.core.counterexamples import corollary1_graph, corollary2_graph
from repro.core.criteria import removal_criterion
from repro.graph import is_connected


class TestCorollary1:
    @pytest.mark.parametrize("n,ku,kv", [(0, 2, 2), (1, 4, 4), (2, 6, 5), (3, 6, 6)])
    def test_construction_matches_local_stats(self, n, ku, kv):
        assert not removal_criterion(n, ku, kv)  # corollary's hypothesis
        g, (u, v) = corollary1_graph(n, ku, kv, pendant_weight=4)
        assert g.has_edge(u, v)
        assert g.degree(u) == ku
        assert g.degree(v) == kv
        assert len(g.common_neighbors(u, v)) == n
        assert is_connected(g)

    def test_edge_is_cross_cutting_small_case(self):
        # n=0, ku=kv=2: u and v each have one outer edge; with heavy
        # pendant inflation, the minimum cut severs e_uv.
        g, (u, v) = corollary1_graph(0, 2, 2, pendant_weight=3)
        if g.num_nodes <= 18:
            best = min_conductance_exact(g, max_nodes=18)
            crossing_cut = {frozenset(e) for e in best.cut_edges}
            assert frozenset((u, v)) in crossing_cut or any(
                cut_conductance(g, side) == pytest.approx(best.conductance)
                for side in [
                    {u, "ou0"} | {n for n in g.nodes() if str(n).startswith("pu")}
                ]
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            corollary1_graph(3, 3, 5)


class TestCorollary2:
    def test_rejects_safe_degree(self):
        with pytest.raises(ValueError):
            corollary2_graph(kv=3)
        with pytest.raises(ValueError):
            corollary2_graph(kv=4, block=2)

    def test_pivot_degree(self):
        g, (u, v, w) = corollary2_graph(kv=4, block=4)
        assert g.degree(v) == 4
        assert g.has_edge(u, v) and g.has_edge(w, v)

    def test_replacement_lowers_conductance(self):
        # kv=4, two small dense blocks: replacing e_uv by e_uw must lower
        # (or at best not raise) the exact conductance — the corollary's
        # "decrease or no effect", with this construction chosen to give
        # strict decrease.
        g, (u, v, w) = corollary2_graph(kv=4, block=4)
        assert g.num_nodes <= 16
        before = min_conductance_exact(g, max_nodes=16).conductance
        h = g.copy()
        h.remove_edge(u, v)
        if not h.has_edge(u, w):
            h.add_edge(u, w)
        after = min_conductance_exact(h, max_nodes=16).conductance
        assert after <= before + 1e-12
        assert after < before  # strict for this construction
