"""Unit tests for the query log's unique-cost accounting."""

from repro.datastore import QueryLog
from repro.datastore.snapshot import decode_value, encode_value


class TestQueryLog:
    def test_first_query_billed(self):
        log = QueryLog()
        rec = log.record("u1")
        assert rec.billed is True
        assert log.unique_queries == 1

    def test_repeat_query_not_billed(self):
        log = QueryLog()
        log.record("u1")
        rec = log.record("u1")
        assert rec.billed is False
        assert log.unique_queries == 1
        assert log.total_queries == 2

    def test_was_queried(self):
        log = QueryLog()
        log.record("u1")
        assert log.was_queried("u1")
        assert not log.was_queried("u2")

    def test_queried_users(self):
        log = QueryLog()
        log.record("a")
        log.record("b")
        log.record("a")
        assert log.queried_users() == frozenset({"a", "b"})

    def test_iteration_and_indices(self):
        log = QueryLog()
        log.record("a")
        log.record("b")
        records = list(log)
        assert [r.index for r in records] == [0, 1]
        assert len(log) == 2

    def test_tail(self):
        log = QueryLog()
        for u in "abcd":
            log.record(u)
        assert [r.user for r in log.tail(2)] == ["c", "d"]
        assert log.tail(0) == []

    def test_billed_between(self):
        log = QueryLog()
        log.record("a", timestamp=1.0)
        log.record("b", timestamp=5.0)
        log.record("a", timestamp=6.0)  # cache hit, not billed
        log.record("c", timestamp=10.0)
        assert log.billed_between(0.0, 6.0) == 2
        assert log.billed_between(start=5.0) == 2
        assert log.billed_between(end=5.0) == 1


def _round_trip(log: QueryLog) -> QueryLog:
    """state_dict → codec → load_state, as every snapshot backend does."""
    restored = QueryLog()
    restored.load_state(decode_value(encode_value(log.state_dict())))
    return restored


class TestQueryLogSerialization:
    def test_empty_log_round_trips(self):
        restored = _round_trip(QueryLog())
        assert restored.total_queries == 0
        assert restored.unique_queries == 0
        assert list(restored) == []
        # a restored empty log starts billing from scratch
        assert restored.record("u").billed is True

    def test_non_string_hashable_user_ids(self):
        log = QueryLog()
        exotic = [0, -7, ("tuple", 3), (0, (1, 2)), None, True, 2.5, b"bytes"]
        for i, user in enumerate(exotic):
            log.record(user, timestamp=float(i))
        restored = _round_trip(log)
        assert [(r.user, r.billed) for r in restored] == [(r.user, r.billed) for r in log]
        for user in exotic:
            assert restored.was_queried(user)
        # 0/False and 1/True collapse by hash equality, exactly as live
        assert restored.unique_queries == log.unique_queries

    def test_interleaved_billed_and_cached_records(self):
        log = QueryLog()
        for user in ["a", "b", "a", "c", "b", "a"]:
            log.record(user, timestamp=0.5)
        restored = _round_trip(log)
        assert [r.billed for r in restored] == [True, True, False, True, False, False]
        assert restored.unique_queries == 3
        assert restored.total_queries == 6
        # continuation keeps charging repeats to the cache...
        assert restored.record("c").billed is False
        # ...and bills genuinely new users
        assert restored.record("d").billed is True

    def test_indices_and_timestamps_preserved(self):
        log = QueryLog()
        log.record("a", timestamp=1.25)
        log.record("b", timestamp=3.5)
        restored = _round_trip(log)
        assert [(r.index, r.timestamp) for r in restored] == [(0, 1.25), (1, 3.5)]
        assert restored.record("c").index == 2

    def test_billed_between_works_after_restore(self):
        log = QueryLog()
        log.record("a", timestamp=1.0)
        log.record("b", timestamp=5.0)
        log.record("a", timestamp=6.0)
        restored = _round_trip(log)
        assert restored.billed_between(0.0, 6.0) == log.billed_between(0.0, 6.0)
