"""Unit tests for the query log's unique-cost accounting."""

from repro.datastore import QueryLog


class TestQueryLog:
    def test_first_query_billed(self):
        log = QueryLog()
        rec = log.record("u1")
        assert rec.billed is True
        assert log.unique_queries == 1

    def test_repeat_query_not_billed(self):
        log = QueryLog()
        log.record("u1")
        rec = log.record("u1")
        assert rec.billed is False
        assert log.unique_queries == 1
        assert log.total_queries == 2

    def test_was_queried(self):
        log = QueryLog()
        log.record("u1")
        assert log.was_queried("u1")
        assert not log.was_queried("u2")

    def test_queried_users(self):
        log = QueryLog()
        log.record("a")
        log.record("b")
        log.record("a")
        assert log.queried_users() == frozenset({"a", "b"})

    def test_iteration_and_indices(self):
        log = QueryLog()
        log.record("a")
        log.record("b")
        records = list(log)
        assert [r.index for r in records] == [0, 1]
        assert len(log) == 2

    def test_tail(self):
        log = QueryLog()
        for u in "abcd":
            log.record(u)
        assert [r.user for r in log.tail(2)] == ["c", "d"]
        assert log.tail(0) == []

    def test_billed_between(self):
        log = QueryLog()
        log.record("a", timestamp=1.0)
        log.record("b", timestamp=5.0)
        log.record("a", timestamp=6.0)  # cache hit, not billed
        log.record("c", timestamp=10.0)
        assert log.billed_between(0.0, 6.0) == 2
        assert log.billed_between(start=5.0) == 2
        assert log.billed_between(end=5.0) == 1
