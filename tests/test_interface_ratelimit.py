"""Unit tests for rate limiters and the simulated clock."""

import pytest

from repro.errors import RateLimitExceededError
from repro.interface import (
    FixedWindowRateLimiter,
    SimulatedClock,
    TokenBucketRateLimiter,
    UnlimitedRateLimiter,
)


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        c = SimulatedClock(start=5.0)
        c.advance(2.5)
        assert c.now() == 7.5
        assert c() == 7.5

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestUnlimited:
    def test_always_admits(self):
        rl = UnlimitedRateLimiter()
        assert all(rl.try_acquire(t) == 0.0 for t in range(100))


class TestFixedWindow:
    def test_admits_up_to_limit(self):
        rl = FixedWindowRateLimiter(3, 10.0)
        assert rl.try_acquire(0.0) == 0.0
        assert rl.try_acquire(1.0) == 0.0
        assert rl.try_acquire(2.0) == 0.0

    def test_throttles_after_limit(self):
        rl = FixedWindowRateLimiter(2, 10.0)
        rl.try_acquire(0.0)
        rl.try_acquire(1.0)
        wait = rl.try_acquire(4.0)
        assert wait == pytest.approx(6.0)  # until t=10

    def test_window_resets(self):
        rl = FixedWindowRateLimiter(1, 10.0)
        assert rl.try_acquire(0.0) == 0.0
        assert rl.try_acquire(5.0) > 0
        assert rl.try_acquire(10.0) == 0.0

    def test_acquire_or_raise(self):
        rl = FixedWindowRateLimiter(1, 10.0)
        rl.acquire_or_raise(0.0)
        with pytest.raises(RateLimitExceededError) as err:
            rl.acquire_or_raise(0.0)
        assert err.value.retry_after == pytest.approx(10.0)

    def test_presets(self):
        fb = FixedWindowRateLimiter.facebook()
        assert (fb.limit, fb.window) == (600, 600.0)
        tw = FixedWindowRateLimiter.twitter()
        assert (tw.limit, tw.window) == (350, 3600.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FixedWindowRateLimiter(0, 10.0)
        with pytest.raises(ValueError):
            FixedWindowRateLimiter(1, 0.0)


class TestTokenBucket:
    def test_burst_then_throttle(self):
        rl = TokenBucketRateLimiter(rate=1.0, burst=2)
        assert rl.try_acquire(0.0) == 0.0
        assert rl.try_acquire(0.0) == 0.0
        wait = rl.try_acquire(0.0)
        assert wait == pytest.approx(1.0)

    def test_refill(self):
        rl = TokenBucketRateLimiter(rate=2.0, burst=1)
        assert rl.try_acquire(0.0) == 0.0
        assert rl.try_acquire(0.5) == 0.0  # refilled one token in 0.5s
        assert rl.try_acquire(0.5) > 0.0

    def test_burst_cap(self):
        rl = TokenBucketRateLimiter(rate=1.0, burst=2)
        rl.try_acquire(0.0)
        # After a very long idle period the bucket holds at most `burst`.
        assert rl.try_acquire(1000.0) == 0.0
        assert rl.try_acquire(1000.0) == 0.0
        assert rl.try_acquire(1000.0) > 0.0

    def test_default_burst_is_rate(self):
        rl = TokenBucketRateLimiter(rate=3.0)
        assert rl.burst == 3.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucketRateLimiter(rate=0)
        with pytest.raises(ValueError):
            TokenBucketRateLimiter(rate=1.0, burst=0)
